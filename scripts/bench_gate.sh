#!/usr/bin/env bash
# Benchmark regression gate: regenerates the fig8 and table4 artifacts and
# diffs them against the committed baselines in bench_results/baseline/.
#
# Deterministic counters (payload bytes per row and per wire mode, message
# and round counts, calibration traffic, row sets, schema version) must
# match the baseline bit-for-bit — a mismatch is a hard failure (nonzero
# exit). Timings only print warnings when they drift beyond the tolerance;
# they never fail the gate, so it is safe on noisy CI machines.
#
# Usage: scripts/bench_gate.sh [--full] [--rebaseline]
#   --full        run the full-scale benches instead of --quick (the
#                 committed baselines are recorded at --quick scale, so
#                 --full only makes sense together with --rebaseline or a
#                 matching local baseline)
#   --rebaseline  record the current results as the new baseline instead
#                 of comparing (commit the bench_results/baseline/ diff)
#
# Environment:
#   BENCH_GATE_TOL      relative timing tolerance (default 0.5 = ±50%)
#   BENCH_RESULTS_DIR   where the benches write and the gate reads the
#                       current artifacts (default bench_results/)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="--quick"
GATE_ARGS=()
for arg in "$@"; do
    case "$arg" in
        --full) SCALE="" ;;
        --rebaseline) GATE_ARGS+=("--rebaseline") ;;
        *)
            echo "bench_gate.sh: unknown argument '$arg'" >&2
            exit 2
            ;;
    esac
done

echo "==> cargo run --release -p gluon-bench --bin fig8 -- $SCALE"
# shellcheck disable=SC2086
cargo run --release --quiet -p gluon-bench --bin fig8 -- $SCALE >/dev/null
echo "==> cargo run --release -p gluon-bench --bin table4 -- $SCALE"
# shellcheck disable=SC2086
cargo run --release --quiet -p gluon-bench --bin table4 -- $SCALE >/dev/null
echo "==> cargo run --release -p gluon-bench --bin bench_gate ${GATE_ARGS[*]:-}"
cargo run --release --quiet -p gluon-bench --bin bench_gate -- ${GATE_ARGS[@]+"${GATE_ARGS[@]}"}
