#!/usr/bin/env bash
# Full verification gate for the workspace. Everything a PR must pass:
#
#   1. release build of every crate;
#   2. the whole test suite (unit + integration + doc tests), including
#      the default-on `chaos` lossy-network matrix;
#   3. the crash-chaos battery under --release: injected host crashes
#      must recover bit-identical via checkpoints, and unrecoverable
#      failures must surface typed errors within the detector timeout;
#   4. the socket-backend battery under --release: the parity suite
#      (separate worker processes over TCP and Unix sockets must match
#      the in-memory backend bit-for-bit, and a killed worker must yield
#      a typed peer-death error) plus the 2-process `gluon-host smoke`;
#   5. the determinism matrix (threads × algorithms × policies,
#      bit-identical results and wire counters) under --release;
#   6. the codec battery under --release: the differential oracle
#      against the naive reference codec plus the fixed-seed fuzz smoke
#      (truncations, bit flips, garbage — the decoder must never panic);
#   7. the allocation guard under --release with the `alloc-meter`
#      counting allocator: steady-state sync rounds allocate nothing,
#      and toggling the arena changes no observable result;
#   8. every bench compiles (`cargo bench --no-run`);
#   9. rustfmt, as a check only;
#  10. clippy across the workspace with warnings denied;
#  11. rustdoc with warnings denied (missing docs on public API fail).
#
# Every test invocation runs under a hang watchdog: the crash-tolerance
# contract is "typed error, never a hang", so a test step that exceeds
# its deadline is itself a red verification result, not something to
# wait out.
#
# Usage: scripts/verify.sh [--fast]
#   --fast  skip the release build, the release determinism matrix, the
#           release alloc guard, and the chaos feature (quick pre-push
#           sanity loop).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
    FAST=1
fi

# Runs a test command under a per-step deadline (seconds). SIGTERM first,
# SIGKILL 10s later if the process ignores it.
watchdog() {
    local deadline="$1"
    shift
    if ! timeout --kill-after=10 "$deadline" "$@"; then
        local status=$?
        if [[ "$status" == "124" || "$status" == "137" ]]; then
            echo "verify: HANG — '$*' exceeded ${deadline}s watchdog" >&2
        fi
        return "$status"
    fi
}

if [[ "$FAST" == "0" ]]; then
    echo "==> cargo build --release"
    cargo build --release
    echo "==> cargo test -q (chaos + crash-chaos matrices included; 900s watchdog)"
    watchdog 900 cargo test -q
    echo "==> cargo test --release --test crash_chaos (crash injection, recovery, typed errors; 300s watchdog)"
    watchdog 300 cargo test -q --release --test crash_chaos
    echo "==> cargo test --release --test socket_parity (multi-process TCP/UDS parity + typed peer death; 300s watchdog)"
    watchdog 300 cargo test -q --release --test socket_parity
    echo "==> gluon-host smoke (2-process TCP bfs vs the memory backend; 120s watchdog)"
    watchdog 120 cargo run -q --release --bin gluon-host -- smoke
    echo "==> cargo test --release --test determinism (thread-count invariance; 600s watchdog)"
    watchdog 600 cargo test -q --release --test determinism
    echo "==> cargo test --release codec battery (differential oracle + fuzz smoke; 600s watchdog)"
    watchdog 600 cargo test -q --release --test codec_differential --test codec_fuzz --test codec_golden
    echo "==> cargo test --release --features alloc-meter --test alloc_guard (zero steady-state allocations; 300s watchdog)"
    watchdog 300 cargo test -q --release --features alloc-meter --test alloc_guard
else
    echo "==> cargo test -q --no-default-features (chaos matrices skipped; 900s watchdog)"
    watchdog 900 cargo test -q --workspace --no-default-features
    echo "==> gluon-host smoke (2-process TCP bfs vs the memory backend; 120s watchdog)"
    watchdog 120 cargo run -q --bin gluon-host -- smoke
fi

echo "==> cargo bench --no-run (benches must always compile)"
cargo bench --no-run --workspace --quiet

if [[ "$FAST" == "0" ]]; then
    # Informational: regenerates the quick-scale fig8/table4 artifacts and
    # diffs them against bench_results/baseline/. Timing drift only warns;
    # a hard mismatch (byte counters, row sets, schema) fails the gate
    # binary — but the step as a whole never blocks verification, so a
    # stale baseline shows up as a loud warning, not a red build.
    echo "==> scripts/bench_gate.sh (informational benchmark regression gate; 900s watchdog)"
    if ! watchdog 900 scripts/bench_gate.sh; then
        echo "verify: WARNING — bench gate reported regressions (see above);" \
             "rerun scripts/bench_gate.sh --rebaseline if the drift is intended" >&2
    fi
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "verify: all gates passed"
