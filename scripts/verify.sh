#!/usr/bin/env bash
# Full verification gate for the workspace. Everything a PR must pass:
#
#   1. release build of every crate;
#   2. the whole test suite (unit + integration + doc tests), including
#      the default-on `chaos` lossy-network matrix;
#   3. the determinism matrix (threads × algorithms × policies,
#      bit-identical results and wire counters) under --release;
#   4. the codec battery under --release: the differential oracle
#      against the naive reference codec plus the fixed-seed fuzz smoke
#      (truncations, bit flips, garbage — the decoder must never panic);
#   5. the allocation guard under --release with the `alloc-meter`
#      counting allocator: steady-state sync rounds allocate nothing,
#      and toggling the arena changes no observable result;
#   6. every bench compiles (`cargo bench --no-run`);
#   7. rustfmt, as a check only;
#   8. clippy across the workspace with warnings denied;
#   9. rustdoc with warnings denied (missing docs on public API fail).
#
# Usage: scripts/verify.sh [--fast]
#   --fast  skip the release build, the release determinism matrix, the
#           release alloc guard, and the chaos feature (quick pre-push
#           sanity loop).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
    FAST=1
fi

if [[ "$FAST" == "0" ]]; then
    echo "==> cargo build --release"
    cargo build --release
    echo "==> cargo test -q (chaos matrix included)"
    cargo test -q
    echo "==> cargo test --release --test determinism (thread-count invariance)"
    cargo test -q --release --test determinism
    echo "==> cargo test --release codec battery (differential oracle + fuzz smoke)"
    cargo test -q --release --test codec_differential --test codec_fuzz --test codec_golden
    echo "==> cargo test --release --features alloc-meter --test alloc_guard (zero steady-state allocations)"
    cargo test -q --release --features alloc-meter --test alloc_guard
else
    echo "==> cargo test -q --no-default-features (chaos matrix skipped)"
    cargo test -q --workspace --no-default-features
fi

echo "==> cargo bench --no-run (benches must always compile)"
cargo bench --no-run --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "verify: all gates passed"
