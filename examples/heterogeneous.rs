//! Heterogeneous cluster: the deployment of the paper's Figure 1.
//!
//! Two "CPU hosts" run the Galois engine while two "GPU hosts" run the
//! IrGL-style bulk-kernel engine, all four computing partitions of the same
//! graph and reconciling through the same Gluon substrate. The application
//! code is identical on every host; only the compute engine differs —
//! that is the decoupling the paper contributes.
//!
//! Run with: `cargo run --release --example heterogeneous`

use gluon_suite::algos::{driver, reference, EngineKind};
use gluon_suite::graph::{gen, max_out_degree_node};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

fn main() {
    let graph = gen::rmat(13, 16, Default::default(), 7);
    let source = max_out_degree_node(&graph);
    // Hosts 0 and 1 are CPUs running Galois; hosts 2 and 3 are emulated
    // GPUs running IrGL kernels.
    let engines = [
        EngineKind::Galois,
        EngineKind::Galois,
        EngineKind::Irgl,
        EngineKind::Irgl,
    ];
    println!(
        "bfs on |V|={} |E|={} across a heterogeneous cluster:",
        graph.num_nodes(),
        graph.num_edges()
    );
    for (h, e) in engines.iter().enumerate() {
        println!("  host {h}: {e}");
    }
    let out = driver::run_heterogeneous_bfs(&graph, Policy::Cvc, OptLevel::OSTI, &engines, source);
    let oracle = reference::bfs(&graph, source);
    assert_eq!(out.int_labels, oracle, "heterogeneous result must match");
    println!(
        "\ncompleted in {} rounds; {} bytes communicated; answers match the oracle",
        out.rounds, out.run.total_bytes
    );
    // Per-host phase counts agree even though engines differ — the BSP
    // structure is engine-independent.
    let phases: Vec<usize> = out.host_stats.iter().map(|h| h.num_phases()).collect();
    println!("sync phases per host: {phases:?} (identical by construction)");
}
