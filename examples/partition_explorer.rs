//! Partition explorer: the auto-tuning workflow §3.3 enables.
//!
//! Because Gluon decouples the application from the partitioning policy,
//! the same program can be re-run under every policy "just by changing
//! command-line flags". This example does exactly that: it sweeps all five
//! policies for BFS on a skewed social graph and reports replication
//! factor, load balance, and measured communication volume, so you can
//! pick the best policy for your graph and host count.
//!
//! Run with: `cargo run --example partition_explorer [hosts]`

use gluon_suite::algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::gen;
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

fn main() {
    let hosts: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let graph = gen::twitter_like(20_000, 20, 7);
    println!(
        "bfs on a twitter-like graph (|V|={}, |E|={}) across {hosts} hosts\n",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "{:<12} {:>11} {:>10} {:>12} {:>14} {:>8}",
        "policy", "replication", "edge-imb", "comm bytes", "comm messages", "rounds"
    );
    let mut results: Vec<(Policy, u64)> = Vec::new();
    for policy in Policy::ALL {
        let cfg = DistConfig {
            hosts,
            policy,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        };
        let out = driver::Run::new(&graph, Algorithm::Bfs)
            .config(&cfg)
            .launch();
        println!(
            "{:<12} {:>11.2} {:>10.2} {:>12} {:>14} {:>8}",
            policy.to_string(),
            out.partition.replication_factor,
            out.partition.edge_imbalance,
            out.run.total_bytes,
            out.run.total_messages,
            out.rounds
        );
        results.push((policy, out.run.total_bytes));
    }
    let (best, bytes) = results
        .iter()
        .min_by_key(|(_, b)| *b)
        .expect("at least one policy");
    println!("\nlowest communication volume: {best} ({bytes} bytes)");
    println!("(the winner depends on the graph and host count — that is the point)");
}
