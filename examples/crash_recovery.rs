//! Surviving a host crash mid-computation.
//!
//! Kills one of three simulated hosts partway through a pagerank run. The
//! heartbeat failure detector turns the silence into a typed `PeerDown`,
//! the supervisor restores every host from the latest complete checkpoint
//! epoch, and deterministic replay lands on ranks bit-identical to the
//! crash-free run. Then the failure modes: a permanently dead host under
//! `AbortClean` (typed error, no restart) and under `ContinueStale` (the
//! last checkpoint served as a degraded result).
//!
//! Run with: `cargo run --release --example crash_recovery`

use gluon_suite::algos::{Algorithm, DistConfig, FailurePolicy, Run};
use gluon_suite::graph::gen;
use gluon_suite::net::{
    CrashRule, DetectorConfig, FaultCounters, FaultPlan, FaultyTransport, ReliableConfig,
    RetryPolicy,
};
use std::time::{Duration, Instant};

fn detecting() -> ReliableConfig {
    ReliableConfig {
        retry: RetryPolicy::default(),
        detector: Some(DetectorConfig::default().with_max_silence(Duration::from_millis(200))),
    }
}

fn main() {
    let graph = gen::rmat(10, 8, Default::default(), 7);
    let cfg = DistConfig::new(3);

    // Crash-free baseline.
    let clean = Run::new(&graph, Algorithm::Pagerank).config(&cfg).launch();
    println!(
        "crash-free: {} iterations, rank[0] = {:.6e}",
        clean.rounds, clean.ranks[0]
    );

    // Kill host 1 at sync round 20 (first attempt only); checkpoint every
    // 2 iterations; recover.
    let counters = FaultCounters::new();
    let shared = counters.clone();
    let plan = FaultPlan::none(7).with_crash(CrashRule::at(1, 20));
    let started = Instant::now();
    let out = Run::new(&graph, Algorithm::Pagerank)
        .config(&cfg)
        .checkpoint_every(2)
        .reliable(detecting())
        .transport_per_attempt(move |ep, attempt| {
            FaultyTransport::new(ep, plan.for_attempt(attempt), shared.clone())
        })
        .try_launch()
        .expect("a single crash with checkpoints must recover");
    let identical = out
        .ranks
        .iter()
        .zip(&clean.ranks)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "recovered:  {} iterations after {} crash(es) and {} recovery(ies) \
         in {:.0?} — bit-identical: {}",
        out.rounds,
        counters.crashed(),
        out.recoveries,
        started.elapsed(),
        identical
    );

    // The same crash, pinned to every attempt, under AbortClean: the first
    // detected failure ends the run with a typed error.
    let plan = FaultPlan::none(7).with_crash(CrashRule::at(1, 20).every_attempt());
    let started = Instant::now();
    let err = Run::new(&graph, Algorithm::Pagerank)
        .config(&cfg)
        .checkpoint_every(2)
        .on_failure(FailurePolicy::AbortClean)
        .reliable(detecting())
        .transport_per_attempt(move |ep, attempt| {
            FaultyTransport::new(ep, plan.for_attempt(attempt), FaultCounters::new())
        })
        .try_launch()
        .expect_err("AbortClean must surface the failure");
    println!("abort-clean: error after {:.0?}: {err}", started.elapsed());

    // And under ContinueStale: the last complete checkpoint is served as a
    // degraded outcome instead of an error.
    let plan = FaultPlan::none(7).with_crash(CrashRule::at(1, 20).every_attempt());
    let stale = Run::new(&graph, Algorithm::Pagerank)
        .config(&cfg)
        .checkpoint_every(2)
        .on_failure(FailurePolicy::ContinueStale)
        .reliable(detecting())
        .transport_per_attempt(move |ep, attempt| {
            FaultyTransport::new(ep, plan.for_attempt(attempt), FaultCounters::new())
        })
        .try_launch()
        .expect("ContinueStale must serve the last checkpoint");
    println!(
        "continue-stale: degraded = {}, {} of {} iterations served",
        stale.degraded, stale.rounds, clean.rounds
    );
}
