//! Web ranking: distributed pagerank on a web-crawl-shaped graph —
//! the workload the paper's clueweb12/wdc12 inputs motivate.
//!
//! Runs pull-style pagerank on all three Gluon systems (D-Ligra, D-Galois,
//! D-IrGL) over the same partitioning, confirms they agree, and prints the
//! top-ranked pages and the per-system communication bill.
//!
//! Run with: `cargo run --release --example web_ranking`

use gluon_suite::algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::gen;

fn main() {
    let graph = gen::web_like(30_000, 18, 1.9, 2026);
    println!(
        "pagerank on a web-like crawl (|V|={}, |E|={}), 4 hosts, CVC\n",
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut ranks_by_engine = Vec::new();
    for engine in EngineKind::ALL {
        let mut cfg = DistConfig::new(4);
        cfg.engine = engine;
        let out = driver::Run::new(&graph, Algorithm::Pagerank)
            .config(&cfg)
            .launch();
        println!(
            "{:<9} {:>3} iterations  {:>12} bytes  {:>7.1} ms compute",
            engine.to_string(),
            out.rounds,
            out.run.total_bytes,
            out.run.max_compute_secs * 1e3
        );
        ranks_by_engine.push(out.ranks);
    }
    // All three systems implement the same vertex program on the same
    // partitioning; their fixpoints agree to numerical tolerance.
    for pair in ranks_by_engine.windows(2) {
        for (a, b) in pair[0].iter().zip(&pair[1]) {
            assert!((a - b).abs() < 1e-9, "engines disagree: {a} vs {b}");
        }
    }
    let mut order: Vec<usize> = (0..graph.num_nodes() as usize).collect();
    order.sort_by(|&a, &b| {
        ranks_by_engine[0][b]
            .partial_cmp(&ranks_by_engine[0][a])
            .expect("finite ranks")
    });
    println!("\ntop 10 pages by rank:");
    for (i, &page) in order.iter().take(10).enumerate() {
        println!(
            "  {:>2}. page {:>6}  rank {:.6}",
            i + 1,
            page,
            ranks_by_engine[0][page]
        );
    }
}
