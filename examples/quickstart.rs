//! Quickstart: distributed BFS on a generated scale-free graph.
//!
//! Generates an RMAT graph, runs BFS with D-Galois (the Galois engine on
//! the Gluon substrate) over four simulated hosts, validates against the
//! single-host oracle, and prints the communication statistics Gluon
//! collected.
//!
//! Run with: `cargo run --example quickstart`

use gluon_suite::algos::{driver, reference, Algorithm, DistConfig};
use gluon_suite::graph::{gen, max_out_degree_node, GraphStats, RmatProbs};

fn main() {
    // 1. An input graph: 2^12 nodes, 16 edges per node, graph500 skew.
    let graph = gen::rmat(12, 16, RmatProbs::GRAPH500, 42);
    println!("input: {}", GraphStats::of(&graph));

    // 2. Run distributed BFS: 4 hosts, CVC partitioning, full Gluon
    //    optimizations (all defaults of DistConfig).
    let cfg = DistConfig::new(4);
    let out = driver::Run::new(&graph, Algorithm::Bfs)
        .config(&cfg)
        .launch();

    // 3. Check the answer against the shared-memory oracle.
    let source = max_out_degree_node(&graph);
    let oracle = reference::bfs(&graph, source);
    assert_eq!(out.int_labels, oracle, "distributed result must match");
    let reached = out.int_labels.iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "bfs from {source}: reached {reached}/{} nodes in {} rounds",
        graph.num_nodes(),
        out.rounds
    );

    // 4. What did it cost?
    println!(
        "partitioning: {:.1} ms   compute (max across hosts): {:.1} ms",
        out.partition_secs * 1e3,
        out.run.max_compute_secs * 1e3
    );
    println!(
        "communication: {} bytes in {} messages across {} sync phases",
        out.run.total_bytes, out.run.total_messages, out.run.phases
    );
    println!(
        "replication factor: {:.2}   load imbalance: {:.2}",
        out.partition.replication_factor,
        out.run.imbalance()
    );
}
