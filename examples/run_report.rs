//! Capturing a `RunReport`: the per-run observability bundle.
//!
//! Runs BFS on 4 simulated hosts with a `MetricsHub` and a `Tracer`
//! attached, then builds the merged [`RunReport`] — host registries,
//! per-round time series, cost-model calibration residuals — and shows
//! the three export surfaces:
//!
//! 1. the Prometheus text exposition (scrape-ready counters/gauges),
//! 2. the stable machine-readable JSON document,
//! 3. the per-phase calibration table (measured comm time vs. the α–β
//!    cost model's projection).
//!
//! It also demonstrates the determinism fingerprint: the report with all
//! timing fields stripped is bit-identical across thread counts, because
//! the simulated cluster moves exactly the same bytes no matter how the
//! compute is scheduled.
//!
//! Run with: `cargo run --release --example run_report`
//!
//! [`RunReport`]: gluon_suite::algos::RunReport

use gluon_suite::algos::{driver, Algorithm, DistConfig};
use gluon_suite::graph::gen;
use gluon_suite::metrics::MetricsHub;
use gluon_suite::net::CostModel;
use gluon_suite::trace::Tracer;

fn main() {
    let graph = gen::rmat(10, 8, Default::default(), 7);
    let cfg = DistConfig::new(4);

    let hub = MetricsHub::new(cfg.hosts);
    let tracer = Tracer::new(cfg.hosts);
    let out = driver::Run::new(&graph, Algorithm::Bfs)
        .config(&cfg)
        .metrics(&hub)
        .tracer(&tracer)
        .launch();
    let report = out.report_with_tracer(&hub, &CostModel::REPRO, &tracer);

    println!("== Prometheus exposition (first lines) ==");
    for line in report.prometheus().lines().take(12) {
        println!("{line}");
    }
    println!("...");

    println!();
    println!("== JSON document ==");
    let json = report.json();
    println!(
        "schema v{}, {} hosts, {} rounds, {} bytes on the wire",
        json.get("schema_version").and_then(|v| v.as_u64()).unwrap(),
        json.get("hosts").and_then(|v| v.as_u64()).unwrap(),
        json.get("rounds").and_then(|v| v.as_u64()).unwrap(),
        json.get("totals")
            .and_then(|t| t.get("bytes_sent"))
            .and_then(|v| v.as_u64())
            .unwrap(),
    );
    let rendered = report.render_json();
    println!("full document: {} bytes of JSON", rendered.len());

    println!();
    println!("== Cost-model calibration (CostModel::REPRO) ==");
    println!("phase  measured(s)  projected(s)  residual(s)");
    for row in gluon_suite::algos::phase_residuals(&out.host_stats, &CostModel::REPRO) {
        println!(
            "{:>5}  {:>11.6}  {:>12.6}  {:>+11.6}",
            row.phase, row.measured_secs, row.projected_secs, row.residual_secs
        );
    }

    // The fingerprint strips timing; what remains is scheduling-invariant.
    let single_hub = MetricsHub::new(cfg.hosts);
    let single = driver::Run::new(&graph, Algorithm::Bfs)
        .config(&cfg)
        .threads(1)
        .metrics(&single_hub)
        .launch();
    assert_eq!(
        report.fingerprint(),
        single.report(&single_hub, &CostModel::REPRO).fingerprint(),
        "non-timing report fields must not depend on the thread count"
    );
    println!();
    println!("Fingerprint is thread-count invariant: OK");
}
