//! Running the benchmark suite over a hostile network.
//!
//! Demonstrates the transport-wrapper stack: pagerank on 4 simulated hosts
//! where every wire frame risks being dropped, duplicated, corrupted, or
//! delayed — and the reliability layer makes the result bit-identical to a
//! fault-free run anyway. Then the failure mode: a total blackout, which
//! surfaces as a clean `PeerUnreachable` error instead of a hang.
//!
//! Run with: `cargo run --release --example chaos_network`

use gluon_suite::algos::{driver, Algorithm, DistConfig};
use gluon_suite::graph::gen;
use gluon_suite::net::{
    run_cluster_wrapped, Communicator, FaultAction, FaultCounters, FaultPlan, FaultRule,
    FaultyTransport, NetStats, ReliableTransport, RetryPolicy,
};
use std::time::{Duration, Instant};

fn main() {
    let graph = gen::rmat(10, 8, Default::default(), 7);
    let cfg = DistConfig::new(4);

    // Fault-free baseline.
    let clean = driver::Run::new(&graph, Algorithm::Pagerank)
        .config(&cfg)
        .launch();

    // The same computation over a 10%-drop / 5%-dup / 5%-corrupt / 10%-delay
    // wire, repaired underneath the substrate by go-back-N reliability.
    let counters = FaultCounters::new();
    let chaotic = driver::Run::new(&graph, Algorithm::Pagerank)
        .config(&cfg)
        .transport(|ep| {
            ReliableTransport::over(FaultyTransport::new(
                ep,
                FaultPlan::lossy(42),
                counters.clone(),
            ))
        })
        .launch();

    let identical = clean
        .ranks
        .iter()
        .zip(&chaotic.ranks)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "pagerank over a lossy wire ({} nodes, 4 hosts):",
        graph.num_nodes()
    );
    println!(
        "  faults injected : {:>6} ({} dropped, {} duplicated, {} corrupted, {} delayed)",
        counters.total(),
        counters.dropped(),
        counters.duplicated(),
        counters.corrupted(),
        counters.delayed()
    );
    println!(
        "  retransmitted   : {:>6} frames / {} bytes",
        chaotic.net.retransmit_messages, chaotic.net.retransmit_bytes
    );
    println!("  dup suppressed  : {:>6}", chaotic.net.dup_suppressed);
    println!("  crc rejections  : {:>6}", chaotic.net.corruption_detected);
    println!("  bit-identical   : {identical}");
    assert!(identical, "reliability layer failed to hide the chaos");

    // Total blackout: every frame vanishes. The run must fail fast with a
    // PeerUnreachable error, not hang the cluster.
    let started = Instant::now();
    let fail_fast = RetryPolicy {
        initial_rto: Duration::from_micros(500),
        max_retries: 6,
        recv_budget: Duration::from_millis(500),
        ..RetryPolicy::default()
    };
    let (results, _) = run_cluster_wrapped(
        2,
        NetStats::new(2),
        move |ep| {
            let wire = FaultyTransport::new(
                ep,
                FaultPlan::none(1).with_rule(FaultRule::always(FaultAction::Drop)),
                FaultCounters::new(),
            );
            wire.disarm(); // healthy during setup...
            ReliableTransport::with_policy(wire, fail_fast)
        },
        |net| {
            let comm = Communicator::new(net);
            comm.try_barrier().expect("wire is healthy during setup");
            net.inner().arm(); // ...then the network dies
            comm.try_all_reduce_u64(1, u64::wrapping_add)
        },
    );
    println!("\ntotal blackout on a 2-host cluster:");
    for (rank, res) in results.iter().enumerate() {
        match res {
            Ok(v) => println!("  host {rank}: unexpectedly succeeded with {v}"),
            Err(e) => println!("  host {rank}: error after {:?}: {e}", started.elapsed()),
        }
    }
}
