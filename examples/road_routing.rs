//! Road routing: distributed single-source shortest paths on a weighted
//! grid standing in for a road network.
//!
//! Compares the communication optimizations end to end: the same sssp run
//! at every optimization level (UNOPT → OSTI), showing how memoization and
//! metadata encoding cut the bytes on the wire while the answer stays
//! identical.
//!
//! Run with: `cargo run --release --example road_routing`

use gluon_suite::algos::{driver, reference, Algorithm, DistConfig, EngineKind};
use gluon_suite::graph::{gen, Gid};
use gluon_suite::partition::Policy;
use gluon_suite::substrate::OptLevel;

fn main() {
    // A 120x120 city grid; travel times 1..=9 per segment.
    let grid = gen::grid(120, 120);
    let roads = gen::with_random_weights(&grid, 9, 11);
    let source = Gid(0); // north-west corner
    println!(
        "sssp on a {}-intersection road grid from {source}, 4 hosts, OEC\n",
        roads.num_nodes()
    );
    let oracle = reference::sssp(&roads, source);
    println!(
        "{:<7} {:>12} {:>14} {:>8} {:>10}",
        "opts", "comm bytes", "comm messages", "rounds", "correct?"
    );
    for opts in OptLevel::ALL {
        let cfg = DistConfig {
            hosts: 4,
            policy: Policy::Oec,
            opts,
            engine: EngineKind::Galois,
        };
        let out = driver::Run::new(&roads, Algorithm::Sssp)
            .config(&cfg)
            .source(source)
            .pagerank(Default::default())
            .launch();
        let correct = out.int_labels == oracle;
        println!(
            "{:<7} {:>12} {:>14} {:>8} {:>10}",
            opts.to_string().to_uppercase(),
            out.run.total_bytes,
            out.run.total_messages,
            out.rounds,
            if correct { "yes" } else { "NO" }
        );
        assert!(correct, "optimizations must never change the answer");
    }
    // A concrete route query: distance to the south-east corner.
    let dest = roads.num_nodes() - 1;
    println!(
        "\ntravel time from intersection 0 to intersection {dest}: {}",
        oracle[dest as usize]
    );
}
