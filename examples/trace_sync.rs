//! Tracing the sync stack: where does a sync call's time actually go?
//!
//! Runs BFS on 4 simulated hosts twice — once on the clean in-memory
//! transport and once under the full `Reliable(Faulty(Memory))` chaos
//! stack — with a `Tracer` attached, then prints the per-stage summary
//! (extract / memo-translate / encode / send / recv-wait / decode / apply),
//! the per-field wire-mode histogram, and the reliability events the chaos
//! run produced. Both recordings are also exported as one Chrome
//! trace-event JSON file: load it in `chrome://tracing` or Perfetto and
//! each run appears as its own process with one track per simulated host.
//!
//! Run with: `cargo run --release --example trace_sync`

use gluon_suite::algos::{driver, Algorithm, DistConfig};
use gluon_suite::graph::gen;
use gluon_suite::net::{FaultCounters, FaultPlan, FaultyTransport, ReliableTransport};
use gluon_suite::trace::{ChromeTraceBuilder, Tracer};

fn main() {
    let graph = gen::rmat(10, 8, Default::default(), 7);
    let cfg = DistConfig::new(4);

    // Clean run: every sync phase decomposes into micro-stage child spans
    // whose durations sum exactly to the phase's recorded comm time.
    let clean_tracer = Tracer::new(cfg.hosts);
    let clean = driver::Run::new(&graph, Algorithm::Bfs)
        .config(&cfg)
        .tracer(&clean_tracer)
        .launch();
    println!("{}", clean_tracer.summary("bfs / clean transport"));

    // Chaos run: the reliability layer tags every retransmission,
    // suppressed duplicate, and CRC rejection as an instant event.
    let chaos_tracer = Tracer::new(cfg.hosts);
    let counters = FaultCounters::new();
    let chaotic = driver::Run::new(&graph, Algorithm::Bfs)
        .config(&cfg)
        .source(gluon_suite::graph::max_out_degree_node(&graph))
        .pagerank(Default::default())
        .tracer(&chaos_tracer)
        .transport(|ep| {
            ReliableTransport::over(FaultyTransport::new(
                ep,
                FaultPlan::lossy(42),
                counters.clone(),
            ))
            .with_tracer(chaos_tracer.clone())
        })
        .launch();
    println!("{}", chaos_tracer.summary("bfs / reliable-over-faulty"));

    assert_eq!(
        clean.int_labels, chaotic.int_labels,
        "chaos must not change results"
    );
    println!(
        "faults injected: {} -> retransmit events in trace: {}",
        counters.total(),
        chaos_tracer.retransmit_events()
    );

    let mut chrome = ChromeTraceBuilder::new();
    chrome.add("bfs clean", &clean_tracer);
    chrome.add("bfs chaos", &chaos_tracer);
    let path = std::env::temp_dir().join("gluon_trace_sync.json");
    std::fs::write(&path, chrome.finish()).expect("write trace");
    println!(
        "Chrome trace written to {} (load via chrome://tracing or Perfetto).",
        path.display()
    );
}
