//! Intra-host parallel scaling of the deterministic pool (the tentpole
//! measurement): pagerank on the rmat18 stand-in at 1/2/4/8 threads on a
//! single host, reporting the *measured* speedup — sequential work over the
//! critical path of the pool's weight-balanced chunk assignment. The
//! simulated cluster shares physical cores between hosts, so wall clock
//! cannot show intra-host scaling; the metered critical path can, and it
//! reflects the real chunk imbalance of the skewed input rather than an
//! assumed ideal.
//!
//! The `b.iter` micro-benchmark at the end times the pool primitive itself
//! (a weighted chunked map over a degree-skewed weight profile), which *is*
//! meaningful wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use gluon::Pool;
use gluon_algos::{driver, Algorithm, DistConfig, PagerankConfig};
use gluon_bench::inputs;
use gluon_graph::{gen, RmatProbs};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The acceptance input: a genuine scale-18 rmat (262k vertices), bigger
/// than the Table 1 stand-ins so the per-host chunk count is realistic.
fn rmat18() -> inputs::BenchGraph {
    inputs::BenchGraph {
        name: "rmat18",
        paper_name: "rmat28",
        graph: gen::rmat(18, 8, RmatProbs::GRAPH500, 28),
    }
}

fn speedup_at(graph: &inputs::BenchGraph, algo: Algorithm, threads: usize) -> f64 {
    let pr = PagerankConfig {
        max_iters: 5,
        ..Default::default()
    };
    let out = driver::Run::new(&graph.graph, algo)
        .config(&DistConfig::new(1))
        .pagerank(pr)
        .threads(threads)
        .launch();
    out.run.parallel_speedup()
}

fn bench_scaling(_c: &mut Criterion) {
    println!("\nintra-host scaling (measured speedup = seq work / critical path)");
    println!(
        "{:<8} {:>8} {:>12} {:>12}",
        "input", "threads", "pagerank", "bfs"
    );
    let g = rmat18();
    for threads in THREADS {
        let pr = speedup_at(&g, Algorithm::Pagerank, threads);
        let bfs = speedup_at(&g, Algorithm::Bfs, threads);
        println!("{:<8} {:>8} {:>11.2}x {:>11.2}x", g.name, threads, pr, bfs);
        if threads == 1 {
            assert!((pr - 1.0).abs() < 1e-9, "sequential run must report 1.0");
        }
        if threads == 4 {
            assert!(
                pr >= 2.0,
                "acceptance: pagerank/{} at 4 threads must show >= 2x, got {pr:.2}x",
                g.name
            );
        }
    }
}

fn bench_pool_primitive(c: &mut Criterion) {
    // Wall-clock for the primitive itself: a weighted chunked reduction
    // over a skewed per-element weight profile (rmat-like degree shape).
    let g = rmat18();
    let degrees: Vec<u64> = (0..g.graph.num_nodes())
        .map(|v| g.graph.out_degree(gluon_graph::Gid(v)) as u64)
        .collect();
    for threads in [1usize, 4] {
        let pool = Pool::new(threads);
        c.bench_function(&format!("pool/weighted-reduce/{threads}t"), |b| {
            b.iter(|| {
                let total = pool.reduce(
                    degrees.len(),
                    0u64,
                    |r| degrees[r].iter().sum(),
                    |a, b| a + b,
                );
                black_box(total)
            })
        });
        let _ = pool.drain_work();
    }
}

criterion_group!(benches, bench_scaling, bench_pool_primitive);
criterion_main!(benches);
