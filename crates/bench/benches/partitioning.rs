//! Microbenchmarks of the partitioning policies (§3.1): time to produce
//! all partitions of an rmat graph under each strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gluon_graph::gen;
use gluon_partition::{partition_all, PartitionStats, Policy};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let g = gen::rmat(13, 8, Default::default(), 99);
    let mut group = c.benchmark_group("partition-8-hosts");
    for policy in Policy::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &p| {
            b.iter(|| {
                let parts = partition_all(&g, 8, p);
                black_box(PartitionStats::of(&parts).replication_factor)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
