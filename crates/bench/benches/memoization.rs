//! Microbenchmarks of §4.1: the cost of the memoization handshake and the
//! per-message saving from dropping address translation (positional apply
//! versus global-ID hashmap lookups).

use criterion::{criterion_group, criterion_main, Criterion};
use gluon::MemoTable;
use gluon_graph::gen;
use gluon_net::{run_cluster, Communicator};
use gluon_partition::{partition_all, partition_on_host, Policy};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_handshake(c: &mut Criterion) {
    let g = gen::rmat(12, 8, Default::default(), 77);
    c.bench_function("memoization/handshake-4-hosts", |b| {
        b.iter(|| {
            let tables = run_cluster(4, |ep| {
                let comm = Communicator::new(ep);
                let lg = partition_on_host(&g, Policy::Cvc, &comm);
                MemoTable::exchange(&lg, &comm).total_entries()
            });
            black_box(tables)
        })
    });
}

fn bench_translation(c: &mut Criterion) {
    // The receive-side work per sync message: positional (memoized) apply
    // versus hashmap-based global-to-local translation (UNOPT).
    let g = gen::rmat(14, 8, Default::default(), 78);
    let lg = partition_all(&g, 4, Policy::Cvc).remove(0);
    let gids: Vec<u32> = lg.masters().map(|m| lg.gid(m).0).collect();
    let lids: Vec<u32> = lg.masters().map(|m| m.0).collect();
    let map: HashMap<u32, u32> = gids.iter().copied().zip(lids.iter().copied()).collect();
    let mut labels = vec![0u64; lg.num_proxies() as usize];

    c.bench_function("translation/positional-memoized", |b| {
        b.iter(|| {
            for (i, &lid) in lids.iter().enumerate() {
                labels[lid as usize] += i as u64;
            }
            black_box(labels[0])
        })
    });
    c.bench_function("translation/gid-hashmap-unopt", |b| {
        b.iter(|| {
            for (i, gid) in gids.iter().enumerate() {
                let lid = map[gid];
                labels[lid as usize] += i as u64;
            }
            black_box(labels[0])
        })
    });
}

criterion_group!(benches, bench_handshake, bench_translation);
criterion_main!(benches);
