//! Microbenchmarks of the §4.2 metadata encodings: dense / bit-vector /
//! indices modes versus the (global-ID, value) baseline, across update
//! densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gluon::encode::{decode_memoized, encode_gid_values, encode_memoized};
use gluon_graph::Gid;
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let list_len = 100_000usize;
    let mut group = c.benchmark_group("encode");
    for density_pct in [1u32, 10, 50, 100] {
        let stride = (100 / density_pct).max(1) as usize;
        let updated: Vec<u32> = (0..list_len as u32).step_by(stride).collect();
        group.bench_with_input(
            BenchmarkId::new("memoized", density_pct),
            &updated,
            |b, updated| {
                b.iter(|| {
                    let msg = encode_memoized(list_len, updated, |p| p as u32);
                    black_box(msg.len())
                })
            },
        );
        let pairs: Vec<(Gid, u32)> = updated.iter().map(|&p| (Gid(p), p)).collect();
        group.bench_with_input(
            BenchmarkId::new("gid-values", density_pct),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let msg = encode_gid_values(pairs);
                    black_box(msg.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let list_len = 100_000usize;
    let updated: Vec<u32> = (0..list_len as u32).step_by(10).collect();
    let msg = encode_memoized(list_len, &updated, |p| p as u32);
    c.bench_function("decode/memoized-bitvec", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            decode_memoized::<u32>(&msg, list_len, &mut |pos, v| {
                acc += pos as u64 + u64::from(v);
            })
            .expect("own encoding decodes");
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
