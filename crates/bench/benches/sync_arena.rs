//! Pooled vs. unpooled steady-state sync: the arena acceptance bench.
//!
//! Runs bfs and pagerank end-to-end on the rmat16 stand-in across
//! {OEC, CVC} × {1, 4} intra-host threads, once with the per-field sync
//! buffer arena (the default) and once with `.arena(false)`, which routes
//! the identical code path through fresh buffers every round. The two
//! variants are bit-identical in every label and wire counter — the arena
//! only changes where buffers come from — so the comparison isolates
//! allocator pressure: pooled must not lose to unpooled across the matrix.
//!
//! Both workloads sync with full reduce+broadcast specs: every peer
//! payload is rebuilt at a stable size each round, the steady state the
//! arena's send-slot rings recycle without allocating (see
//! `gluon::SyncArena`).

use criterion::{criterion_group, criterion_main, Criterion};
use gluon::OptLevel;
use gluon_algos::{driver, Algorithm, DistConfig, EngineKind, PagerankConfig};
use gluon_bench::inputs::{self, Scale};
use gluon_bench::report;
use gluon_graph::Csr;
use gluon_partition::Policy;
use std::hint::black_box;
use std::time::Instant;

/// Timed repetitions per cell (each is a full partition+run cycle).
const REPS: u32 = 8;

fn run_once(graph: &Csr, algo: Algorithm, policy: Policy, threads: usize, arena: bool) -> u32 {
    let out = driver::Run::new(graph, algo)
        .config(&DistConfig {
            hosts: 4,
            policy,
            opts: OptLevel::default(),
            engine: EngineKind::Galois,
        })
        .pagerank(PagerankConfig {
            max_iters: 10,
            ..Default::default()
        })
        .threads(threads)
        .arena(arena)
        .launch();
    out.rounds
}

fn mean_secs(graph: &Csr, algo: Algorithm, policy: Policy, threads: usize, arena: bool) -> f64 {
    run_once(graph, algo, policy, threads, arena); // warm-up (page-in, lazy init)
    let start = Instant::now();
    for _ in 0..REPS {
        black_box(run_once(graph, algo, policy, threads, arena));
    }
    start.elapsed().as_secs_f64() / f64::from(REPS)
}

fn bench_matrix(_c: &mut Criterion) {
    let bg = inputs::rmat_large(Scale::Quick);
    println!("\nsync arena: pooled vs unpooled (end-to-end, 4 hosts, {REPS} reps/cell)");
    println!(
        "{:<10} {:<6} {:>8} {:>12} {:>12} {:>8}",
        "bench", "policy", "threads", "pooled", "unpooled", "ratio"
    );
    let mut ratios = Vec::new();
    for algo in [Algorithm::Bfs, Algorithm::Pagerank] {
        for (policy, policy_name) in [(Policy::Oec, "oec"), (Policy::Cvc, "cvc")] {
            for threads in [1usize, 4] {
                let pooled = mean_secs(&bg.graph, algo, policy, threads, true);
                let unpooled = mean_secs(&bg.graph, algo, policy, threads, false);
                let ratio = pooled / unpooled.max(1e-12);
                ratios.push(ratio);
                println!(
                    "{:<10} {:<6} {:>8} {:>11.3}ms {:>11.3}ms {:>7.2}x",
                    algo.name(),
                    policy_name,
                    threads,
                    pooled * 1e3,
                    unpooled * 1e3,
                    ratio,
                );
            }
        }
    }
    let geo = report::geomean(ratios);
    println!("geomean pooled/unpooled time ratio: {geo:.3}x (acceptance: <= 1.0 + noise)");
    // Wall-clock on a loaded machine is noisy; gate on a margin generous
    // enough to never flake yet tight enough to catch the arena becoming a
    // systematic pessimization.
    assert!(
        geo <= 1.15,
        "pooled sync is systematically slower than unpooled ({geo:.3}x geomean)"
    );
}

fn bench_headline(c: &mut Criterion) {
    // The headline cells through the criterion interface: bfs on CVC at 4
    // threads, the configuration the paper's scaling study leans on.
    let bg = inputs::rmat_large(Scale::Quick);
    for (label, arena) in [("pooled", true), ("unpooled", false)] {
        c.bench_function(&format!("sync_arena/bfs/cvc/4t/{label}"), |b| {
            b.iter(|| black_box(run_once(&bg.graph, Algorithm::Bfs, Policy::Cvc, 4, arena)))
        });
    }
}

criterion_group!(benches, bench_matrix, bench_headline);
criterion_main!(benches);
