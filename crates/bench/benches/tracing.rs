//! Tracing overhead guard: a disabled `Tracer` must cost nothing.
//!
//! Benchmarks the raw record-call overhead (disabled vs enabled) and a
//! whole traced vs untraced BFS run, and *asserts* the zero-cost contract:
//! a run with a disabled tracer produces bit-identical byte/message
//! counters to a run without any tracer, and a disabled record call stays
//! within a generous per-call budget.

use criterion::{criterion_group, criterion_main, Criterion};
use gluon_algos::{driver, Algorithm, DistConfig};
use gluon_graph::gen;
use gluon_trace::{Stage, Tracer};
use std::hint::black_box;
use std::time::Instant;

fn bench_record_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracer-record");
    let disabled = Tracer::disabled();
    group.bench_with_input(
        criterion::BenchmarkId::new("disabled", "1k-spans"),
        &disabled,
        |b, t| {
            b.iter(|| {
                for i in 0..1_000u64 {
                    t.record_span(0, 0, Stage::Encode, None, i, 1);
                    t.record_wire_mode("bench", 3, 64);
                    t.record_message_size(64);
                }
                black_box(t.is_enabled())
            })
        },
    );
    let enabled = Tracer::new(1);
    group.bench_with_input(
        criterion::BenchmarkId::new("enabled", "1k-spans"),
        &enabled,
        |b, t| {
            b.iter(|| {
                for i in 0..1_000u64 {
                    t.record_span(0, 0, Stage::Encode, None, i, 1);
                    t.record_wire_mode("bench", 3, 64);
                    t.record_message_size(64);
                }
                black_box(t.is_enabled())
            })
        },
    );
    group.finish();
}

fn bench_traced_run(c: &mut Criterion) {
    let g = gen::rmat(9, 8, Default::default(), 5);
    let cfg = DistConfig::new(2);
    let mut group = c.benchmark_group("bfs-run");
    group.bench_with_input(criterion::BenchmarkId::new("untraced", "2h"), &g, |b, g| {
        b.iter(|| {
            black_box(
                driver::Run::new(g, Algorithm::Bfs)
                    .config(&cfg)
                    .launch()
                    .rounds,
            )
        })
    });
    group.bench_with_input(criterion::BenchmarkId::new("traced", "2h"), &g, |b, g| {
        b.iter(|| {
            let t = Tracer::new(cfg.hosts);
            black_box(
                driver::Run::new(g, Algorithm::Bfs)
                    .config(&cfg)
                    .tracer(&t)
                    .launch()
                    .rounds,
            )
        })
    });
    group.finish();
}

/// The guard proper: fails the bench run if the disabled tracer is not
/// effectively free.
fn guard_zero_cost(_c: &mut Criterion) {
    // 1. Counter identity: a disabled tracer must not perturb the run.
    let g = gen::rmat(8, 8, Default::default(), 9);
    let cfg = DistConfig::new(2);
    let plain = driver::Run::new(&g, Algorithm::Bfs).config(&cfg).launch();
    let disabled = driver::Run::new(&g, Algorithm::Bfs)
        .config(&cfg)
        .tracer(&Tracer::disabled())
        .launch();
    assert_eq!(plain.run.total_bytes, disabled.run.total_bytes);
    assert_eq!(plain.run.total_messages, disabled.run.total_messages);
    assert_eq!(plain.int_labels, disabled.int_labels);

    // 2. Per-call budget: 1M disabled record calls must stay far under
    //    the cost of the work they instrument (generous 100ns/call cap).
    let t = Tracer::disabled();
    let start = Instant::now();
    for i in 0..1_000_000u64 {
        t.record_span(0, 0, Stage::Send, None, i, 1);
    }
    let per_call = start.elapsed().as_nanos() as f64 / 1e6;
    assert!(
        per_call < 100.0,
        "disabled record_span costs {per_call:.1}ns/call — no longer zero-cost"
    );
    println!("guard: disabled record_span {per_call:.2}ns/call, counters identical");
}

criterion_group!(
    benches,
    bench_record_calls,
    bench_traced_run,
    guard_zero_cost
);
criterion_main!(benches);
