//! A minimal JSON emitter for machine-readable harness results.
//!
//! The harness binaries print human-readable tables; this module lets them
//! also drop the same cells into `bench_results/<name>.json` so downstream
//! tooling (plot scripts, regression diffs) can consume the numbers without
//! scraping text. Hand-rolled on purpose: the workspace vendors no JSON
//! dependency, and the emitter only needs to *write* a small tree.

use std::path::PathBuf;

/// A JSON value tree. Build with the `From` impls and [`Json::obj`] /
/// [`Json::Arr`], serialize with [`Json::render`].
///
/// # Examples
///
/// ```
/// use gluon_bench::json::Json;
///
/// let v = Json::obj([("bench", Json::from("bfs")), ("bytes", Json::from(1024u64))]);
/// assert_eq!(v.render(), "{\"bench\": \"bfs\", \"bytes\": 1024}");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a decimal point).
    UInt(u64),
    /// A float; non-finite values are emitted as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes the tree to a JSON string (single line, `", "` / `": "`
    /// separators).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // `Display` for f64 never uses exponent notation and
                    // round-trips, so the text is always valid JSON.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `value` to `bench_results/<name>.json` (creating the directory
/// under the current working directory) and returns the path written.
///
/// # Panics
///
/// Panics if the directory or file cannot be written — harness binaries
/// have nothing sensible to do with a half-recorded run.
pub fn write_results(name: &str, value: &Json) -> PathBuf {
    let dir = PathBuf::from("bench_results");
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join(format!("{name}.json"));
    let mut text = value.render();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::obj([
            ("name", Json::from("rmat16")),
            ("hosts", Json::from(4u64)),
            ("secs", Json::from(0.5f64)),
            ("rows", Json::Arr(vec![Json::from(1u64), Json::Null])),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\": \"rmat16\", \"hosts\": 4, \"secs\": 0.5, \
             \"rows\": [1, null], \"ok\": true}"
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }
}
