//! Machine-readable harness results: the JSON tree plus the file writers.
//!
//! The JSON value type lives in [`gluon_metrics::json`] — one hand-rolled
//! emitter/parser shared by the metrics [`RunReport`] and the harness
//! binaries (the workspace vendors no JSON dependency) — and is re-exported
//! here so harness code keeps writing `gluon_bench::json::Json`. This
//! module owns the single writer path that drops both the JSON tree and
//! the rendered text tables under the results directory.
//!
//! [`RunReport`]: gluon_algos::RunReport
//!
//! # Examples
//!
//! ```
//! use gluon_bench::json::Json;
//!
//! let v = Json::obj([("bench", Json::from("bfs")), ("bytes", Json::from(1024u64))]);
//! assert_eq!(v.render(), "{\"bench\": \"bfs\", \"bytes\": 1024}");
//! assert_eq!(Json::parse(&v.render()).unwrap(), v);
//! ```

use std::path::{Path, PathBuf};

pub use gluon_metrics::json::{Json, ParseError};

/// The harness output directory: `$BENCH_RESULTS_DIR` when set (the
/// regression gate uses this to produce comparison runs side by side),
/// `bench_results/` under the current working directory otherwise.
pub fn results_dir() -> PathBuf {
    std::env::var_os("BENCH_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("bench_results"), PathBuf::from)
}

/// Writes `value` to `<results_dir>/<name>.json` (creating the directory)
/// and returns the path written.
///
/// # Panics
///
/// Panics if the directory or file cannot be written — harness binaries
/// have nothing sensible to do with a half-recorded run.
pub fn write_results(name: &str, value: &Json) -> PathBuf {
    let mut text = value.render();
    text.push('\n');
    write_file(&results_dir(), &format!("{name}.json"), &text)
}

/// Writes already-rendered table text to `<results_dir>/<name>.txt`
/// through the same writer path as [`write_results`] and returns the path.
///
/// # Panics
///
/// Panics if the directory or file cannot be written.
pub fn write_text(name: &str, text: &str) -> PathBuf {
    write_file(&results_dir(), &format!("{name}.txt"), text)
}

fn write_file(dir: &Path, file: &str, contents: &str) -> PathBuf {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join(file);
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_creates_directory_and_file() {
        let dir = std::env::temp_dir().join(format!("gluon-bench-json-{}", std::process::id()));
        let path = write_file(&dir, "probe.json", "{\"ok\": true}\n");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\": true}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reexported_json_round_trips() {
        let v = Json::obj([
            ("rows", Json::Arr(vec![Json::from(1u64), Json::Null])),
            ("ratio", Json::from(0.5f64)),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
