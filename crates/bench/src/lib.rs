//! Shared support for the benchmark harness that regenerates every table
//! and figure of the Gluon paper.
//!
//! Each paper artifact has a binary in `src/bin` (`table1` … `table5`,
//! `fig8` … `fig10`); this library provides the scaled-down input suite
//! standing in for the paper's graphs, plus plain-text table rendering and
//! small numeric helpers. Run a binary with `--quick` for a fast smoke
//! configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inputs;
pub mod json;
pub mod report;
pub mod singlehost;

pub use inputs::{suite, BenchGraph, Scale};
pub use report::{geomean, Table};

/// Parses harness CLI arguments (currently just `--quick`).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    }
}

/// Parses the `--trace <out.json>` argument: the output path for a Chrome
/// trace-event recording of the harness's instrumented runs, or `None`
/// when tracing was not requested.
///
/// # Panics
///
/// Panics if `--trace` is the last argument (it requires a path).
pub fn trace_path_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().expect("--trace requires an output path"));
        }
    }
    None
}
