//! The benchmark input suite: scaled stand-ins for the paper's Table 1.
//!
//! The paper evaluates on rmat26/rmat28/kron30 (synthetic scale-free),
//! twitter40 (social), and clueweb12/wdc12 (web crawls). Absolute sizes are
//! scaled to laptop memory; the *shape* — degree skew, density, in/out
//! asymmetry — is preserved by the generators (see
//! `gluon_graph::gen`). EXPERIMENTS.md records the mapping.

use gluon_graph::{gen, Csr, RmatProbs};

/// Harness scale: `Full` for the recorded results, `Quick` for smoke runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny graphs; seconds end-to-end.
    Quick,
    /// The recorded configuration.
    Full,
}

/// One benchmark input: our name, the paper input it stands in for, and
/// the graph itself.
#[derive(Clone, Debug)]
pub struct BenchGraph {
    /// Name used in harness output (e.g. `rmat16`).
    pub name: &'static str,
    /// The paper input this stands in for (e.g. `rmat28`).
    pub paper_name: &'static str,
    /// The generated graph.
    pub graph: Csr,
}

impl BenchGraph {
    /// A weighted copy for sssp (weights 1..=100, deterministic).
    pub fn weighted(&self) -> Csr {
        gen::with_random_weights(&self.graph, 100, 0xC0FFEE)
    }
}

fn scaled(scale: Scale, full: u32, quick: u32) -> u32 {
    match scale {
        Scale::Full => full,
        Scale::Quick => quick,
    }
}

/// The synthetic stand-in for rmat26 (the paper's smaller rmat input).
pub fn rmat_small(scale: Scale) -> BenchGraph {
    let s = scaled(scale, 14, 9);
    BenchGraph {
        name: "rmat14",
        paper_name: "rmat26",
        graph: gen::rmat(s, 16, RmatProbs::GRAPH500, 26),
    }
}

/// The stand-in for rmat28.
pub fn rmat_large(scale: Scale) -> BenchGraph {
    let s = scaled(scale, 16, 10);
    BenchGraph {
        name: "rmat16",
        paper_name: "rmat28",
        graph: gen::rmat(s, 16, RmatProbs::GRAPH500, 28),
    }
}

/// The stand-in for kron30.
pub fn kron(scale: Scale) -> BenchGraph {
    let s = scaled(scale, 17, 10);
    BenchGraph {
        name: "kron17",
        paper_name: "kron30",
        graph: gen::kronecker(s, 16, 30),
    }
}

/// The stand-in for twitter40 (denser, skew on both degree directions).
pub fn twitter(scale: Scale) -> BenchGraph {
    let n = scaled(scale, 40_000, 2_000);
    BenchGraph {
        name: "twitter-like",
        paper_name: "twitter40",
        graph: gen::twitter_like(n, 35, 40),
    }
}

/// The stand-in for clueweb12 (huge in-degree hubs, bounded out-degree).
pub fn web(scale: Scale) -> BenchGraph {
    let n = scaled(scale, 80_000, 3_000);
    BenchGraph {
        name: "web-like",
        paper_name: "clueweb12",
        graph: gen::web_like(n, 22, 1.9, 12),
    }
}

/// The stand-in for wdc12 (the largest crawl).
pub fn wdc(scale: Scale) -> BenchGraph {
    let n = scaled(scale, 150_000, 4_000);
    BenchGraph {
        name: "wdc-like",
        paper_name: "wdc12",
        graph: gen::web_like(n, 18, 2.0, 13),
    }
}

/// The full input suite in the paper's Table 1 order.
pub fn suite(scale: Scale) -> Vec<BenchGraph> {
    vec![
        rmat_small(scale),
        twitter(scale),
        rmat_large(scale),
        kron(scale),
        web(scale),
        wdc(scale),
    ]
}

/// The three inputs used for the scaling studies (Figure 8/9's rmat28,
/// kron30, clueweb12).
pub fn scaling_suite(scale: Scale) -> Vec<BenchGraph> {
    vec![rmat_large(scale), kron(scale), web(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_small_and_complete() {
        let graphs = suite(Scale::Quick);
        assert_eq!(graphs.len(), 6);
        for g in &graphs {
            assert!(g.graph.num_nodes() > 0, "{}", g.name);
            assert!(g.graph.num_edges() > 0, "{}", g.name);
            assert!(
                g.graph.num_nodes() <= 1 << 12,
                "{} too big for quick",
                g.name
            );
        }
    }

    #[test]
    fn weighted_copy_has_weights() {
        let g = rmat_small(Scale::Quick);
        assert!(!g.graph.is_weighted());
        assert!(g.weighted().is_weighted());
    }
}
