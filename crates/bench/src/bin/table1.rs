//! Table 1: inputs and their key properties.
//!
//! Prints |V|, |E|, |E|/|V|, max out-degree and max in-degree for every
//! benchmark input, next to the paper input each one stands in for.

use gluon_bench::{report, scale_from_args, suite, Table};
use gluon_graph::GraphStats;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(vec![
        "input",
        "stands in for",
        "|V|",
        "|E|",
        "|E|/|V|",
        "max Dout",
        "max Din",
    ]);
    for bg in suite(scale) {
        let s = GraphStats::of(&bg.graph);
        table.row(vec![
            bg.name.to_owned(),
            bg.paper_name.to_owned(),
            s.num_nodes.to_string(),
            s.num_edges.to_string(),
            format!("{:.0}", s.avg_degree),
            s.max_out_degree.to_string(),
            s.max_in_degree.to_string(),
        ]);
    }
    table.print("Table 1: inputs and their key properties");
    println!();
    println!(
        "Paper shape to check: rmat inputs have extreme max out-degree, web \
         crawls extreme max in-degree, twitter is dense (|E|/|V| ~ 35)."
    );
    let _ = report::secs(0.0);
}
