//! Table 5: single-node multi-GPU comparison — D-IrGL under the four
//! partitioning policies on 4 devices, with the random edge-cut column
//! standing in for Gunrock (which, like other multi-GPU systems, "can
//! handle only outgoing edge-cuts").

use gluon_algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_bench::{inputs, report, scale_from_args, Table};
use gluon_graph::Csr;
use gluon_net::CostModel;
use gluon_partition::Policy;

fn run_policy(graph: &Csr, algo: Algorithm, policy: Policy) -> f64 {
    let cfg = DistConfig {
        hosts: 4,
        policy,
        opts: Default::default(),
        engine: EngineKind::Irgl,
    };
    driver::Run::new(graph, algo)
        .config(&cfg)
        .launch()
        .projected_secs(&CostModel::REPRO)
}

fn main() {
    let scale = scale_from_args();
    let graphs = [inputs::rmat_small(scale), inputs::twitter(scale)];
    let policies = [
        ("gunrock~(random-oec)", Policy::RandomOec),
        ("d-irgl(oec)", Policy::Oec),
        ("d-irgl(iec)", Policy::Iec),
        ("d-irgl(hvc)", Policy::Hvc),
        ("d-irgl(cvc)", Policy::Cvc),
    ];
    let mut table = Table::new(vec![
        "input",
        "bench",
        policies[0].0,
        policies[1].0,
        policies[2].0,
        policies[3].0,
        policies[4].0,
    ]);
    let mut best_vs_oec = Vec::new();
    for bg in &graphs {
        for algo in Algorithm::ALL {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            let times: Vec<f64> = policies
                .iter()
                .map(|&(_, p)| run_policy(graph, algo, p))
                .collect();
            let oec_like = times[0];
            let best_flexible = times[1..].iter().copied().fold(f64::INFINITY, f64::min);
            best_vs_oec.push(oec_like / best_flexible);
            let mut row = vec![bg.name.to_owned(), algo.name().to_owned()];
            row.extend(times.iter().map(|&t| report::secs(t)));
            table.row(row);
        }
    }
    table.print("Table 5: projected time (s), 4 emulated GPUs, per partitioning policy");
    println!();
    println!(
        "geomean speedup of best flexible policy over the OEC-only baseline: {:.2}x",
        report::geomean(best_vs_oec)
    );
    println!(
        "Paper shape to check: no single policy wins everywhere; the best \
         flexible policy beats the OEC-only (Gunrock-style) configuration \
         (the paper reports a 1.6x geomean for D-IrGL over Gunrock)."
    );
}
