//! Figure 9: strong scaling of the distributed GPU system (D-IrGL) across
//! the device sweep on the rmat28 and kron30 stand-ins.
//!
//! Each "GPU" is an emulated device (see `gluon_engines::irgl`); the table
//! reports the measured wall time, the projected time under the network
//! cost model, and the communication volume.

use gluon_algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_bench::{inputs, report, scale_from_args, Scale, Table};
use gluon_graph::Csr;
use gluon_net::CostModel;
use gluon_partition::Policy;

fn main() {
    let scale = scale_from_args();
    let device_counts: &[usize] = if scale == Scale::Quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let graphs = [inputs::rmat_large(scale), inputs::kron(scale)];
    let mut table = Table::new(vec![
        "input",
        "bench",
        "gpus",
        "proj time (s)",
        "wall (s)",
        "comm volume",
        "rounds",
    ]);
    let mut speedups = Vec::new();
    for bg in &graphs {
        for algo in Algorithm::ALL {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            let mut first = None;
            let mut last = None;
            for &gpus in device_counts {
                let cfg = DistConfig {
                    hosts: gpus,
                    policy: Policy::Cvc,
                    opts: Default::default(),
                    engine: EngineKind::Irgl,
                };
                let out = driver::Run::new(graph, algo).config(&cfg).launch();
                let projected = out.projected_secs(&CostModel::REPRO);
                if gpus == device_counts[0] {
                    first = Some(projected);
                }
                last = Some(projected);
                table.row(vec![
                    bg.name.to_owned(),
                    algo.name().to_owned(),
                    gpus.to_string(),
                    report::secs(projected),
                    report::secs(out.algo_secs),
                    report::bytes(out.run.total_bytes),
                    out.rounds.to_string(),
                ]);
            }
            if let (Some(f), Some(l)) = (first, last) {
                speedups.push(f / l);
            }
        }
    }
    table.print("Figure 9: strong scaling of D-IrGL on emulated GPUs");
    println!();
    println!(
        "geomean speedup from {} to {} devices: {:.2}x",
        device_counts[0],
        device_counts.last().expect("non-empty"),
        report::geomean(speedups)
    );
    println!(
        "Paper shape to check: D-IrGL keeps scaling with device count (the \
         paper reports ~6.5x from 4 to 64 GPUs on rmat28)."
    );
}
