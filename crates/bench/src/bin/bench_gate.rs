//! The benchmark regression gate: diffs the current `bench_results/`
//! artifacts against committed baselines.
//!
//! Deterministic counters — payload bytes per row and per wire mode,
//! message and round counts, calibration traffic, the row sets themselves,
//! and the report schema version — must match the baseline **exactly**;
//! any difference is a HARD failure and a nonzero exit, because the
//! simulated cluster is bit-deterministic and a drifted counter means the
//! substrate changed behavior. Timings (wall seconds, measured comm
//! seconds, speedups) are environment-dependent: they only WARN when they
//! drift beyond the relative tolerance, and never fail the gate.
//!
//! Usage: `bench_gate [--baseline <dir>] [--current <dir>] [--tol <frac>]
//! [--rebaseline]`
//!
//! Defaults: baseline `bench_results/baseline`, current
//! `$BENCH_RESULTS_DIR` (or `bench_results/`), tolerance `$BENCH_GATE_TOL`
//! (or `0.5`, i.e. ±50% relative). `--rebaseline` copies the current
//! artifacts over the baseline instead of comparing.

use gluon_bench::json::{self, Json};
use gluon_bench::Table;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One row array inside an artifact: its field name and the key columns
/// identifying a row within it.
type RowArray = (&'static str, &'static [&'static str]);

/// The artifacts under the gate, and the row arrays each one carries.
const ARTIFACTS: [(&str, &[RowArray]); 3] = [
    ("fig8", &[("rows", &["input", "bench", "system", "hosts"])]),
    (
        "table4",
        &[
            ("rows", &["input", "bench"]),
            ("scaling", &["input", "bench", "threads"]),
        ],
    ),
    (
        "report",
        &[("cells", &["input", "bench", "system", "hosts"])],
    ),
];

/// Per-row fields compared exactly (HARD on mismatch). Fields absent from
/// a row (e.g. `v1_baseline_bytes: null` on Gemini rows) must be absent
/// or null in both.
fn hard_fields(artifact: &str, array: &str) -> &'static [&'static str] {
    match (artifact, array) {
        ("fig8", "rows") => &["comm_bytes", "v1_baseline_bytes", "rounds"],
        _ => &[],
    }
}

/// Per-row fields compared within tolerance (WARN on drift).
fn soft_fields(artifact: &str, array: &str) -> &'static [&'static str] {
    match (artifact, array) {
        ("fig8", "rows") => &["projected_secs", "wall_secs", "retransmit_bytes"],
        ("table4", "rows") => &[
            "ligra_secs",
            "d_ligra_secs",
            "galois_secs",
            "d_galois_secs",
            "gemini_secs",
            "d_ligra_overhead",
            "d_galois_overhead",
        ],
        ("table4", "scaling") => &["speedup", "projected_secs"],
        ("report", "cells") => &["measured_secs", "projected_secs", "residual_secs"],
        _ => &[],
    }
}

/// Cap on WARN rows in the printed table (hard failures always print).
const MAX_WARN_ROWS: usize = 25;

struct Gate {
    tol: f64,
    /// Counters/timings compared.
    checked: usize,
    hard: usize,
    soft: usize,
    /// Only failing/drifting rows land in the printed table.
    table: Table,
}

impl Gate {
    fn new(tol: f64) -> Gate {
        Gate {
            tol,
            checked: 0,
            hard: 0,
            soft: 0,
            table: Table::new(vec!["metric", "baseline", "current", "delta", "status"]),
        }
    }

    fn hard_fail(&mut self, metric: &str, base: &str, cur: &str) {
        self.hard += 1;
        self.table.row(vec![
            metric.to_owned(),
            base.to_owned(),
            cur.to_owned(),
            "-".to_owned(),
            "HARD".to_owned(),
        ]);
    }

    /// Exact comparison of a deterministic counter (or any value rendered
    /// to text): any difference is a hard failure.
    fn exact(&mut self, metric: &str, base: &Json, cur: &Json) {
        self.checked += 1;
        let (b, c) = (base.render(), cur.render());
        if b != c {
            self.hard_fail(metric, &b, &c);
        }
    }

    /// Tolerance comparison of a timing: drift beyond `tol` (relative to
    /// the larger magnitude) is a warning, never a failure.
    fn timing(&mut self, metric: &str, base: &Json, cur: &Json) {
        self.checked += 1;
        let (Some(b), Some(c)) = (base.as_f64(), cur.as_f64()) else {
            // Nulls (e.g. a v1 ratio on a Gemini row) must agree in kind.
            if base.render() != cur.render() {
                self.hard_fail(metric, &base.render(), &cur.render());
            }
            return;
        };
        let scale = b.abs().max(c.abs());
        if scale > 0.0 && ((c - b) / scale).abs() > self.tol {
            self.soft += 1;
            // Sub-microsecond simulated phases jitter by whole multiples
            // of themselves; a handful of rows plus the summary count tell
            // the story without drowning the hard failures.
            if self.soft > MAX_WARN_ROWS {
                return;
            }
            self.table.row(vec![
                metric.to_owned(),
                format!("{b:.6}"),
                format!("{c:.6}"),
                format!("{:+.1}%", (c - b) / b.abs().max(1e-12) * 100.0),
                "WARN".to_owned(),
            ]);
        }
    }
}

fn load(dir: &Path, name: &str) -> Result<Json, String> {
    let path = dir.join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e:?}", path.display()))
}

/// The identity of one row within a row array.
fn row_key(row: &Json, cols: &[&str]) -> String {
    cols.iter()
        .map(|c| row.get(c).map_or("?".to_owned(), Json::render))
        .collect::<Vec<_>>()
        .join("/")
}

fn compare_rows(
    gate: &mut Gate,
    artifact: &str,
    array: &str,
    cols: &[&str],
    base: &Json,
    cur: &Json,
) {
    let empty = Vec::new();
    let base_rows = base.get(array).and_then(Json::items).unwrap_or(&empty);
    let cur_rows = cur.get(array).and_then(Json::items).unwrap_or(&empty);
    let cur_by_key: Vec<(String, &Json)> = cur_rows.iter().map(|r| (row_key(r, cols), r)).collect();
    let mut seen = vec![false; cur_by_key.len()];
    for brow in base_rows {
        let key = row_key(brow, cols);
        let metric_base = format!("{artifact}.{array}[{key}]");
        let Some(pos) = cur_by_key.iter().position(|(k, _)| *k == key) else {
            gate.hard_fail(&metric_base, "present", "missing row");
            continue;
        };
        seen[pos] = true;
        let crow = cur_by_key[pos].1;
        for f in hard_fields(artifact, array) {
            let b = brow.get(f).cloned().unwrap_or(Json::Null);
            let c = crow.get(f).cloned().unwrap_or(Json::Null);
            gate.exact(&format!("{metric_base}.{f}"), &b, &c);
        }
        for f in soft_fields(artifact, array) {
            let b = brow.get(f).cloned().unwrap_or(Json::Null);
            let c = crow.get(f).cloned().unwrap_or(Json::Null);
            gate.timing(&format!("{metric_base}.{f}"), &b, &c);
        }
        // Calibration cells carry a per-phase array whose shape and
        // traffic columns are deterministic.
        if artifact == "report" && array == "cells" {
            compare_phases(gate, &metric_base, brow, crow);
        }
    }
    for (pos, (key, _)) in cur_by_key.iter().enumerate() {
        if !seen[pos] {
            gate.hard_fail(
                &format!("{artifact}.{array}[{key}]"),
                "missing row",
                "present",
            );
        }
    }
}

fn compare_phases(gate: &mut Gate, metric_base: &str, brow: &Json, crow: &Json) {
    let empty = Vec::new();
    let bp = brow.get("phases").and_then(Json::items).unwrap_or(&empty);
    let cp = crow.get("phases").and_then(Json::items).unwrap_or(&empty);
    gate.exact(
        &format!("{metric_base}.phases.len"),
        &Json::from(bp.len()),
        &Json::from(cp.len()),
    );
    for (b, c) in bp.iter().zip(cp) {
        let phase = b.get("phase").map_or("?".to_owned(), Json::render);
        for f in ["max_host_bytes", "max_host_messages"] {
            gate.exact(
                &format!("{metric_base}.phases[{phase}].{f}"),
                b.get(f).unwrap_or(&Json::Null),
                c.get(f).unwrap_or(&Json::Null),
            );
        }
        for f in ["measured_secs", "projected_secs", "residual_secs"] {
            gate.timing(
                &format!("{metric_base}.phases[{phase}].{f}"),
                b.get(f).unwrap_or(&Json::Null),
                c.get(f).unwrap_or(&Json::Null),
            );
        }
    }
}

fn compare_artifact(
    gate: &mut Gate,
    artifact: &str,
    arrays: &[(&str, &[&str])],
    base: &Json,
    cur: &Json,
) {
    if artifact == "fig8" {
        // The per-wire-mode byte breakdown is fully deterministic.
        gate.exact(
            "fig8.wire_mode_bytes",
            base.get("wire_mode_bytes").unwrap_or(&Json::Null),
            cur.get("wire_mode_bytes").unwrap_or(&Json::Null),
        );
    }
    if artifact == "report" {
        gate.exact(
            "report.schema_version",
            base.get("schema_version").unwrap_or(&Json::Null),
            cur.get("schema_version").unwrap_or(&Json::Null),
        );
        gate.exact(
            "report.cost_model",
            base.get("cost_model").unwrap_or(&Json::Null),
            cur.get("cost_model").unwrap_or(&Json::Null),
        );
    }
    for (array, cols) in arrays {
        compare_rows(gate, artifact, array, cols, base, cur);
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} requires a value"))
            .clone()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_dir = arg_value(&args, "--current").map_or_else(json::results_dir, PathBuf::from);
    let baseline_dir = arg_value(&args, "--baseline")
        .map_or_else(|| PathBuf::from("bench_results/baseline"), PathBuf::from);
    let tol: f64 = arg_value(&args, "--tol")
        .or_else(|| std::env::var("BENCH_GATE_TOL").ok())
        .map_or(0.5, |v| v.parse().expect("tolerance must be a number"));

    if args.iter().any(|a| a == "--rebaseline") {
        std::fs::create_dir_all(&baseline_dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", baseline_dir.display()));
        for (name, _) in ARTIFACTS {
            let src = current_dir.join(format!("{name}.json"));
            let dst = baseline_dir.join(format!("{name}.json"));
            std::fs::copy(&src, &dst).unwrap_or_else(|e| {
                panic!("cannot copy {} to {}: {e}", src.display(), dst.display())
            });
            println!("rebaselined {}", dst.display());
        }
        return ExitCode::SUCCESS;
    }

    let mut gate = Gate::new(tol);
    for (name, arrays) in ARTIFACTS {
        match (load(&baseline_dir, name), load(&current_dir, name)) {
            (Ok(base), Ok(cur)) => compare_artifact(&mut gate, name, arrays, &base, &cur),
            (Err(e), _) => gate.hard_fail(
                &format!("{name}.baseline"),
                &format!("{e} (run with --rebaseline to record one)"),
                "-",
            ),
            (_, Err(e)) => gate.hard_fail(
                &format!("{name}.current"),
                "-",
                &format!("{e} (run the fig8 and table4 binaries first)"),
            ),
        }
    }

    if gate.hard + gate.soft > 0 {
        gate.table.print("Benchmark gate: regressions");
        if gate.soft > MAX_WARN_ROWS {
            println!(
                "({} more timing warnings not shown)",
                gate.soft - MAX_WARN_ROWS
            );
        }
    }
    println!();
    println!(
        "bench_gate: {} comparisons, {} hard failures (deterministic counters/schema), \
         {} timing warnings (tolerance ±{:.0}%, informational only)",
        gate.checked,
        gate.hard,
        gate.soft,
        gate.tol * 100.0
    );
    if gate.hard > 0 {
        println!("bench_gate: FAIL — deterministic results drifted from the committed baseline");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: OK");
        ExitCode::SUCCESS
    }
}
