//! Table 3: fastest execution time of all systems using the
//! best-performing number of hosts — D-Ligra, D-Galois, D-IrGL (Gluon
//! systems) versus Gemini, on the four large inputs.
//!
//! As in the paper, each system reports its best time over the host sweep
//! (the winning host count in parentheses), and the footer prints each
//! Gluon system's geomean speedup over Gemini. Our wall-clock runs on
//! simulated hosts (threads), so the table also reports the *projected*
//! time under the calibrated cost model, which is the column whose shape
//! should match the paper.

use gluon_algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_bench::{inputs, report, scale_from_args, Scale, Table};
use gluon_gemini::GeminiAlgo;
use gluon_graph::{max_out_degree_node, Csr};
use gluon_net::CostModel;
use gluon_partition::Policy;

fn best_gluon(graph: &Csr, algo: Algorithm, engine: EngineKind, hosts: &[usize]) -> (f64, usize) {
    let model = CostModel::REPRO;
    hosts
        .iter()
        .map(|&h| {
            let cfg = DistConfig {
                hosts: h,
                policy: Policy::Cvc,
                opts: Default::default(),
                engine,
            };
            let out = driver::Run::new(graph, algo).config(&cfg).launch();
            (out.projected_secs(&model), h)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"))
        .expect("non-empty host sweep")
}

fn best_gemini(graph: &Csr, algo: Algorithm, hosts: &[usize]) -> (f64, usize) {
    let model = CostModel::REPRO;
    let src = max_out_degree_node(graph);
    hosts
        .iter()
        .map(|&h| {
            let ga = match algo {
                Algorithm::Bfs => GeminiAlgo::Bfs(src),
                Algorithm::Sssp => GeminiAlgo::Sssp(src),
                Algorithm::Cc => GeminiAlgo::Cc,
                Algorithm::Pagerank => GeminiAlgo::Pagerank(0.85, 1e-6, 100),
            };
            let input = if algo == Algorithm::Cc {
                gluon_algos::reference::symmetrize(graph)
            } else {
                graph.clone()
            };
            let out = gluon_gemini::run(&input, h, ga);
            let projected = out.run.projected_secs(&model, gluon::DEFAULT_EDGES_PER_SEC);
            (projected, h)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"))
        .expect("non-empty host sweep")
}

fn main() {
    let scale = scale_from_args();
    let hosts: &[usize] = if scale == Scale::Quick {
        &[2, 4]
    } else {
        &[2, 4, 8, 16]
    };
    let graphs = [
        inputs::rmat_large(scale),
        inputs::kron(scale),
        inputs::web(scale),
        inputs::wdc(scale),
    ];
    let mut table = Table::new(vec![
        "bench", "input", "d-ligra", "d-galois", "gemini", "d-irgl",
    ]);
    let mut speedups: Vec<(EngineKind, f64)> = Vec::new();
    for algo in Algorithm::ALL {
        for bg in &graphs {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            let (ligra, hl) = best_gluon(graph, algo, EngineKind::Ligra, hosts);
            let (galois, hg) = best_gluon(graph, algo, EngineKind::Galois, hosts);
            let (irgl, hi) = best_gluon(graph, algo, EngineKind::Irgl, hosts);
            let (gemini, hge) = best_gemini(graph, algo, hosts);
            speedups.push((EngineKind::Ligra, gemini / ligra));
            speedups.push((EngineKind::Galois, gemini / galois));
            speedups.push((EngineKind::Irgl, gemini / irgl));
            table.row(vec![
                algo.name().to_owned(),
                bg.name.to_owned(),
                format!("{} ({hl})", report::secs(ligra)),
                format!("{} ({hg})", report::secs(galois)),
                format!("{} ({hge})", report::secs(gemini)),
                format!("{} ({hi})", report::secs(irgl)),
            ]);
        }
    }
    table.print("Table 3: fastest projected execution time (s), best host count in parens");
    println!();
    for engine in EngineKind::ALL {
        let g = report::geomean(
            speedups
                .iter()
                .filter(|(e, _)| *e == engine)
                .map(|&(_, s)| s),
        );
        println!("geomean speedup of {engine} over gemini: {g:.2}x");
    }
    println!();
    println!(
        "Paper shape to check: all three Gluon systems beat Gemini on \
         (geo)mean; the paper reports ~2x (D-Ligra), ~3.9x (D-Galois), \
         ~4.9x (D-IrGL)."
    );
}
