//! Table 2: graph construction time — load, partition, build the in-memory
//! representation — for D-Ligra/D-Galois (the Gluon partitioner) versus
//! Gemini's chunked edge-cut, across host counts. Also prints the §5.2
//! replication-factor comparison (CVC stays low, edge-cut grows).

use gluon_bench::{inputs, report, scale_from_args, Scale, Table};
use gluon_gemini::GeminiPartition;
use gluon_net::{run_cluster, Communicator};
use gluon_partition::{partition_on_host, PartitionStats, Policy};
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let host_counts: &[usize] = if scale == Scale::Quick {
        &[1, 4]
    } else {
        &[1, 4, 16]
    };
    let graphs = [
        inputs::rmat_large(scale),
        inputs::kron(scale),
        inputs::web(scale),
    ];

    let mut time_table = Table::new(vec!["hosts", "input", "d-ligra/d-galois (s)", "gemini (s)"]);
    let mut rep_table = Table::new(vec![
        "hosts",
        "input",
        "gluon CVC rep",
        "gemini edge-cut rep",
    ]);
    for &hosts in host_counts {
        for bg in &graphs {
            // Gluon partitioner, distributed across simulated hosts (CVC —
            // the configuration the Gluon systems use at scale).
            let g = &bg.graph;
            let start = Instant::now();
            let parts = run_cluster(hosts, |ep| {
                let comm = Communicator::new(ep);
                let mut lg = partition_on_host(g, Policy::Cvc, &comm);
                lg.build_transpose();
                lg
            });
            let gluon_secs = start.elapsed().as_secs_f64();
            let gluon_rep = PartitionStats::of(&parts).replication_factor;

            let start = Instant::now();
            let gem: Vec<_> = run_cluster(hosts, |ep| {
                let comm = Communicator::new(ep);
                let p = GeminiPartition::build(g, hosts, comm.rank());
                comm.barrier();
                p
            });
            let gemini_secs = start.elapsed().as_secs_f64();
            let gemini_rep = gluon_gemini::replication_factor(&gem);

            time_table.row(vec![
                hosts.to_string(),
                bg.name.to_owned(),
                report::secs(gluon_secs),
                report::secs(gemini_secs),
            ]);
            rep_table.row(vec![
                hosts.to_string(),
                bg.name.to_owned(),
                format!("{gluon_rep:.2}"),
                format!("{gemini_rep:.2}"),
            ]);
        }
    }
    time_table.print("Table 2: graph construction time (load + partition + build)");
    rep_table.print("§5.2: replication factor, Gluon CVC vs Gemini edge-cut");
    println!();
    println!(
        "Paper shape to check: Gluon construction beats Gemini at every host \
         count, and CVC replication stays below the edge-cut replication as \
         hosts grow."
    );
}
