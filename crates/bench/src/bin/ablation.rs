//! Ablation studies of Gluon's design choices (beyond the paper's figures):
//!
//! 1. wire-mode crossover — which §4.2 encoding wins at which update
//!    density, and what the smallest-size rule saves versus fixing any
//!    single mode;
//! 2. CVC grid shape — communication volume under different
//!    rows × cols factorizations of the same host count;
//! 3. structural-invariant subsets — how many mirrors each §3.2 pattern
//!    touches per policy (the reduce/broadcast set sizes);
//! 4. lossy-network overhead — the retransmission tax the reliability
//!    layer pays, and the cost model charges, as the drop rate grows.

use gluon::encode::{candidate_sizes, encode_memoized, WireMode};
use gluon::{FlagFilter, MemoTable, OptLevel};
use gluon_algos::{driver, Algorithm, DistConfig, EngineKind, PagerankConfig};
use gluon_bench::{inputs, report, scale_from_args, trace_path_from_args, Table};
use gluon_graph::max_out_degree_node;
use gluon_net::{
    run_cluster, Communicator, CostModel, FaultCounters, FaultPlan, FaultyTransport,
    ReliableTransport,
};
use gluon_partition::{partition_on_host, Policy};
use gluon_trace::{ChromeTraceBuilder, Tracer};

fn wire_mode_crossover() {
    let list_len = 10_000usize;
    let mut table = Table::new(vec![
        "updated %",
        "chosen mode",
        "chosen bytes",
        "dense",
        "bitvec",
        "indices",
        "idx_delta",
        "run_len",
        "all-equal (same_*)",
    ]);
    for pct in [0u32, 1, 2, 5, 10, 20, 40, 60, 80, 100] {
        let k = (list_len as u32 * pct / 100) as usize;
        let updated: Vec<u32> = match list_len.checked_div(k) {
            None => Vec::new(),
            Some(stride) => (0..list_len as u32).step_by(stride.max(1)).collect(),
        };
        let chosen = encode_memoized(list_len, &updated, |p| p as u32);
        let sizes: std::collections::HashMap<WireMode, usize> =
            candidate_sizes::<u32>(list_len, &updated, true, true)
                .into_iter()
                .collect();
        let size_of = |m: WireMode| sizes.get(&m).map_or_else(|| "-".into(), |s| s.to_string());
        // What a broadcast of one identical value would cost: the cheaper
        // of the two same-value layouts.
        let same = sizes
            .get(&WireMode::SameIndicesDelta)
            .into_iter()
            .chain(sizes.get(&WireMode::SameRunLength))
            .min()
            .map_or_else(|| "-".into(), |s| s.to_string());
        table.row(vec![
            pct.to_string(),
            format!("{:?}", WireMode::of(&chosen)),
            chosen.len().to_string(),
            size_of(WireMode::Dense),
            size_of(WireMode::Bitvec),
            size_of(WireMode::Indices),
            size_of(WireMode::IndicesDelta),
            size_of(WireMode::RunLength),
            same,
        ]);
    }
    table.print(
        "Ablation 1: wire-mode selection by update density (10k-entry list, u32 values) — \
         the paper's §4.2 modes plus the codec-v2 compressed candidates",
    );
}

fn cvc_grid_shapes() {
    let scale = scale_from_args();
    let bg = inputs::twitter(scale);
    // 16 hosts factor as 1x16, 2x8, 4x4 — emulate by comparing CVC at
    // host counts whose grid_dims differ, plus IEC/OEC as the degenerate
    // 1-D shapes.
    let mut table = Table::new(vec![
        "policy / shape",
        "comm volume",
        "messages",
        "replication",
    ]);
    for (label, policy, hosts) in [
        ("oec (1-D by source)", Policy::Oec, 16),
        ("iec (1-D by destination)", Policy::Iec, 16),
        ("cvc 4x4", Policy::Cvc, 16),
        ("cvc 2x6 (12 hosts)", Policy::Cvc, 12),
        ("cvc 3x5 (15 hosts)", Policy::Cvc, 15),
    ] {
        let cfg = DistConfig {
            hosts,
            policy,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        };
        let out = driver::Run::new(&bg.graph, Algorithm::Cc)
            .config(&cfg)
            .launch();
        table.row(vec![
            label.to_owned(),
            report::bytes(out.run.total_bytes),
            out.run.total_messages.to_string(),
            format!("{:.2}", out.partition.replication_factor),
        ]);
    }
    table.print("Ablation 2: CVC grid shape vs 1-D edge-cuts (cc on the twitter-like input)");
}

fn structural_subsets() {
    let scale = scale_from_args();
    let bg = inputs::rmat_large(scale);
    let g = &bg.graph;
    let mut table = Table::new(vec![
        "policy",
        "mirrors",
        "reduce set (has-in)",
        "broadcast set (has-out)",
    ]);
    for policy in Policy::ALL {
        let per_host = run_cluster(8, |ep| {
            let comm = Communicator::new(ep);
            let lg = partition_on_host(g, policy, &comm);
            let memo = MemoTable::exchange(&lg, &comm);
            let all: usize = (0..8)
                .map(|h| memo.mirror_list(h, FlagFilter::All).len())
                .sum();
            let has_in: usize = (0..8)
                .map(|h| memo.mirror_list(h, FlagFilter::MirrorHasIn).len())
                .sum();
            let has_out: usize = (0..8)
                .map(|h| memo.mirror_list(h, FlagFilter::MirrorHasOut).len())
                .sum();
            (all, has_in, has_out)
        });
        let all: usize = per_host.iter().map(|x| x.0).sum();
        let has_in: usize = per_host.iter().map(|x| x.1).sum();
        let has_out: usize = per_host.iter().map(|x| x.2).sum();
        table.row(vec![
            policy.to_string(),
            all.to_string(),
            format!(
                "{has_in} ({:.0}%)",
                100.0 * has_in as f64 / all.max(1) as f64
            ),
            format!(
                "{has_out} ({:.0}%)",
                100.0 * has_out as f64 / all.max(1) as f64
            ),
        ]);
    }
    table.print("Ablation 3: §3.2 pattern subsets per policy (rmat input, 8 hosts)");
    println!();
    println!(
        "Reading guide: OEC needs no broadcast (0% has-out), IEC no reduce \
         (0% has-in), CVC splits mirrors between the two patterns, HVC/UVC \
         may need both per mirror."
    );
}

fn chaos_overhead(chrome: &mut Option<ChromeTraceBuilder>) {
    let scale = scale_from_args();
    let bg = inputs::rmat_large(scale);
    let cfg = DistConfig {
        hosts: 4,
        policy: Policy::Cvc,
        opts: OptLevel::OSTI,
        engine: EngineKind::Galois,
    };
    let clean = driver::Run::new(&bg.graph, Algorithm::Pagerank)
        .config(&cfg)
        .launch();
    let mut table = Table::new(vec![
        "drop rate",
        "wire bytes",
        "retx bytes",
        "retx frames",
        "faults injected",
        "proj time (s)",
        "identical",
    ]);
    for drop in [0.0f64, 0.01, 0.05, 0.10] {
        let counters = FaultCounters::new();
        let plan = FaultPlan::none(0xB10C)
            .with_drop_rate(drop)
            .with_corrupt_rate(drop / 2.0)
            .with_duplicate_rate(drop / 2.0);
        // When tracing, each drop rate becomes its own process track and
        // the reliability layer tags every retransmission in it.
        let tracer = match chrome {
            Some(_) => Tracer::new(cfg.hosts),
            None => Tracer::disabled(),
        };
        let out = driver::Run::new(&bg.graph, Algorithm::Pagerank)
            .config(&cfg)
            .source(max_out_degree_node(&bg.graph))
            .pagerank(PagerankConfig::default())
            .tracer(&tracer)
            .transport(|ep| {
                ReliableTransport::over(FaultyTransport::new(ep, plan.clone(), counters.clone()))
                    .with_tracer(tracer.clone())
            })
            .launch();
        if let Some(chrome) = chrome {
            chrome.add(&format!("chaos drop={:.0}%", drop * 100.0), &tracer);
        }
        // The reliability layer must hide every fault: same ranks, same
        // iteration count, only the wire traffic differs.
        let identical = out.rounds == clean.rounds
            && out
                .ranks
                .iter()
                .zip(&clean.ranks)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        table.row(vec![
            format!("{:.0}%", drop * 100.0),
            report::bytes(out.run.total_bytes),
            report::bytes(out.net.retransmit_bytes),
            out.net.retransmit_messages.to_string(),
            counters.total().to_string(),
            report::secs(out.projected_secs(&CostModel::REPRO)),
            identical.to_string(),
        ]);
    }
    table.print(
        "Ablation 4: lossy-network overhead (pagerank, 4 hosts, CVC, \
         reliable-over-faulty transport)",
    );
    println!();
    println!(
        "Reading guide: wire traffic (application payload + frame headers + \
         acks) grows with the drop rate because every dropped frame is paid \
         for twice; the retransmitted share is broken out and priced \
         separately by the cost model; every row must stay bit-identical to \
         the fault-free run — the reliability layer hides the chaos, it \
         never lets it corrupt results."
    );
}

fn main() {
    let trace_path = trace_path_from_args();
    let mut chrome = trace_path.as_ref().map(|_| ChromeTraceBuilder::new());
    wire_mode_crossover();
    cvc_grid_shapes();
    structural_subsets();
    chaos_overhead(&mut chrome);
    if let (Some(path), Some(chrome)) = (&trace_path, chrome) {
        std::fs::write(path, chrome.finish())
            .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        println!();
        println!("Chrome trace written to {path} (load via chrome://tracing or Perfetto).");
    }
}
