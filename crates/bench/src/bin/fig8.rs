//! Figure 8: strong scaling of the distributed CPU systems.
//!
//! (a) total execution time and (b) communication volume for D-Ligra,
//! D-Galois, and Gemini across the host sweep, on the three scaling inputs
//! (stand-ins for rmat28, kron30, clueweb12) and all four benchmarks.
//!
//! Every Gluon row is run twice: once with the codec-v2 compressed wire
//! modes (the default) and once restricted to the codec-v1 modes
//! (`OptLevel::without_compression`). The second run is the pre-codec-v2
//! baseline; the table reports both volumes and their ratio, and the run
//! asserts the two are bit-identical in every computed label.
//!
//! Each Gluon cell additionally runs under a fresh [`MetricsHub`], whose
//! payload byte counter is cross-checked against the run's `RunStats`,
//! and every cell (Gemini included) gets a per-phase cost-model
//! calibration table — measured max-host phase time vs.
//! `CostModel::REPRO`'s projection — exported to
//! `bench_results/report.json` alongside the `fig8.json` cells.
//!
//! With `GLUON_FIG8_MEASURE` set in the environment, every Gluon cell is
//! additionally re-run over real TCP-loopback sockets
//! (`Run::transport_sockets`) and the table gains a measured
//! "socket wall (s)" column next to the α-β projection; the socket run is
//! asserted bit-identical to the in-memory one (same labels, same payload
//! traffic), so the extra column measures transport cost, never a
//! different computation. Off by default — it roughly doubles Gluon cell
//! time and the regression gate ignores the (environment-dependent)
//! column either way.

use gluon::OptLevel;
use gluon_algos::{driver, phase_residuals, Algorithm, DistConfig, EngineKind, PhaseResidual};
use gluon_bench::json::{self, Json};
use gluon_bench::report::emit;
use gluon_bench::{inputs, report, scale_from_args, trace_path_from_args, Scale, Table};
use gluon_gemini::GeminiAlgo;
use gluon_graph::{max_out_degree_node, Csr};
use gluon_metrics::MetricsHub;
use gluon_net::{CostModel, SocketKind};
use gluon_partition::Policy;
use gluon_trace::{ChromeTraceBuilder, Tracer, MODE_NAMES, NUM_WIRE_MODES};
use std::collections::BTreeMap;

struct Point {
    projected_secs: f64,
    wall_secs: f64,
    /// Measured wall seconds of the same run over TCP-loopback sockets;
    /// `None` unless `GLUON_FIG8_MEASURE` is set (and always for Gemini).
    socket_wall_secs: Option<f64>,
    comm_bytes: u64,
    /// Volume of the same run under the codec-v1 wire modes; `None` for
    /// systems that do not use the Gluon codec (Gemini).
    baseline_bytes: Option<u64>,
    retx_bytes: u64,
    rounds: u32,
    /// Per-phase cost-model calibration rows for this cell.
    residuals: Vec<PhaseResidual>,
}

fn gluon_point(
    graph: &Csr,
    algo: Algorithm,
    engine: EngineKind,
    hosts: usize,
    tracer: &Tracer,
) -> Point {
    let cfg = DistConfig {
        hosts,
        policy: Policy::Cvc,
        opts: OptLevel::default(),
        engine,
    };
    let hub = MetricsHub::new(hosts);
    let out = driver::Run::new(graph, algo)
        .config(&cfg)
        .tracer(tracer)
        .metrics(&hub)
        .launch();
    // The metrics registry and the stats pipeline count payload bytes
    // independently; a disagreement means one of them lies.
    assert_eq!(
        hub.counter_across_hosts("bytes_sent"),
        out.run.total_bytes,
        "metrics bytes_sent disagrees with RunStats ({algo:?}, {hosts} hosts)"
    );
    // The codec-v1 baseline: identical run with the compressed candidates
    // off. Compression must never change what is computed — only how the
    // update metadata travels.
    let base_cfg = DistConfig {
        hosts,
        policy: Policy::Cvc,
        opts: OptLevel::default().without_compression(),
        engine,
    };
    let base = driver::Run::new(graph, algo).config(&base_cfg).launch();
    assert_eq!(
        out.rounds, base.rounds,
        "compression changed the round count ({algo:?}, {hosts} hosts)"
    );
    assert_eq!(
        out.int_labels, base.int_labels,
        "compression changed integer labels ({algo:?}, {hosts} hosts)"
    );
    assert!(
        out.ranks.len() == base.ranks.len()
            && out
                .ranks
                .iter()
                .zip(&base.ranks)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
        "compression changed pagerank bits ({algo:?}, {hosts} hosts)"
    );
    // The measured column: the identical configuration over real TCP
    // sockets. Payload parity is asserted, so the delta to `wall_secs`
    // is pure transport cost.
    let socket_wall_secs = std::env::var_os("GLUON_FIG8_MEASURE").map(|_| {
        let sock = driver::Run::new(graph, algo)
            .config(&cfg)
            .transport_sockets(SocketKind::Tcp)
            .launch();
        assert_eq!(
            out.int_labels, sock.int_labels,
            "socket run changed integer labels ({algo:?}, {hosts} hosts)"
        );
        assert_eq!(
            out.net.bytes, sock.net.bytes,
            "socket run changed payload traffic ({algo:?}, {hosts} hosts)"
        );
        sock.algo_secs
    });
    Point {
        projected_secs: out.projected_secs(&CostModel::REPRO),
        wall_secs: out.algo_secs,
        socket_wall_secs,
        comm_bytes: out.run.total_bytes,
        baseline_bytes: Some(base.run.total_bytes),
        retx_bytes: out.net.retransmit_bytes,
        rounds: out.rounds,
        residuals: phase_residuals(&out.host_stats, &CostModel::REPRO),
    }
}

fn gemini_point(graph: &Csr, algo: Algorithm, hosts: usize) -> Point {
    let src = max_out_degree_node(graph);
    let ga = match algo {
        Algorithm::Bfs => GeminiAlgo::Bfs(src),
        Algorithm::Sssp => GeminiAlgo::Sssp(src),
        Algorithm::Cc => GeminiAlgo::Cc,
        Algorithm::Pagerank => GeminiAlgo::Pagerank(0.85, 1e-6, 100),
    };
    let input = if algo == Algorithm::Cc {
        gluon_algos::reference::symmetrize(graph)
    } else {
        graph.clone()
    };
    let out = gluon_gemini::run(&input, hosts, ga);
    Point {
        projected_secs: out
            .run
            .projected_secs(&CostModel::REPRO, gluon::DEFAULT_EDGES_PER_SEC),
        wall_secs: out.algo_secs,
        socket_wall_secs: None, // gemini runs on the in-memory transport only
        comm_bytes: out.run.total_bytes,
        baseline_bytes: None, // gemini does not use the Gluon codec
        retx_bytes: 0,        // gemini runs on the bare in-memory transport
        rounds: out.rounds,
        residuals: phase_residuals(&out.host_stats, &CostModel::REPRO),
    }
}

fn residual_row(r: &PhaseResidual) -> Json {
    Json::obj([
        ("phase", Json::from(r.phase)),
        ("measured_secs", Json::from(r.measured_secs)),
        ("projected_secs", Json::from(r.projected_secs)),
        ("residual_secs", Json::from(r.residual_secs)),
        ("max_host_bytes", Json::from(r.max_host_bytes)),
        ("max_host_messages", Json::from(r.max_host_messages)),
    ])
}

fn main() {
    let scale = scale_from_args();
    let trace_path = trace_path_from_args();
    let mut chrome = trace_path.as_ref().map(|_| ChromeTraceBuilder::new());
    let host_counts: &[usize] = if scale == Scale::Quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let graphs = inputs::scaling_suite(scale);
    let mut table = Table::new(vec![
        "input",
        "bench",
        "system",
        "hosts",
        "proj time (s)",
        "wall (s)",
        "socket wall (s)",
        "comm volume",
        "v1 baseline",
        "ratio",
        "retx",
        "rounds",
    ]);
    let mut calib = Table::new(vec![
        "input",
        "bench",
        "system",
        "hosts",
        "phases",
        "measured",
        "projected",
        "residual",
    ]);
    // Payload bytes per wire mode, summed over every Gluon row, keyed by
    // the synced field.
    let mut mode_bytes: BTreeMap<String, [u64; NUM_WIRE_MODES]> = BTreeMap::new();
    // The same cells as the text table, as JSON for downstream tooling.
    let mut json_rows: Vec<Json> = Vec::new();
    // Per-cell calibration for bench_results/report.json.
    let mut calib_cells: Vec<Json> = Vec::new();
    // The codec-v2 acceptance gate: at least one multi-host sparse
    // workload (bfs or cc) must move strictly fewer bytes than the v1
    // baseline.
    let mut sparse_wins = 0usize;
    let mut sparse_rows = 0usize;
    for bg in &graphs {
        for algo in Algorithm::ALL {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            for &hosts in host_counts {
                for (system, engine) in [
                    ("d-ligra", Some(EngineKind::Ligra)),
                    ("d-galois", Some(EngineKind::Galois)),
                    ("gemini", None),
                ] {
                    // Gluon rows are always traced so the per-mode byte
                    // breakdown below covers the whole sweep; Gemini runs
                    // on its own untraced stack.
                    let tracer = match engine {
                        Some(_) => Tracer::new(hosts),
                        None => Tracer::disabled(),
                    };
                    let point = match engine {
                        Some(engine) => gluon_point(graph, algo, engine, hosts, &tracer),
                        None => gemini_point(graph, algo, hosts),
                    };
                    for (field, bytes) in tracer.wire_mode_bytes() {
                        let acc = mode_bytes.entry(field).or_insert([0; NUM_WIRE_MODES]);
                        for (a, b) in acc.iter_mut().zip(bytes) {
                            *a += b;
                        }
                    }
                    if let (Some(chrome), true) = (&mut chrome, tracer.is_enabled()) {
                        chrome.add(
                            &format!("{}/{}/{}/{}h", bg.name, algo.name(), system, hosts),
                            &tracer,
                        );
                    }
                    let (baseline, ratio) = match point.baseline_bytes {
                        Some(base) => (
                            report::bytes(base),
                            format!("{:.2}x", base as f64 / point.comm_bytes.max(1) as f64),
                        ),
                        None => ("-".to_owned(), "-".to_owned()),
                    };
                    if matches!(algo, Algorithm::Bfs | Algorithm::Cc) && hosts > 1 {
                        if let Some(base) = point.baseline_bytes {
                            sparse_rows += 1;
                            if point.comm_bytes < base {
                                sparse_wins += 1;
                            }
                        }
                    }
                    let measured: f64 = point.residuals.iter().map(|r| r.measured_secs).sum();
                    let projected: f64 = point.residuals.iter().map(|r| r.projected_secs).sum();
                    calib_cells.push(Json::obj([
                        ("input", Json::from(bg.name)),
                        ("bench", Json::from(algo.name())),
                        ("system", Json::from(system)),
                        ("hosts", Json::from(hosts)),
                        (
                            "phases",
                            Json::Arr(point.residuals.iter().map(residual_row).collect()),
                        ),
                        ("measured_secs", Json::from(measured)),
                        ("projected_secs", Json::from(projected)),
                        ("residual_secs", Json::from(measured - projected)),
                    ]));
                    calib.row(vec![
                        bg.name.to_owned(),
                        algo.name().to_owned(),
                        system.to_owned(),
                        hosts.to_string(),
                        point.residuals.len().to_string(),
                        report::secs(measured),
                        report::secs(projected),
                        format!("{:+.4}", measured - projected),
                    ]);
                    json_rows.push(Json::obj([
                        ("input", Json::from(bg.name)),
                        ("bench", Json::from(algo.name())),
                        ("system", Json::from(system)),
                        ("hosts", Json::from(hosts)),
                        ("projected_secs", Json::from(point.projected_secs)),
                        ("wall_secs", Json::from(point.wall_secs)),
                        (
                            "socket_wall_secs",
                            point.socket_wall_secs.map_or(Json::Null, Json::from),
                        ),
                        ("comm_bytes", Json::from(point.comm_bytes)),
                        (
                            "v1_baseline_bytes",
                            point.baseline_bytes.map_or(Json::Null, Json::from),
                        ),
                        (
                            "v1_ratio",
                            point.baseline_bytes.map_or(Json::Null, |base| {
                                Json::from(base as f64 / point.comm_bytes.max(1) as f64)
                            }),
                        ),
                        ("retransmit_bytes", Json::from(point.retx_bytes)),
                        ("rounds", Json::from(point.rounds)),
                    ]));
                    table.row(vec![
                        bg.name.to_owned(),
                        algo.name().to_owned(),
                        system.to_owned(),
                        hosts.to_string(),
                        report::secs(point.projected_secs),
                        report::secs(point.wall_secs),
                        point.socket_wall_secs.map_or("-".to_owned(), report::secs),
                        report::bytes(point.comm_bytes),
                        baseline,
                        ratio,
                        report::bytes(point.retx_bytes),
                        point.rounds.to_string(),
                    ]);
                }
            }
        }
    }
    // Everything below goes to stdout AND the fig8.txt artifact through
    // the same emission path.
    let mut txt = String::new();
    emit(
        &mut txt,
        &table.section("Figure 8(a)+(b): strong scaling — time series and communication volume"),
    );

    // Per-wire-mode byte breakdown across every Gluon row above.
    let mut modes = Table::new({
        let mut cols = vec!["field"];
        cols.extend(MODE_NAMES);
        cols.push("total");
        cols
    });
    for (field, bytes) in &mode_bytes {
        let mut row = vec![field.clone()];
        row.extend(bytes.iter().map(|&b| report::bytes(b)));
        row.push(report::bytes(bytes.iter().sum()));
        modes.row(row);
    }
    emit(&mut txt, "\n");
    emit(
        &mut txt,
        &modes.section("Figure 8(b) detail: payload bytes per wire mode (all Gluon rows)"),
    );

    emit(&mut txt, "\n");
    emit(
        &mut txt,
        &calib.section(
            "Cost-model calibration: measured vs projected comm time \
             (CostModel::REPRO, summed over phases; per-phase rows in report.json)",
        ),
    );

    let json_modes = Json::Obj(
        mode_bytes
            .iter()
            .map(|(field, bytes)| {
                let per_mode = MODE_NAMES
                    .iter()
                    .zip(bytes)
                    .map(|(name, &b)| (name.to_string(), Json::from(b)));
                (field.clone(), Json::obj(per_mode))
            })
            .collect(),
    );
    let written = json::write_results(
        "fig8",
        &Json::obj([
            ("rows", Json::Arr(json_rows)),
            ("wire_mode_bytes", json_modes),
        ]),
    );
    let report_path = json::write_results(
        "report",
        &Json::obj([
            (
                "schema_version",
                Json::from(gluon_algos::REPORT_SCHEMA_VERSION),
            ),
            ("source", Json::from("fig8")),
            (
                "cost_model",
                Json::obj([
                    ("alpha_secs", Json::from(CostModel::REPRO.alpha_secs)),
                    (
                        "beta_secs_per_byte",
                        Json::from(CostModel::REPRO.beta_secs_per_byte),
                    ),
                ]),
            ),
            ("cells", Json::Arr(calib_cells)),
        ]),
    );
    println!();
    println!(
        "Machine-readable results written to {} and {}.",
        written.display(),
        report_path.display()
    );

    if let (Some(path), Some(chrome)) = (&trace_path, chrome) {
        std::fs::write(path, chrome.finish())
            .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        println!();
        println!("Chrome trace written to {path} (load via chrome://tracing or Perfetto).");
    }
    emit(&mut txt, "\n");
    assert!(
        sparse_wins > 0,
        "codec v2 failed to beat the v1 baseline on any multi-host bfs/cc row \
         ({sparse_rows} candidates)"
    );
    emit(
        &mut txt,
        &format!(
            "Codec v2 check: every row bit-identical with compression on vs off; \
             {sparse_wins}/{sparse_rows} multi-host bfs/cc rows moved strictly fewer \
             bytes than the codec-v1 baseline.\n"
        ),
    );
    emit(&mut txt, "\n");
    emit(
        &mut txt,
        "Paper shape to check: D-Galois beats Gemini nearly everywhere and \
         keeps scaling; Gemini stops scaling early; the Gluon systems move \
         roughly an order of magnitude fewer bytes (Fig 8b); D-Ligra needs \
         more rounds than D-Galois on the same input (§5.4).\n",
    );
    json::write_text("fig8", &txt);
}
