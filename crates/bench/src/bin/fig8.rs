//! Figure 8: strong scaling of the distributed CPU systems.
//!
//! (a) total execution time and (b) communication volume for D-Ligra,
//! D-Galois, and Gemini across the host sweep, on the three scaling inputs
//! (stand-ins for rmat28, kron30, clueweb12) and all four benchmarks.

use gluon_algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_bench::{inputs, report, scale_from_args, trace_path_from_args, Scale, Table};
use gluon_gemini::GeminiAlgo;
use gluon_graph::{max_out_degree_node, Csr};
use gluon_net::CostModel;
use gluon_partition::Policy;
use gluon_trace::{ChromeTraceBuilder, Tracer};

struct Point {
    projected_secs: f64,
    wall_secs: f64,
    comm_bytes: u64,
    retx_bytes: u64,
    rounds: u32,
}

fn gluon_point(
    graph: &Csr,
    algo: Algorithm,
    engine: EngineKind,
    hosts: usize,
    tracer: &Tracer,
) -> Point {
    let cfg = DistConfig {
        hosts,
        policy: Policy::Cvc,
        opts: Default::default(),
        engine,
    };
    let out = driver::Run::new(graph, algo)
        .config(&cfg)
        .tracer(tracer)
        .launch();
    Point {
        projected_secs: out.projected_secs(&CostModel::REPRO),
        wall_secs: out.algo_secs,
        comm_bytes: out.run.total_bytes,
        retx_bytes: out.net.retransmit_bytes,
        rounds: out.rounds,
    }
}

fn gemini_point(graph: &Csr, algo: Algorithm, hosts: usize) -> Point {
    let src = max_out_degree_node(graph);
    let ga = match algo {
        Algorithm::Bfs => GeminiAlgo::Bfs(src),
        Algorithm::Sssp => GeminiAlgo::Sssp(src),
        Algorithm::Cc => GeminiAlgo::Cc,
        Algorithm::Pagerank => GeminiAlgo::Pagerank(0.85, 1e-6, 100),
    };
    let input = if algo == Algorithm::Cc {
        gluon_algos::reference::symmetrize(graph)
    } else {
        graph.clone()
    };
    let out = gluon_gemini::run(&input, hosts, ga);
    Point {
        projected_secs: out
            .run
            .projected_secs(&CostModel::REPRO, gluon::DEFAULT_EDGES_PER_SEC),
        wall_secs: out.algo_secs,
        comm_bytes: out.run.total_bytes,
        retx_bytes: 0, // gemini runs on the bare in-memory transport
        rounds: out.rounds,
    }
}

fn main() {
    let scale = scale_from_args();
    let trace_path = trace_path_from_args();
    let mut chrome = trace_path.as_ref().map(|_| ChromeTraceBuilder::new());
    let host_counts: &[usize] = if scale == Scale::Quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let graphs = inputs::scaling_suite(scale);
    let mut table = Table::new(vec![
        "input",
        "bench",
        "system",
        "hosts",
        "proj time (s)",
        "wall (s)",
        "comm volume",
        "retx",
        "rounds",
    ]);
    for bg in &graphs {
        for algo in Algorithm::ALL {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            for &hosts in host_counts {
                for (system, engine) in [
                    ("d-ligra", Some(EngineKind::Ligra)),
                    ("d-galois", Some(EngineKind::Galois)),
                    ("gemini", None),
                ] {
                    // Gemini runs on its own stack, which is untraced.
                    let tracer = match (&chrome, engine) {
                        (Some(_), Some(_)) => Tracer::new(hosts),
                        _ => Tracer::disabled(),
                    };
                    let point = match engine {
                        Some(engine) => gluon_point(graph, algo, engine, hosts, &tracer),
                        None => gemini_point(graph, algo, hosts),
                    };
                    if let (Some(chrome), true) = (&mut chrome, tracer.is_enabled()) {
                        chrome.add(
                            &format!("{}/{}/{}/{}h", bg.name, algo.name(), system, hosts),
                            &tracer,
                        );
                    }
                    table.row(vec![
                        bg.name.to_owned(),
                        algo.name().to_owned(),
                        system.to_owned(),
                        hosts.to_string(),
                        report::secs(point.projected_secs),
                        report::secs(point.wall_secs),
                        report::bytes(point.comm_bytes),
                        report::bytes(point.retx_bytes),
                        point.rounds.to_string(),
                    ]);
                }
            }
        }
    }
    table.print("Figure 8(a)+(b): strong scaling — time series and communication volume");
    if let (Some(path), Some(chrome)) = (&trace_path, chrome) {
        std::fs::write(path, chrome.finish())
            .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        println!();
        println!("Chrome trace written to {path} (load via chrome://tracing or Perfetto).");
    }
    println!();
    println!(
        "Paper shape to check: D-Galois beats Gemini nearly everywhere and \
         keeps scaling; Gemini stops scaling early; the Gluon systems move \
         roughly an order of magnitude fewer bytes (Fig 8b); D-Ligra needs \
         more rounds than D-Galois on the same input (§5.4)."
    );
}
