//! Figure 10: the impact of Gluon's communication optimizations.
//!
//! Runs every benchmark at the four optimization levels — UNOPT (neither),
//! OSI (structural invariants), OTI (temporal invariance), OSTI (both,
//! standard Gluon) — and prints the per-level breakdown into computation
//! and communication plus the communication volume, for the paper's six
//! panels: D-Galois on the clueweb12 stand-in with CVC and OEC, and D-IrGL
//! on the rmat28 and twitter40 stand-ins with CVC and IEC.

use gluon::OptLevel;
use gluon_algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_bench::{inputs, report, scale_from_args, Scale, Table};
use gluon_graph::Csr;
use gluon_net::CostModel;
use gluon_partition::Policy;

struct Panel {
    label: &'static str,
    graph: gluon_bench::BenchGraph,
    engine: EngineKind,
    policy: Policy,
    hosts: usize,
}

fn main() {
    let scale = scale_from_args();
    let hosts = if scale == Scale::Quick { 4 } else { 8 };
    let gpu_hosts = 4;
    let panels = [
        Panel {
            label: "(a) d-galois, web-like, CVC",
            graph: inputs::web(scale),
            engine: EngineKind::Galois,
            policy: Policy::Cvc,
            hosts,
        },
        Panel {
            label: "(b) d-galois, web-like, OEC",
            graph: inputs::web(scale),
            engine: EngineKind::Galois,
            policy: Policy::Oec,
            hosts,
        },
        Panel {
            label: "(c) d-irgl, rmat16, CVC",
            graph: inputs::rmat_large(scale),
            engine: EngineKind::Irgl,
            policy: Policy::Cvc,
            hosts: gpu_hosts,
        },
        Panel {
            label: "(d) d-irgl, rmat16, IEC",
            graph: inputs::rmat_large(scale),
            engine: EngineKind::Irgl,
            policy: Policy::Iec,
            hosts: gpu_hosts,
        },
        Panel {
            label: "(e) d-irgl, twitter-like, CVC",
            graph: inputs::twitter(scale),
            engine: EngineKind::Irgl,
            policy: Policy::Cvc,
            hosts: gpu_hosts,
        },
        Panel {
            label: "(f) d-irgl, twitter-like, IEC",
            graph: inputs::twitter(scale),
            engine: EngineKind::Irgl,
            policy: Policy::Iec,
            hosts: gpu_hosts,
        },
    ];
    let model = CostModel::REPRO;
    let mut unopt_over_osti = Vec::new();
    for panel in &panels {
        let mut table = Table::new(vec![
            "bench",
            "opt",
            "compute (s)",
            "comm proj (s)",
            "total proj (s)",
            "volume",
        ]);
        for algo in Algorithm::ALL {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = panel.graph.weighted();
                &weighted
            } else {
                &panel.graph.graph
            };
            let mut level_totals = Vec::new();
            for opts in OptLevel::ALL {
                let cfg = DistConfig {
                    hosts: panel.hosts,
                    policy: panel.policy,
                    opts,
                    engine: panel.engine,
                };
                let out = driver::Run::new(graph, algo).config(&cfg).launch();
                let compute = out.run.max_work_units as f64 / gluon::DEFAULT_EDGES_PER_SEC;
                let per_host_bytes = out.run.total_bytes as f64 / panel.hosts as f64;
                let per_host_msgs = out.run.total_messages as f64 / panel.hosts as f64;
                let comm =
                    per_host_msgs * model.alpha_secs + per_host_bytes * model.beta_secs_per_byte;
                level_totals.push(compute + comm);
                table.row(vec![
                    algo.name().to_owned(),
                    opts.name().to_uppercase(),
                    report::secs(compute),
                    report::secs(comm),
                    report::secs(compute + comm),
                    report::bytes(out.run.total_bytes),
                ]);
            }
            // UNOPT is level 0, OSTI is level 3 in OptLevel::ALL order.
            unopt_over_osti.push(level_totals[0] / level_totals[3]);
        }
        table.print(&format!("Figure 10 {}", panel.label));
    }
    println!();
    println!(
        "geomean UNOPT / OSTI projected-time ratio across all panels: {:.2}x",
        report::geomean(unopt_over_osti)
    );
    println!(
        "Paper shape to check: OTI roughly halves the volume (no global-IDs \
         on the wire), OSI cuts pattern traffic, and OSTI is the fastest — \
         the paper reports a ~2.6x geomean improvement of OSTI over UNOPT."
    );
}
