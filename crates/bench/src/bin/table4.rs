//! Table 4: execution time on a single host — the overhead the Gluon layer
//! adds to the shared-memory engines.
//!
//! Columns: plain Ligra and Galois engines (no substrate at all), their
//! D-counterparts pinned to one host (full Gluon layer, no actual
//! communication partners), and Gemini on one host.
//!
//! A second table reports intra-host scaling: the measured speedup (pool
//! sequential work over the critical path of its weight-balanced chunk
//! assignment) at 1/2/4/8 threads, plus the cost model's projected runtime
//! with that many cores per host.

use gluon_algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_bench::json::{self, Json};
use gluon_bench::report::emit;
use gluon_bench::{inputs, report, scale_from_args, singlehost, Table};
use gluon_gemini::GeminiAlgo;
use gluon_graph::{max_out_degree_node, Csr};
use gluon_net::CostModel;
use gluon_partition::Policy;

fn d_system_secs(graph: &Csr, algo: Algorithm, engine: EngineKind) -> f64 {
    let cfg = DistConfig {
        hosts: 1,
        policy: Policy::Oec,
        opts: Default::default(),
        engine,
    };
    driver::Run::new(graph, algo)
        .config(&cfg)
        .launch()
        .algo_secs
}

fn gemini_secs(graph: &Csr, algo: Algorithm) -> f64 {
    let src = max_out_degree_node(graph);
    let ga = match algo {
        Algorithm::Bfs => GeminiAlgo::Bfs(src),
        Algorithm::Sssp => GeminiAlgo::Sssp(src),
        Algorithm::Cc => GeminiAlgo::Cc,
        Algorithm::Pagerank => GeminiAlgo::Pagerank(0.85, 1e-6, 100),
    };
    let input = if algo == Algorithm::Cc {
        gluon_algos::reference::symmetrize(graph)
    } else {
        graph.clone()
    };
    gluon_gemini::run(&input, 1, ga).algo_secs
}

fn main() {
    let scale = scale_from_args();
    let graphs = [inputs::twitter(scale), inputs::rmat_large(scale)];
    let mut table = Table::new(vec![
        "input", "bench", "ligra", "d-ligra", "galois", "d-galois", "gemini",
    ]);
    let mut overheads = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    for bg in &graphs {
        for algo in Algorithm::ALL {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            let src = max_out_degree_node(graph);
            let ligra = singlehost::run_shared(graph, algo, EngineKind::Ligra, src).secs;
            let galois = singlehost::run_shared(graph, algo, EngineKind::Galois, src).secs;
            let d_ligra = d_system_secs(graph, algo, EngineKind::Ligra);
            let d_galois = d_system_secs(graph, algo, EngineKind::Galois);
            let gemini = gemini_secs(graph, algo);
            overheads.push(d_ligra / ligra.max(1e-9));
            overheads.push(d_galois / galois.max(1e-9));
            json_rows.push(Json::obj([
                ("input", Json::from(bg.name)),
                ("bench", Json::from(algo.name())),
                ("ligra_secs", Json::from(ligra)),
                ("d_ligra_secs", Json::from(d_ligra)),
                ("galois_secs", Json::from(galois)),
                ("d_galois_secs", Json::from(d_galois)),
                ("gemini_secs", Json::from(gemini)),
                ("d_ligra_overhead", Json::from(d_ligra / ligra.max(1e-9))),
                ("d_galois_overhead", Json::from(d_galois / galois.max(1e-9))),
            ]));
            table.row(vec![
                bg.name.to_owned(),
                algo.name().to_owned(),
                report::secs(ligra),
                report::secs(d_ligra),
                report::secs(galois),
                report::secs(d_galois),
                report::secs(gemini),
            ]);
        }
    }
    // Everything below goes to stdout AND the table4.txt artifact through
    // the same emission path.
    let mut txt = String::new();
    emit(
        &mut txt,
        &table.section("Table 4: execution time (s) on a single host"),
    );
    emit(&mut txt, "\n");
    emit(
        &mut txt,
        &format!(
            "geomean D-system / plain-engine time ratio: {:.2}x\n",
            report::geomean(overheads)
        ),
    );
    emit(
        &mut txt,
        "Paper shape to check: the D-systems are competitive with the plain \
         shared-memory engines on one host (small Gluon-layer overhead).\n",
    );

    emit(&mut txt, "\n");
    let mut scaling = Table::new(vec!["input", "bench", "threads", "speedup", "projected"]);
    let mut four_thread = Vec::new();
    let mut json_scaling: Vec<Json> = Vec::new();
    for bg in &graphs {
        for algo in [Algorithm::Pagerank, Algorithm::Bfs] {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            for threads in [1usize, 2, 4, 8] {
                let out = driver::Run::new(graph, algo)
                    .config(&DistConfig {
                        hosts: 1,
                        policy: Policy::Oec,
                        opts: Default::default(),
                        engine: EngineKind::Galois,
                    })
                    .threads(threads)
                    .launch();
                let speedup = out.run.parallel_speedup();
                if threads == 4 && algo == Algorithm::Pagerank {
                    four_thread.push(speedup);
                }
                json_scaling.push(Json::obj([
                    ("input", Json::from(bg.name)),
                    ("bench", Json::from(algo.name())),
                    ("threads", Json::from(threads)),
                    ("speedup", Json::from(speedup)),
                    (
                        "projected_secs",
                        Json::from(out.projected_secs_with_cores(&CostModel::REPRO, threads)),
                    ),
                ]));
                scaling.row(vec![
                    bg.name.to_owned(),
                    algo.name().to_owned(),
                    threads.to_string(),
                    format!("{speedup:.2}x"),
                    report::secs(out.projected_secs_with_cores(&CostModel::REPRO, threads)),
                ]);
            }
        }
    }
    emit(
        &mut txt,
        &scaling.section("Table 4b: intra-host scaling (measured speedup and projected runtime)"),
    );
    emit(&mut txt, "\n");
    emit(
        &mut txt,
        &format!(
            "geomean pagerank speedup at 4 threads: {:.2}x (acceptance floor: 2x)\n",
            report::geomean(four_thread)
        ),
    );
    json::write_text("table4", &txt);

    let written = json::write_results(
        "table4",
        &Json::obj([
            ("rows", Json::Arr(json_rows)),
            ("scaling", Json::Arr(json_scaling)),
        ]),
    );
    println!();
    println!("Machine-readable results written to {}.", written.display());
}
