//! Table 4: execution time on a single host — the overhead the Gluon layer
//! adds to the shared-memory engines.
//!
//! Columns: plain Ligra and Galois engines (no substrate at all), their
//! D-counterparts pinned to one host (full Gluon layer, no actual
//! communication partners), and Gemini on one host.

use gluon_algos::{driver, Algorithm, DistConfig, EngineKind};
use gluon_bench::{inputs, report, scale_from_args, singlehost, Table};
use gluon_gemini::GeminiAlgo;
use gluon_graph::{max_out_degree_node, Csr};
use gluon_partition::Policy;

fn d_system_secs(graph: &Csr, algo: Algorithm, engine: EngineKind) -> f64 {
    let cfg = DistConfig {
        hosts: 1,
        policy: Policy::Oec,
        opts: Default::default(),
        engine,
    };
    driver::run(graph, algo, &cfg).algo_secs
}

fn gemini_secs(graph: &Csr, algo: Algorithm) -> f64 {
    let src = max_out_degree_node(graph);
    let ga = match algo {
        Algorithm::Bfs => GeminiAlgo::Bfs(src),
        Algorithm::Sssp => GeminiAlgo::Sssp(src),
        Algorithm::Cc => GeminiAlgo::Cc,
        Algorithm::Pagerank => GeminiAlgo::Pagerank(0.85, 1e-6, 100),
    };
    let input = if algo == Algorithm::Cc {
        gluon_algos::reference::symmetrize(graph)
    } else {
        graph.clone()
    };
    gluon_gemini::run(&input, 1, ga).algo_secs
}

fn main() {
    let scale = scale_from_args();
    let graphs = [inputs::twitter(scale), inputs::rmat_large(scale)];
    let mut table = Table::new(vec![
        "input", "bench", "ligra", "d-ligra", "galois", "d-galois", "gemini",
    ]);
    let mut overheads = Vec::new();
    for bg in &graphs {
        for algo in Algorithm::ALL {
            let weighted;
            let graph: &Csr = if algo == Algorithm::Sssp {
                weighted = bg.weighted();
                &weighted
            } else {
                &bg.graph
            };
            let src = max_out_degree_node(graph);
            let ligra = singlehost::run_shared(graph, algo, EngineKind::Ligra, src).secs;
            let galois = singlehost::run_shared(graph, algo, EngineKind::Galois, src).secs;
            let d_ligra = d_system_secs(graph, algo, EngineKind::Ligra);
            let d_galois = d_system_secs(graph, algo, EngineKind::Galois);
            let gemini = gemini_secs(graph, algo);
            overheads.push(d_ligra / ligra.max(1e-9));
            overheads.push(d_galois / galois.max(1e-9));
            table.row(vec![
                bg.name.to_owned(),
                algo.name().to_owned(),
                report::secs(ligra),
                report::secs(d_ligra),
                report::secs(galois),
                report::secs(d_galois),
                report::secs(gemini),
            ]);
        }
    }
    table.print("Table 4: execution time (s) on a single host");
    println!();
    println!(
        "geomean D-system / plain-engine time ratio: {:.2}x",
        report::geomean(overheads)
    );
    println!(
        "Paper shape to check: the D-systems are competitive with the plain \
         shared-memory engines on one host (small Gluon-layer overhead)."
    );
}
