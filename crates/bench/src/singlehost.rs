//! Plain shared-memory runs (no Gluon layer at all) for the Table 4
//! comparison: "Ligra" and "Galois" columns versus "D-Ligra(1)" and
//! "D-Galois(1)".

use gluon_algos::reference::{self, INFINITY};
use gluon_algos::{Algorithm, EngineKind, PagerankConfig};
use gluon_engines::galois;
use gluon_engines::ligra::{self, Direction, EdgeOp, VertexSubset};
use gluon_graph::{Csr, Gid, Lid};
use gluon_partition::{partition_all, LocalGraph, Policy};
use std::time::Instant;

/// Result of a plain shared-memory run.
#[derive(Clone, Debug)]
pub struct SharedRun {
    /// Integer labels (bfs/cc/sssp), empty for pagerank.
    pub int_labels: Vec<u32>,
    /// Pagerank ranks, empty otherwise.
    pub ranks: Vec<f64>,
    /// Wall-clock of the algorithm (seconds), excluding graph setup.
    pub secs: f64,
    /// Rounds (Ligra) or 1 (Galois quiescence runs).
    pub rounds: u32,
}

/// Runs `algo` on a single shared-memory host with `engine`, no
/// communication substrate involved.
///
/// cc symmetrizes the input first (like the distributed driver); bfs/sssp
/// start from `source`.
pub fn run_shared(graph: &Csr, algo: Algorithm, engine: EngineKind, source: Gid) -> SharedRun {
    let symmetric;
    let input: &Csr = if algo == Algorithm::Cc {
        symmetric = reference::symmetrize(graph);
        &symmetric
    } else {
        graph
    };
    let mut lg = partition_all(input, 1, Policy::Oec).remove(0);
    if engine == EngineKind::Ligra || algo == Algorithm::Pagerank {
        lg.build_transpose();
    }
    let start = Instant::now();
    let mut out = match algo {
        Algorithm::Bfs => minrelax(&lg, engine, Seed::Source(source), |l, _| {
            l.saturating_add(1)
        }),
        Algorithm::Sssp => minrelax(&lg, engine, Seed::Source(source), |l, w| {
            l.saturating_add(w)
        }),
        Algorithm::Cc => minrelax(&lg, engine, Seed::OwnGid, |l, _| l),
        Algorithm::Pagerank => pagerank(&lg, PagerankConfig::default()),
    };
    out.secs = start.elapsed().as_secs_f64();
    out
}

enum Seed {
    Source(Gid),
    OwnGid,
}

struct RelaxOp<'a> {
    labels: &'a mut [u32],
    relax: fn(u32, u32) -> u32,
}

impl EdgeOp for RelaxOp<'_> {
    fn update(&mut self, src: Lid, dst: Lid, w: u32) -> bool {
        let cand = (self.relax)(self.labels[src.index()], w);
        if cand < self.labels[dst.index()] {
            self.labels[dst.index()] = cand;
            true
        } else {
            false
        }
    }
}

fn minrelax(
    lg: &LocalGraph,
    engine: EngineKind,
    seed: Seed,
    relax: fn(u32, u32) -> u32,
) -> SharedRun {
    let n = lg.num_proxies();
    let (mut labels, seeds): (Vec<u32>, Vec<Lid>) = match seed {
        Seed::Source(s) => {
            let mut l = vec![INFINITY; n as usize];
            let lid = lg.lid(s).expect("source exists on the single host");
            l[lid.index()] = 0;
            (l, vec![lid])
        }
        Seed::OwnGid => (
            (0..n).map(|l| lg.gid(Lid(l)).0).collect(),
            (0..n).map(Lid).collect(),
        ),
    };
    let mut rounds = 0u32;
    match engine {
        EngineKind::Ligra => {
            let mut frontier = VertexSubset::from_members(seeds);
            while !frontier.is_empty() {
                rounds += 1;
                let mut op = RelaxOp {
                    labels: &mut labels,
                    relax,
                };
                frontier = ligra::edge_map(lg, &frontier, &mut op, Direction::Auto);
            }
        }
        EngineKind::Galois | EngineKind::Irgl => {
            rounds = 1;
            galois::for_each(n, seeds, |v, wl| {
                let lv = labels[v.index()];
                for e in lg.out_edges(v) {
                    let cand = relax(lv, e.weight);
                    if cand < labels[e.dst.index()] {
                        labels[e.dst.index()] = cand;
                        wl.push(e.dst);
                    }
                }
            });
        }
    }
    SharedRun {
        int_labels: labels,
        ranks: Vec::new(),
        secs: 0.0,
        rounds,
    }
}

fn pagerank(lg: &LocalGraph, cfg: PagerankConfig) -> SharedRun {
    let n = lg.num_proxies() as usize;
    let total = f64::from(lg.global_nodes().max(1));
    let base = (1.0 - cfg.damping) / total;
    let gdeg: Vec<u32> = (0..n).map(|v| lg.out_degree(Lid(v as u32))).collect();
    let mut rank = vec![1.0 / total; n];
    let mut iters = 0;
    while iters < cfg.max_iters {
        iters += 1;
        let mut delta = 0.0;
        let mut next = vec![base; n];
        for v in 0..n {
            let mut sum = 0.0;
            for e in lg.in_edges(Lid(v as u32)) {
                sum += rank[e.dst.index()] / f64::from(gdeg[e.dst.index()].max(1));
            }
            next[v] += cfg.damping * sum;
            delta += (next[v] - rank[v]).abs();
        }
        rank = next;
        if delta < cfg.tolerance {
            break;
        }
    }
    SharedRun {
        int_labels: Vec::new(),
        ranks: rank,
        secs: 0.0,
        rounds: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::{gen, max_out_degree_node};

    #[test]
    fn shared_runs_match_oracles() {
        let g = gen::rmat(7, 6, Default::default(), 21);
        let src = max_out_degree_node(&g);
        for engine in [EngineKind::Ligra, EngineKind::Galois] {
            let bfs = run_shared(&g, Algorithm::Bfs, engine, src);
            assert_eq!(bfs.int_labels, reference::bfs(&g, src), "{engine}");
            let cc = run_shared(&g, Algorithm::Cc, engine, src);
            assert_eq!(cc.int_labels, reference::cc(&g), "{engine}");
        }
        let w = gluon_graph::with_random_weights(&g, 9, 5);
        let sssp = run_shared(&w, Algorithm::Sssp, EngineKind::Galois, src);
        assert_eq!(sssp.int_labels, reference::sssp(&w, src));
        let pr = run_shared(&g, Algorithm::Pagerank, EngineKind::Galois, src);
        let (oracle, _) = reference::pagerank(&g, 0.85, 1e-6, 100);
        for (a, b) in pr.ranks.iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
