//! Plain-text table rendering and numeric helpers for harness output.

/// A simple aligned-column text table.
///
/// # Examples
///
/// ```
/// use gluon_bench::Table;
///
/// let mut t = Table::new(vec!["input", "time (s)"]);
/// t.row(vec!["rmat16".into(), "0.42".into()]);
/// let text = t.render();
/// assert!(text.contains("rmat16"));
/// assert!(text.contains("time (s)"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the captioned section — blank line, `## caption`, blank
    /// line, the aligned table — used for both stdout and the
    /// `bench_results/<name>.txt` artifact, so the two never drift.
    pub fn section(&self, caption: &str) -> String {
        format!("\n## {caption}\n\n{}", self.render())
    }

    /// Renders and prints to stdout with a caption.
    pub fn print(&self, caption: &str) {
        print!("{}", self.section(caption));
    }
}

/// Prints `text` to stdout **and** appends it to the text-artifact
/// accumulator: the single emission path for harness output that must land
/// both on the console and in `bench_results/<name>.txt`.
pub fn emit(artifact: &mut String, text: &str) {
    print!("{text}");
    artifact.push_str(text);
}

/// Geometric mean of positive values (ignores non-finite or non-positive
/// entries, matching how the paper aggregates speedups).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut count = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            count += 1;
        }
    }
    if count == 0 {
        return f64::NAN;
    }
    (log_sum / count as f64).exp()
}

/// Formats seconds with adaptive precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

/// Formats a byte count in human units.
pub fn bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let bf = b as f64;
    if bf >= KB * KB * KB {
        format!("{:.2}GB", bf / (KB * KB * KB))
    } else if bf >= KB * KB {
        format!("{:.2}MB", bf / (KB * KB))
    } else if bf >= KB {
        format!("{:.1}KB", bf / KB)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geomean([3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_skips_invalid_entries() {
        let g = geomean([2.0, 8.0, f64::NAN, 0.0, -1.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_nothing_is_nan() {
        assert!(geomean([]).is_nan());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn section_is_print_format() {
        let mut t = Table::new(vec!["col"]);
        t.row(vec!["1".into()]);
        let s = t.section("cap");
        assert!(s.starts_with("\n## cap\n\n"), "{s:?}");
        assert!(s.ends_with(&t.render()), "{s:?}");
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KB");
        assert!(bytes(3 * 1024 * 1024).contains("MB"));
    }

    #[test]
    fn secs_formatting_is_adaptive() {
        assert_eq!(secs(0.125), "0.1250");
        assert_eq!(secs(12.5), "12.50");
        assert_eq!(secs(123.4), "123");
    }
}
