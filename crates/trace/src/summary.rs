//! Plain-text per-run summary exporter.

use crate::{Stage, Tracer, MODE_NAMES, NUM_SIZE_BUCKETS};
use std::fmt::Write as _;

/// Renders the per-run summary: stage totals, wire-mode histogram,
/// message-size histogram, and reliability/overflow counters.
pub(crate) fn render(tracer: &Tracer, label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== trace summary: {label} ==");
    if !tracer.is_enabled() {
        let _ = writeln!(out, "(tracing disabled)");
        return out;
    }

    // A truncated trace must not masquerade as a complete one: lead with
    // the loss, don't bury it in the footer.
    let dropped_spans = tracer.dropped_spans();
    let dropped_events = tracer.dropped_events();
    if dropped_spans > 0 || dropped_events > 0 {
        let _ = writeln!(
            out,
            "!! TRACE TRUNCATED: ring buffers overflowed \
             ({dropped_spans} spans, {dropped_events} events dropped) — \
             totals below undercount; raise Tracer::with_capacity"
        );
    }

    let spans = tracer.spans();
    let mut counts = [0u64; Stage::ALL.len()];
    let mut totals_ns = [0u64; Stage::ALL.len()];
    for s in &spans {
        counts[s.stage as usize] += 1;
        totals_ns[s.stage as usize] += s.dur_ns;
    }
    let _ = writeln!(out, "{:<16} {:>10} {:>14}", "stage", "spans", "total secs");
    for stage in Stage::ALL {
        let i = stage as usize;
        if counts[i] == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>14.6}",
            stage.name(),
            counts[i],
            totals_ns[i] as f64 / 1e9
        );
    }

    let modes = tracer.wire_mode_histogram();
    if !modes.is_empty() {
        let _ = writeln!(out, "-- wire modes (messages per field) --");
        let _ = write!(out, "{:<28}", "field");
        for name in MODE_NAMES {
            let _ = write!(out, " {name:>10}");
        }
        out.push('\n');
        for (field, hist) in &modes {
            let _ = write!(out, "{field:<28}");
            for count in hist {
                let _ = write!(out, " {count:>10}");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "-- wire modes (payload bytes per field) --");
        for (field, bytes) in &tracer.wire_mode_bytes() {
            let _ = write!(out, "{field:<28}");
            for b in bytes {
                let _ = write!(out, " {b:>10}");
            }
            out.push('\n');
        }
    }

    let sizes = tracer.message_size_histogram();
    if sizes.iter().any(|&c| c > 0) {
        let _ = writeln!(out, "-- message sizes (log2 buckets) --");
        for (bucket, &count) in sizes.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = 1u64 << bucket;
            let hi = (1u64 << (bucket + 1)) - 1;
            let range = if bucket == 0 {
                "0-1 B".to_owned()
            } else if bucket == NUM_SIZE_BUCKETS - 1 {
                format!(">={lo} B")
            } else {
                format!("{lo}-{hi} B")
            };
            let _ = writeln!(out, "{range:<16} {count:>10}");
        }
    }

    let _ = writeln!(
        out,
        "barrier wait: {:.6}s  retransmits: {}  dups suppressed: {}  decode errors: {}  dropped spans: {}  dropped events: {}",
        tracer.barrier_wait_secs(),
        tracer.retransmit_events(),
        tracer.dup_events(),
        tracer.decode_error_events(),
        dropped_spans,
        dropped_events
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_summary_says_so() {
        let s = Tracer::disabled().summary("x");
        assert!(s.contains("trace summary: x"));
        assert!(s.contains("(tracing disabled)"));
    }

    #[test]
    fn summary_covers_all_recorded_sections() {
        let t = Tracer::new(1);
        t.record_span(0, 0, Stage::Encode, None, 0, 2_000_000_000);
        t.record_span(0, 0, Stage::Send, Some(0), 0, 500_000_000);
        t.record_wire_mode("MinField<u32>", 3, 300);
        t.record_message_size(300);
        t.record_event(0, "retransmit", 0, 64);
        t.record_event(0, "decode_error", 0, 12);
        t.add_barrier_wait(1_000_000);
        let s = t.summary("bfs");
        assert!(s.contains("trace summary: bfs"), "{s}");
        assert!(s.contains("encode"));
        assert!(s.contains("2.000000"));
        assert!(s.contains("wire modes"));
        assert!(s.contains("MinField<u32>"));
        assert!(s.contains("indices"));
        assert!(s.contains("256-511 B"));
        assert!(s.contains("retransmits: 1"));
        assert!(s.contains("decode errors: 1"));
        assert!(s.contains("payload bytes per field"));
        assert!(s.contains("same_run"));
    }

    #[test]
    fn empty_enabled_summary_omits_optional_sections() {
        let s = Tracer::new(1).summary("idle");
        assert!(!s.contains("wire modes"));
        assert!(!s.contains("message sizes"));
        assert!(!s.contains("TRACE TRUNCATED"));
        assert!(s.contains("barrier wait: 0.000000s"));
        assert!(s.contains("dropped spans: 0"));
        assert!(s.contains("dropped events: 0"));
    }

    #[test]
    fn wrapped_rings_put_truncation_banner_first() {
        let t = Tracer::with_capacity(1, 2);
        for i in 0..5 {
            t.record_span(0, 0, Stage::Send, Some(0), i * 10, 1);
        }
        for _ in 0..3 {
            t.record_event(0, "retransmit", 0, 64);
        }
        assert_eq!(t.dropped_spans(), 3);
        assert_eq!(t.dropped_events(), 1);
        let s = t.summary("lossy");
        let banner_at = s.find("TRACE TRUNCATED").expect("banner present");
        // The banner comes before any stage table or counters.
        assert!(banner_at < s.find("stage").unwrap(), "{s}");
        assert!(s.contains("3 spans, 1 events dropped"), "{s}");
        assert!(s.contains("dropped spans: 3"));
        assert!(s.contains("dropped events: 1"));
        // Only the retained spans are tallied.
        assert!(s.contains("send") && s.contains("2"), "{s}");
    }
}
