//! Chrome trace-event JSON exporter.
//!
//! Produces the `chrome://tracing` / Perfetto "trace event format": a JSON
//! object whose `traceEvents` array holds complete spans (`"ph":"X"`),
//! instant events (`"ph":"i"`), and metadata records naming processes and
//! threads. One *process* per recorded run, one *thread track* per
//! simulated host. Timestamps are microseconds from the tracer's epoch.

use crate::{Stage, Tracer};
use std::fmt::Write as _;

/// Accumulates one or more [`Tracer`] recordings into a single Chrome
/// trace document (each recording becomes its own process track).
///
/// # Examples
///
/// ```
/// use gluon_trace::{ChromeTraceBuilder, Stage, Tracer};
///
/// let t = Tracer::new(1);
/// t.record_span(0, 0, Stage::Send, Some(0), 0, 100);
/// let mut b = ChromeTraceBuilder::new();
/// b.add("bfs/4-hosts", &t);
/// let json = b.finish();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"bfs/4-hosts\""));
/// ```
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: String,
    any: bool,
    next_pid: u32,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    pub fn new() -> ChromeTraceBuilder {
        ChromeTraceBuilder::default()
    }

    fn push_event(&mut self, body: &str) {
        if self.any {
            self.events.push(',');
        }
        self.any = true;
        self.events.push_str(body);
    }

    /// Appends every span and event of `tracer` as a new process named
    /// `process_name`. Disabled tracers contribute nothing.
    pub fn add(&mut self, process_name: &str, tracer: &Tracer) {
        if !tracer.is_enabled() {
            return;
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        self.push_event(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(process_name)
        ));
        for host in 0..tracer.world_size() {
            self.push_event(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{host},\
                 \"args\":{{\"name\":\"host {host}\"}}}}"
            ));
        }
        for s in tracer.spans() {
            let mut body = String::with_capacity(160);
            let _ = write!(
                body,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":{pid},\"tid\":{},\"args\":{{\"phase\":{}",
                s.stage.name(),
                if s.stage == Stage::Sync {
                    "phase"
                } else {
                    "sync"
                },
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                s.host,
                // Render the setup sentinel as -1 so the JSON stays small.
                if s.phase == crate::SETUP_PHASE {
                    -1i64
                } else {
                    s.phase as i64
                },
            );
            if let Some(peer) = s.peer {
                let _ = write!(body, ",\"peer\":{peer}");
            }
            body.push_str("}}");
            self.push_event(&body);
        }
        for e in tracer.events() {
            self.push_event(&format!(
                "{{\"name\":\"{}\",\"cat\":\"reliability\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{:.3},\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"peer\":{},\"bytes\":{}}}}}",
                escape(e.name),
                e.at_ns as f64 / 1e3,
                e.host,
                e.peer,
                e.bytes,
            ));
        }
    }

    /// Finalizes the JSON document.
    pub fn finish(self) -> String {
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
            self.events
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_is_a_valid_document() {
        let json = ChromeTraceBuilder::new().finish();
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn disabled_tracer_adds_nothing() {
        let mut b = ChromeTraceBuilder::new();
        b.add("nothing", &Tracer::disabled());
        assert_eq!(
            b.finish(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn spans_events_and_metadata_appear() {
        let t = Tracer::new(2);
        t.record_span(0, 4, Stage::Encode, Some(1), 1_000, 2_000);
        t.record_event(1, "retransmit", 0, 64);
        let mut b = ChromeTraceBuilder::new();
        b.add("run \"a\"", &t);
        let json = b.finish();
        assert!(json.contains("\"run \\\"a\\\"\""), "{json}");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"encode\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"peer\":1"));
        assert!(json.contains("\"name\":\"retransmit\""));
        assert!(json.contains("\"bytes\":64"));
    }

    #[test]
    fn empty_enabled_tracer_exports_metadata_only() {
        let mut b = ChromeTraceBuilder::new();
        b.add("idle", &Tracer::new(2));
        let json = b.finish();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"host 1\""));
        assert!(!json.contains("\"ph\":\"X\""));
        assert!(!json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn wrapped_ring_exports_only_retained_spans() {
        let t = Tracer::with_capacity(1, 2);
        for i in 0..5u64 {
            t.record_span(0, 0, Stage::Send, Some(0), i * 1_000, 100);
        }
        assert_eq!(t.dropped_spans(), 3);
        let mut b = ChromeTraceBuilder::new();
        b.add("wrapped", &t);
        let json = b.finish();
        // Only the two newest spans survive the ring; the document stays
        // well-formed and the evicted timestamps are gone.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"ts\":3.000"));
        assert!(json.contains("\"ts\":4.000"));
        assert!(!json.contains("\"ts\":0.000"));
    }

    #[test]
    fn multiple_recordings_get_distinct_pids() {
        let a = Tracer::new(1);
        a.record_span(0, 0, Stage::Send, None, 0, 1);
        let b_t = Tracer::new(1);
        b_t.record_span(0, 0, Stage::Send, None, 0, 1);
        let mut b = ChromeTraceBuilder::new();
        b.add("first", &a);
        b.add("second", &b_t);
        let json = b.finish();
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
    }
}
