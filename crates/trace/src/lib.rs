//! `gluon-trace`: structured span tracing and per-phase metrics for the
//! Gluon sync stack.
//!
//! The paper's evaluation attributes time and bytes to the *stages* of a
//! sync call — extract, address translation, encoding choice, transfer,
//! decode, apply (§4, Figs. 6–10). This crate records exactly that
//! breakdown at runtime, cheaply enough to leave compiled in:
//!
//! * **Spans** ([`SpanEvent`]): one timed slice per micro-stage visit,
//!   tagged with host, sync-phase index, [`Stage`], and peer. The runtime
//!   emits them as *contiguous segments* of each sync call, so the child
//!   spans of a phase sum exactly to that phase's recorded `comm_secs`.
//! * **Events** ([`InstantEvent`]): point-in-time occurrences — a
//!   retransmitted frame, a suppressed duplicate, a CRC rejection — tagged
//!   by the reliability layer so chaos runs can be dissected.
//! * **Metrics**: monotonic counters — a per-field wire-mode selection
//!   histogram (which §4.2 encoding each field's messages picked), a
//!   log₂ message-size histogram, and cumulative barrier-wait time.
//!
//! Storage is per-host: every simulated host appends to its own bounded
//! ring buffer, so the hot path never contends with other hosts (the
//! per-buffer lock is single-writer and therefore uncontended; metric
//! counters are lock-free atomics). When a buffer overflows, the oldest
//! records are dropped and counted ([`Tracer::dropped_spans`]).
//!
//! A disabled tracer ([`Tracer::disabled`], also [`Tracer::default`]) is a
//! no-op handle: every record call returns after one `Option` check, takes
//! no timestamps, and allocates nothing — instrumented code pays nothing
//! when tracing is off.
//!
//! Two exporters turn a recording into artifacts:
//! [`Tracer::chrome_trace_json`] produces a `chrome://tracing`-loadable
//! trace-event file (one track per simulated host), and
//! [`Tracer::summary`] renders a plain-text per-run table.
//!
//! # Examples
//!
//! ```
//! use gluon_trace::{Stage, Tracer};
//!
//! let tracer = Tracer::new(2);
//! let t0 = tracer.now_ns();
//! // ... do stage work ...
//! tracer.record_span(0, 0, Stage::Encode, Some(1), t0, 1_500);
//! tracer.record_wire_mode("MinField<u32>", 3, 25); // Indices, 25 bytes
//! let spans = tracer.spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].stage, Stage::Encode);
//! assert!(tracer.chrome_trace_json().contains("\"encode\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod summary;

pub use chrome::ChromeTraceBuilder;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sync-phase spans that are not tied to a numbered phase (e.g. the
/// memoization handshake) carry this sentinel phase index.
pub const SETUP_PHASE: u32 = u32::MAX;

/// Number of wire modes tracked by the per-field histogram: the §4.2 mode
/// bytes (`Empty`, `Dense`, `Bitvec`, `Indices`, `GidValues`) plus the
/// codec-v2 compressed modes (`IndicesDelta`, `RunLength`,
/// `SameIndicesDelta`, `SameRunLength`).
pub const NUM_WIRE_MODES: usize = 9;

/// Display names of the wire modes, indexed by mode byte.
pub const MODE_NAMES: [&str; NUM_WIRE_MODES] = [
    "empty",
    "dense",
    "bitvec",
    "indices",
    "gid_values",
    "idx_delta",
    "run_len",
    "same_idx",
    "same_run",
];

/// Log₂ buckets of the message-size histogram (bucket `i` counts payloads
/// with `floor(log2(len)) == i`; zero-length payloads land in bucket 0).
pub const NUM_SIZE_BUCKETS: usize = 40;

/// Default per-host span/event ring capacity.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// The micro-stages of one sync call, plus the coarse stages that frame
/// them. See DESIGN.md "Tracing and metrics" for the taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Stage {
    /// Scanning the dirty set to collect updated positions of the agreed
    /// proxy list.
    Extract = 0,
    /// Address translation for the non-memoized path: looking up global
    /// IDs for every updated proxy (absent under temporal invariance,
    /// which is the point of §4.1).
    MemoTranslate = 1,
    /// Building the wire payload (§4.2 mode selection + value extraction).
    Encode = 2,
    /// Handing the payload to the transport.
    Send = 3,
    /// Resetting shipped mirrors to the reduction identity.
    Reset = 4,
    /// Blocking on an expected payload from a peer.
    RecvWait = 5,
    /// Parsing a received payload back into (position, value) entries.
    Decode = 6,
    /// Reducing/overwriting local proxies with received values.
    Apply = 7,
    /// A whole collective (termination detection, global sums) timed as
    /// one slice — these phases have no finer structure.
    Collective = 8,
    /// Parent span covering one entire sync phase.
    Sync = 9,
    /// The memoization handshake of §4.1 (setup, not a numbered phase).
    Memo = 10,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 11] = [
        Stage::Extract,
        Stage::MemoTranslate,
        Stage::Encode,
        Stage::Send,
        Stage::Reset,
        Stage::RecvWait,
        Stage::Decode,
        Stage::Apply,
        Stage::Collective,
        Stage::Sync,
        Stage::Memo,
    ];

    /// Stable lower-case name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Extract => "extract",
            Stage::MemoTranslate => "memo_translate",
            Stage::Encode => "encode",
            Stage::Send => "send",
            Stage::Reset => "reset",
            Stage::RecvWait => "recv_wait",
            Stage::Decode => "decode",
            Stage::Apply => "apply",
            Stage::Collective => "collective",
            Stage::Sync => "sync",
            Stage::Memo => "memo",
        }
    }

    /// True for the micro-stages whose durations decompose a phase's
    /// `comm_secs` (everything except the [`Stage::Sync`] parent and the
    /// [`Stage::Memo`] setup span).
    pub fn is_child(self) -> bool {
        !matches!(self, Stage::Sync | Stage::Memo)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed slice of a sync phase on one host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// Host that executed the stage.
    pub host: usize,
    /// Sync-phase index on that host (aligned with
    /// `SyncStats::phases`), or [`SETUP_PHASE`] for setup spans.
    pub phase: u32,
    /// Which stage the slice belongs to.
    pub stage: Stage,
    /// Peer the stage was directed at, if any.
    pub peer: Option<usize>,
    /// Start offset from the tracer's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// A point-in-time occurrence (retransmission, duplicate, CRC failure).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InstantEvent {
    /// Host that observed the event.
    pub host: usize,
    /// Stable event name (e.g. `"retransmit"`, `"dup_suppressed"`).
    pub name: &'static str,
    /// Peer involved.
    pub peer: usize,
    /// Bytes associated with the event (frame size for retransmissions).
    pub bytes: u64,
    /// Offset from the tracer's epoch, nanoseconds.
    pub at_ns: u64,
}

/// Bounded ring: keeps the most recent `cap` records, counts the rest.
#[derive(Debug)]
struct Ring<T> {
    buf: std::collections::VecDeque<T>,
    cap: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        Ring {
            buf: std::collections::VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, item: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    /// One span ring per host; each is written only by that host's thread,
    /// so the lock is uncontended on the hot path.
    spans: Vec<Mutex<Ring<SpanEvent>>>,
    /// One instant-event ring per host.
    events: Vec<Mutex<Ring<InstantEvent>>>,
    /// `field name -> per-mode message and byte totals`.
    wire_modes: Mutex<HashMap<&'static str, ModeTotals>>,
    /// Log₂ payload-size histogram across all sync messages.
    size_buckets: Vec<AtomicU64>,
    /// Cumulative time spent waiting in barriers, nanoseconds.
    barrier_wait_ns: AtomicU64,
    /// Frames retransmitted (mirrors the event stream as a cheap counter).
    retransmit_events: AtomicU64,
    /// Duplicates suppressed.
    dup_events: AtomicU64,
    /// Sync payloads that failed to decode.
    decode_error_events: AtomicU64,
    /// Peers declared down by a failure detector.
    peer_down_events: AtomicU64,
    /// Supervised recovery attempts (rollback-restarts after a failure).
    recovery_events: AtomicU64,
    /// Checkpoint snapshots taken.
    checkpoint_events: AtomicU64,
}

/// Per-field wire-mode totals: how many messages picked each mode and how
/// many payload bytes they carried.
#[derive(Clone, Copy, Debug, Default)]
struct ModeTotals {
    counts: [u64; NUM_WIRE_MODES],
    bytes: [u64; NUM_WIRE_MODES],
}

/// The tracing handle threaded through the sync stack.
///
/// Cloning is cheap (an [`Arc`] bump); all clones record into the same
/// buffers. A default-constructed or [`Tracer::disabled`] handle is a
/// no-op: no buffers exist and every record call returns immediately.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer for a cluster of `world_size` hosts, with the
    /// default per-host ring capacity.
    pub fn new(world_size: usize) -> Tracer {
        Tracer::with_capacity(world_size, DEFAULT_CAPACITY)
    }

    /// As [`Tracer::new`] with an explicit per-host ring capacity.
    pub fn with_capacity(world_size: usize, capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                spans: (0..world_size)
                    .map(|_| Mutex::new(Ring::new(capacity)))
                    .collect(),
                events: (0..world_size)
                    .map(|_| Mutex::new(Ring::new(capacity)))
                    .collect(),
                wire_modes: Mutex::new(HashMap::new()),
                size_buckets: (0..NUM_SIZE_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                barrier_wait_ns: AtomicU64::new(0),
                retransmit_events: AtomicU64::new(0),
                dup_events: AtomicU64::new(0),
                decode_error_events: AtomicU64::new(0),
                peer_down_events: AtomicU64::new(0),
                recovery_events: AtomicU64::new(0),
                checkpoint_events: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op tracer (equivalent to `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of hosts the tracer was sized for (0 when disabled).
    pub fn world_size(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.spans.len())
    }

    /// Nanoseconds since the tracer's epoch (0 when disabled — callers
    /// should gate timestamping on [`Tracer::is_enabled`]).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records one stage slice.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range (enabled tracers only).
    #[inline]
    pub fn record_span(
        &self,
        host: usize,
        phase: u32,
        stage: Stage,
        peer: Option<usize>,
        start_ns: u64,
        dur_ns: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.spans[host].lock().push(SpanEvent {
            host,
            phase,
            stage,
            peer,
            start_ns,
            dur_ns,
        });
    }

    /// Records a point-in-time event (timestamped now).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range (enabled tracers only).
    #[inline]
    pub fn record_event(&self, host: usize, name: &'static str, peer: usize, bytes: u64) {
        let Some(inner) = &self.inner else { return };
        match name {
            "retransmit" => {
                inner.retransmit_events.fetch_add(1, Ordering::Relaxed);
            }
            "dup_suppressed" => {
                inner.dup_events.fetch_add(1, Ordering::Relaxed);
            }
            "decode_error" => {
                inner.decode_error_events.fetch_add(1, Ordering::Relaxed);
            }
            "peer_down" => {
                inner.peer_down_events.fetch_add(1, Ordering::Relaxed);
            }
            "recovery" => {
                inner.recovery_events.fetch_add(1, Ordering::Relaxed);
            }
            "checkpoint" => {
                inner.checkpoint_events.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let at_ns = inner.epoch.elapsed().as_nanos() as u64;
        inner.events[host].lock().push(InstantEvent {
            host,
            name,
            peer,
            bytes,
            at_ns,
        });
    }

    /// Counts one sync message of `bytes` payload bytes whose payload
    /// selected wire mode byte `mode` (0..=8: the §4.2 mode bytes plus the
    /// codec-v2 compressed modes) for the field named `field`.
    #[inline]
    pub fn record_wire_mode(&self, field: &'static str, mode: u8, bytes: u64) {
        let Some(inner) = &self.inner else { return };
        let idx = (mode as usize).min(NUM_WIRE_MODES - 1);
        let mut modes = inner.wire_modes.lock();
        let totals = modes.entry(field).or_default();
        totals.counts[idx] += 1;
        totals.bytes[idx] += bytes;
    }

    /// Counts one sync message of `len` payload bytes in the log₂
    /// size histogram.
    #[inline]
    pub fn record_message_size(&self, len: usize) {
        let Some(inner) = &self.inner else { return };
        let bucket = if len == 0 {
            0
        } else {
            (usize::BITS - 1 - len.leading_zeros()) as usize
        };
        inner.size_buckets[bucket.min(NUM_SIZE_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `dur_ns` to the cumulative barrier-wait counter.
    #[inline]
    pub fn add_barrier_wait(&self, dur_ns: u64) {
        let Some(inner) = &self.inner else { return };
        inner.barrier_wait_ns.fetch_add(dur_ns, Ordering::Relaxed);
    }

    /// All recorded spans, ordered by host then recording order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .spans
            .iter()
            .flat_map(|m| m.lock().buf.iter().copied().collect::<Vec<_>>())
            .collect()
    }

    /// All recorded instant events, ordered by host then recording order.
    pub fn events(&self) -> Vec<InstantEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .events
            .iter()
            .flat_map(|m| m.lock().buf.iter().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Spans dropped because a host's ring wrapped.
    pub fn dropped_spans(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        inner.spans.iter().map(|m| m.lock().dropped).sum()
    }

    /// Instant events dropped because a host's ring wrapped.
    pub fn dropped_events(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        inner.events.iter().map(|m| m.lock().dropped).sum()
    }

    /// The per-field wire-mode histogram: `field name -> message counts`
    /// indexed by mode byte (see [`MODE_NAMES`]). Keys are sorted for
    /// deterministic output.
    pub fn wire_mode_histogram(&self) -> Vec<(String, [u64; NUM_WIRE_MODES])> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut rows: Vec<(String, [u64; NUM_WIRE_MODES])> = inner
            .wire_modes
            .lock()
            .iter()
            .map(|(k, v)| (short_type_name(k).to_owned(), v.counts))
            .collect();
        rows.sort();
        rows
    }

    /// As [`Tracer::wire_mode_histogram`], but totalling payload *bytes*
    /// instead of message counts — the per-mode byte breakdown the bench
    /// binaries report.
    pub fn wire_mode_bytes(&self) -> Vec<(String, [u64; NUM_WIRE_MODES])> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut rows: Vec<(String, [u64; NUM_WIRE_MODES])> = inner
            .wire_modes
            .lock()
            .iter()
            .map(|(k, v)| (short_type_name(k).to_owned(), v.bytes))
            .collect();
        rows.sort();
        rows
    }

    /// The log₂ message-size histogram (`bucket i` counts payloads in
    /// `[2^i, 2^(i+1))` bytes; empty payloads land in bucket 0).
    pub fn message_size_histogram(&self) -> [u64; NUM_SIZE_BUCKETS] {
        let mut out = [0u64; NUM_SIZE_BUCKETS];
        if let Some(inner) = &self.inner {
            for (slot, bucket) in out.iter_mut().zip(&inner.size_buckets) {
                *slot = bucket.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Cumulative barrier-wait time, seconds.
    pub fn barrier_wait_secs(&self) -> f64 {
        let Some(inner) = &self.inner else { return 0.0 };
        inner.barrier_wait_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Frames retransmitted (as observed by [`Tracer::record_event`]).
    pub fn retransmit_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.retransmit_events.load(Ordering::Relaxed))
    }

    /// Duplicate frames suppressed (as observed by
    /// [`Tracer::record_event`]).
    pub fn dup_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dup_events.load(Ordering::Relaxed))
    }

    /// Sync payloads that failed to decode (as observed by
    /// [`Tracer::record_event`] with the `"decode_error"` name).
    pub fn decode_error_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.decode_error_events.load(Ordering::Relaxed))
    }

    /// Peers declared down by a failure detector (as observed by
    /// [`Tracer::record_event`] with the `"peer_down"` name).
    pub fn peer_down_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.peer_down_events.load(Ordering::Relaxed))
    }

    /// Supervised recovery attempts (as observed by
    /// [`Tracer::record_event`] with the `"recovery"` name).
    pub fn recovery_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.recovery_events.load(Ordering::Relaxed))
    }

    /// Checkpoint snapshots taken (as observed by
    /// [`Tracer::record_event`] with the `"checkpoint"` name).
    pub fn checkpoint_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.checkpoint_events.load(Ordering::Relaxed))
    }

    /// Exports the recording as a standalone Chrome trace-event JSON
    /// document (load via `chrome://tracing` or Perfetto).
    pub fn chrome_trace_json(&self) -> String {
        let mut b = ChromeTraceBuilder::new();
        b.add("gluon", self);
        b.finish()
    }

    /// Renders the plain-text per-run summary table (stage totals,
    /// wire-mode histogram, message sizes, reliability events).
    pub fn summary(&self, label: &str) -> String {
        summary::render(self, label)
    }
}

/// Trims a Rust type path down to a readable field label:
/// `gluon::field::MinField<'_, u32>` becomes `MinField<'_, u32>`.
pub fn short_type_name(full: &str) -> &str {
    let head_len = full.find('<').unwrap_or(full.len());
    match full[..head_len].rfind("::") {
        Some(pos) => &full[pos + 2..],
        None => full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_ns(), 0);
        t.record_span(0, 0, Stage::Encode, None, 0, 10);
        t.record_event(0, "retransmit", 1, 64);
        t.record_wire_mode("f", 1, 9);
        t.record_message_size(128);
        t.add_barrier_wait(5);
        assert!(t.spans().is_empty());
        assert!(t.events().is_empty());
        assert!(t.wire_mode_histogram().is_empty());
        assert!(t.wire_mode_bytes().is_empty());
        assert_eq!(t.decode_error_events(), 0);
        assert_eq!(t.message_size_histogram(), [0; NUM_SIZE_BUCKETS]);
        assert_eq!(t.barrier_wait_secs(), 0.0);
        assert_eq!(t.dropped_spans(), 0);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn spans_and_events_round_trip() {
        let t = Tracer::new(2);
        t.record_span(1, 3, Stage::RecvWait, Some(0), 100, 50);
        t.record_event(0, "retransmit", 1, 17);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].host, 1);
        assert_eq!(spans[0].phase, 3);
        assert_eq!(spans[0].stage, Stage::RecvWait);
        assert_eq!(spans[0].peer, Some(0));
        assert_eq!(spans[0].dur_ns, 50);
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "retransmit");
        assert_eq!(events[0].bytes, 17);
        assert_eq!(t.retransmit_events(), 1);
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let t = Tracer::with_capacity(1, 4);
        for i in 0..10u64 {
            t.record_span(0, 0, Stage::Encode, None, i, 1);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        // The newest four survive.
        assert_eq!(spans[0].start_ns, 6);
        assert_eq!(spans[3].start_ns, 9);
        assert_eq!(t.dropped_spans(), 6);
    }

    #[test]
    fn wire_mode_histogram_accumulates_per_field() {
        let t = Tracer::new(1);
        t.record_wire_mode("core::MinField<u32>", 3, 25);
        t.record_wire_mode("core::MinField<u32>", 3, 17);
        t.record_wire_mode("core::MinField<u32>", 1, 401);
        t.record_wire_mode("SumField<f64>", 2, 33);
        t.record_wire_mode("SumField<f64>", 7, 6); // codec-v2 same_idx
        let h = t.wire_mode_histogram();
        assert_eq!(h.len(), 2);
        assert_eq!(
            h[0],
            ("MinField<u32>".to_owned(), [0, 1, 0, 2, 0, 0, 0, 0, 0])
        );
        assert_eq!(
            h[1],
            ("SumField<f64>".to_owned(), [0, 0, 1, 0, 0, 0, 0, 1, 0])
        );
        let b = t.wire_mode_bytes();
        assert_eq!(
            b[0],
            ("MinField<u32>".to_owned(), [0, 401, 0, 42, 0, 0, 0, 0, 0])
        );
        assert_eq!(
            b[1],
            ("SumField<f64>".to_owned(), [0, 0, 33, 0, 0, 0, 0, 6, 0])
        );
    }

    #[test]
    fn decode_errors_are_counted_like_reliability_events() {
        let t = Tracer::new(2);
        t.record_event(1, "decode_error", 0, 12);
        t.record_event(1, "decode_error", 0, 3);
        assert_eq!(t.decode_error_events(), 2);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "decode_error");
        assert_eq!(events[0].bytes, 12);
    }

    #[test]
    fn fault_tolerance_events_are_counted() {
        let t = Tracer::new(3);
        t.record_event(0, "peer_down", 2, 0);
        t.record_event(1, "recovery", 0, 1);
        t.record_event(1, "recovery", 0, 2);
        t.record_event(2, "checkpoint", 2, 128);
        t.record_event(2, "checkpoint", 2, 128);
        t.record_event(2, "checkpoint", 2, 128);
        assert_eq!(t.peer_down_events(), 1);
        assert_eq!(t.recovery_events(), 2);
        assert_eq!(t.checkpoint_events(), 3);
        // A disabled tracer reports zeros, never panics.
        let off = Tracer::disabled();
        assert_eq!(off.peer_down_events(), 0);
        assert_eq!(off.recovery_events(), 0);
        assert_eq!(off.checkpoint_events(), 0);
    }

    #[test]
    fn message_sizes_land_in_log2_buckets() {
        let t = Tracer::new(1);
        t.record_message_size(0); // bucket 0
        t.record_message_size(1); // bucket 0
        t.record_message_size(9); // bucket 3
        t.record_message_size(1024); // bucket 10
        let h = t.message_size_histogram();
        assert_eq!(h[0], 2);
        assert_eq!(h[3], 1);
        assert_eq!(h[10], 1);
        assert_eq!(h.iter().sum::<u64>(), 4);
    }

    #[test]
    fn clones_share_buffers() {
        let t = Tracer::new(1);
        let t2 = t.clone();
        t2.record_span(0, 0, Stage::Apply, None, 0, 1);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn now_ns_is_monotone() {
        let t = Tracer::new(1);
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn short_names_strip_paths_but_keep_generics() {
        assert_eq!(
            short_type_name("gluon::field::MinField<'_, u32>"),
            "MinField<'_, u32>"
        );
        assert_eq!(short_type_name("MinField"), "MinField");
        assert_eq!(
            short_type_name("a::b::SumField<alloc::vec::Vec<u8>>"),
            "SumField<alloc::vec::Vec<u8>>"
        );
    }
}
