//! An IrGL-style bulk-kernel engine (Pai & Pingali, OOPSLA'16), emulating
//! GPU execution semantics on the host.
//!
//! IrGL compiles vertex programs into GPU *kernels*: bulk-synchronous
//! sweeps over a worklist (data-driven) or over all nodes
//! (topology-driven), with atomics making updates visible within the sweep.
//! Plugged into Gluon this becomes the paper's **D-IrGL**, the first
//! multi-node multi-GPU graph analytics system.
//!
//! # GPU substitution
//!
//! No CUDA device is assumed: kernels execute on the host thread with the
//! same visibility semantics a single GPU provides (an atomic update in an
//! earlier-scheduled thread is visible to later ones). What the paper's
//! claims need from "a GPU" is (a) the bulk-synchronous kernel structure,
//! (b) bulk extract/set synchronization at kernel boundaries, and (c) no
//! per-node address-translation structures on the device — all of which
//! this engine exercises. A [`DeviceModel`] additionally projects kernel
//! wall-clock onto GPU-like throughput numbers for the benchmark harness.

use gluon::DenseBitset;
use gluon_exec::Pool;
use gluon_graph::Lid;
use gluon_partition::LocalGraph;
use serde::{Deserialize, Serialize};

/// Throughput model of the emulated accelerator.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Fixed cost of launching one kernel (seconds). K80-era devices pay
    /// ~5 µs.
    pub kernel_launch_secs: f64,
    /// Edge traversals per second the device sustains.
    pub edges_per_sec: f64,
    /// Node visits per second the device sustains.
    pub nodes_per_sec: f64,
}

impl DeviceModel {
    /// Rough NVIDIA Tesla K80 numbers (the Bridges GPUs of the paper).
    pub const K80: DeviceModel = DeviceModel {
        kernel_launch_secs: 5e-6,
        edges_per_sec: 2e9,
        nodes_per_sec: 1e9,
    };
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel::K80
    }
}

/// Work counters of one engine instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Kernels launched.
    pub kernels: u64,
    /// Node visits across all kernels.
    pub nodes_visited: u64,
    /// Edge traversals across all kernels.
    pub edges_traversed: u64,
}

/// Per-chunk candidate buffer for [`IrglEngine::kernel_par`]: workers
/// propose `(lid, value)` updates here instead of writing shared state.
#[derive(Debug)]
pub struct KernelCandidates<V> {
    entries: Vec<(Lid, V)>,
}

impl<V> KernelCandidates<V> {
    /// Proposes `value` for `lid`; the engine applies proposals in
    /// worklist order after the parallel sweep.
    pub fn push(&mut self, lid: Lid, value: V) {
        self.entries.push((lid, value));
    }
}

/// Collects the next worklist during a data-driven kernel.
#[derive(Debug)]
pub struct KernelOutput {
    next: Vec<Lid>,
    seen: DenseBitset,
}

impl KernelOutput {
    fn new(capacity: u32) -> KernelOutput {
        KernelOutput {
            next: Vec::new(),
            seen: DenseBitset::new(capacity),
        }
    }

    /// Appends `lid` to the next worklist (deduplicated).
    pub fn push(&mut self, lid: Lid) {
        if !self.seen.test(lid) {
            self.seen.set(lid);
            self.next.push(lid);
        }
    }
}

/// The bulk-kernel executor.
///
/// # Examples
///
/// ```
/// use gluon_engines::irgl::IrglEngine;
/// use gluon_graph::{gen, Lid};
/// use gluon_partition::{partition_all, Policy};
///
/// let g = gen::path(6);
/// let lg = partition_all(&g, 1, Policy::Oec).remove(0);
/// let mut dev = IrglEngine::new(Default::default());
/// let mut hops = vec![u32::MAX; 6];
/// hops[0] = 0;
/// let mut wl = vec![Lid(0)];
/// while !wl.is_empty() {
///     wl = dev.kernel(&lg, &wl, |v, lg, out| {
///         for e in lg.out_edges(v) {
///             if hops[e.dst.index()] == u32::MAX {
///                 hops[e.dst.index()] = hops[v.index()] + 1;
///                 out.push(e.dst);
///             }
///         }
///     });
/// }
/// assert_eq!(hops, vec![0, 1, 2, 3, 4, 5]);
/// assert!(dev.stats().kernels >= 5);
/// ```
#[derive(Debug)]
pub struct IrglEngine {
    model: DeviceModel,
    stats: DeviceStats,
}

impl IrglEngine {
    /// Creates an engine with the given throughput model.
    pub fn new(model: DeviceModel) -> IrglEngine {
        IrglEngine {
            model,
            stats: DeviceStats::default(),
        }
    }

    /// Launches a data-driven kernel: one sweep over `worklist`, updates
    /// immediately visible (single-GPU atomics semantics). Returns the
    /// deduplicated next worklist assembled through [`KernelOutput::push`].
    pub fn kernel(
        &mut self,
        graph: &LocalGraph,
        worklist: &[Lid],
        mut op: impl FnMut(Lid, &LocalGraph, &mut KernelOutput),
    ) -> Vec<Lid> {
        let mut out = KernelOutput::new(graph.num_proxies());
        for &lid in worklist {
            self.stats.nodes_visited += 1;
            self.stats.edges_traversed += u64::from(graph.out_degree(lid));
            op(lid, graph, &mut out);
        }
        self.stats.kernels += 1;
        out.next
    }

    /// Deterministic parallel data-driven kernel: worklist chunks run on
    /// `pool` workers, each producing `(lid, value)` candidates from
    /// immutable shared state via `op`; `apply` then folds the candidates
    /// sequentially in worklist order (`true` = newly activated, collected
    /// into the deduplicated next worklist). Unlike [`IrglEngine::kernel`],
    /// updates are *not* visible within the sweep — snapshot semantics, as
    /// on a multi-SM launch without cross-block ordering. Work counters
    /// advance exactly as in [`IrglEngine::kernel`].
    pub fn kernel_par<V: Send>(
        &mut self,
        graph: &LocalGraph,
        pool: &Pool,
        worklist: &[Lid],
        op: impl Fn(Lid, &LocalGraph, &mut KernelCandidates<V>) + Sync,
        mut apply: impl FnMut(Lid, V) -> bool,
    ) -> Vec<Lid> {
        let chunks = pool.map_chunks_weighted(
            worklist.len(),
            |r| {
                worklist[r]
                    .iter()
                    .map(|&l| u64::from(graph.out_degree(l)))
                    .sum()
            },
            |r| {
                let mut cands = KernelCandidates {
                    entries: Vec::new(),
                };
                for &lid in &worklist[r] {
                    op(lid, graph, &mut cands);
                }
                cands.entries
            },
        );
        let mut out = KernelOutput::new(graph.num_proxies());
        for entries in chunks {
            for (lid, v) in entries {
                if apply(lid, v) {
                    out.push(lid);
                }
            }
        }
        self.stats.nodes_visited += worklist.len() as u64;
        self.stats.edges_traversed += worklist
            .iter()
            .map(|&l| u64::from(graph.out_degree(l)))
            .sum::<u64>();
        self.stats.kernels += 1;
        out.next
    }

    /// Launches a topology-driven kernel: one sweep over every proxy.
    pub fn kernel_all(&mut self, graph: &LocalGraph, mut op: impl FnMut(Lid, &LocalGraph)) {
        for lid in graph.proxies() {
            self.stats.nodes_visited += 1;
            self.stats.edges_traversed += u64::from(graph.out_degree(lid));
            op(lid, graph);
        }
        self.stats.kernels += 1;
    }

    /// Work counters so far.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Projected device time for the work done so far, under the
    /// throughput model.
    pub fn projected_device_secs(&self) -> f64 {
        self.stats.kernels as f64 * self.model.kernel_launch_secs
            + self.stats.nodes_visited as f64 / self.model.nodes_per_sec
            + self.stats.edges_traversed as f64 / self.model.edges_per_sec
    }
}

/// Bulk extract: reads `field[lid]` for every lid in `lids` into a vector —
/// the GPU-side gather the paper's "bulk-variants for GPUs" refers to
/// (device → host staging buffer in one memcpy-like pass).
pub fn bulk_extract<T: Copy>(field: &[T], lids: &[Lid]) -> Vec<T> {
    lids.iter().map(|l| field[l.index()]).collect()
}

/// Bulk set: scatters `values` to `field` at `lids`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn bulk_set<T: Copy>(field: &mut [T], lids: &[Lid], values: &[T]) {
    assert_eq!(lids.len(), values.len(), "one value per lid");
    for (&l, &v) in lids.iter().zip(values) {
        field[l.index()] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::gen;
    use gluon_partition::{partition_all, Policy};

    #[test]
    fn kernel_output_dedups() {
        let mut out = KernelOutput::new(5);
        out.push(Lid(2));
        out.push(Lid(2));
        out.push(Lid(4));
        assert_eq!(out.next, vec![Lid(2), Lid(4)]);
    }

    #[test]
    fn updates_visible_within_a_sweep() {
        // Path 0->1->2 with both 0 and 1 in the worklist: 1's relaxation
        // must see the value 0 just wrote (single-GPU atomics semantics).
        let g = gen::path(3);
        let lg = partition_all(&g, 1, Policy::Oec).remove(0);
        let mut dev = IrglEngine::new(Default::default());
        let mut dist = vec![u32::MAX; 3];
        dist[0] = 0;
        let next = dev.kernel(&lg, &[Lid(0), Lid(1)], |v, lg, out| {
            if dist[v.index()] == u32::MAX {
                return;
            }
            for e in lg.out_edges(v) {
                let nd = dist[v.index()] + 1;
                if nd < dist[e.dst.index()] {
                    dist[e.dst.index()] = nd;
                    out.push(e.dst);
                }
            }
        });
        assert_eq!(dist, vec![0, 1, 2]);
        assert_eq!(next, vec![Lid(1), Lid(2)]);
    }

    #[test]
    fn stats_count_work() {
        let g = gen::star(10);
        let lg = partition_all(&g, 1, Policy::Oec).remove(0);
        let mut dev = IrglEngine::new(Default::default());
        dev.kernel_all(&lg, |_, _| {});
        let s = dev.stats();
        assert_eq!(s.kernels, 1);
        assert_eq!(s.nodes_visited, 10);
        assert_eq!(s.edges_traversed, 9);
        assert!(dev.projected_device_secs() > 0.0);
    }

    #[test]
    fn kernel_par_is_thread_count_invariant_and_counts_work() {
        let g = gen::rmat(7, 6, Default::default(), 11);
        let lg = partition_all(&g, 1, Policy::Oec).remove(0);
        let run = |threads: usize| {
            let pool = Pool::new(threads);
            let mut dev = IrglEngine::new(Default::default());
            let mut dist = vec![u32::MAX; lg.num_proxies() as usize];
            dist[0] = 0;
            let mut wl = vec![Lid(0)];
            while !wl.is_empty() {
                let prev = dist.clone();
                wl = dev.kernel_par(
                    &lg,
                    &pool,
                    &wl,
                    |v, lg, out| {
                        let lv = prev[v.index()];
                        for e in lg.out_edges(v) {
                            let nd = lv.saturating_add(1);
                            if nd < prev[e.dst.index()] {
                                out.push(e.dst, nd);
                            }
                        }
                    },
                    |dst, nd| {
                        if nd < dist[dst.index()] {
                            dist[dst.index()] = nd;
                            true
                        } else {
                            false
                        }
                    },
                );
            }
            (dist, dev.stats())
        };
        let (seq, seq_stats) = run(1);
        assert!(seq_stats.kernels > 1 && seq_stats.edges_traversed > 0);
        for t in [2, 5, 8] {
            let (par, par_stats) = run(t);
            assert_eq!(par, seq, "threads = {t}");
            assert_eq!(par_stats, seq_stats, "threads = {t}");
        }
    }

    #[test]
    fn bulk_extract_and_set_round_trip() {
        let mut field = vec![0u32; 6];
        let lids = vec![Lid(1), Lid(4)];
        bulk_set(&mut field, &lids, &[10, 40]);
        assert_eq!(bulk_extract(&field, &lids), vec![10, 40]);
        assert_eq!(field, vec![0, 10, 0, 0, 40, 0]);
    }
}
