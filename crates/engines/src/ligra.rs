//! A Ligra-style frontier engine (Shun & Blelloch, PPoPP'13).
//!
//! Ligra programs are built from `edgeMap` — apply an update function to
//! every edge leaving the current frontier and collect the newly activated
//! destinations — and `vertexMap`. The engine's trademark is *direction
//! optimization*: when the frontier is large, it switches from pushing along
//! out-edges to pulling along in-edges, which lets destinations stop early.
//!
//! This engine runs on one host's [`LocalGraph`]; plugged into
//! [`gluon::GluonContext::sync`] between rounds it becomes the paper's
//! **D-Ligra**. The classic `edgeMap` runs on the host thread; the
//! `*_par` variants drive a deterministic [`Pool`] for intra-host
//! parallelism (candidates from immutable state, applied in chunk order,
//! bit-identical at any thread count).

use gluon::{BitsetIter, DenseBitset};
use gluon_exec::Pool;
use gluon_graph::Lid;
use gluon_partition::LocalGraph;

/// A set of active proxies, kept sparse (list) or dense (bit set) depending
/// on size — Ligra's `vertexSubset`.
#[derive(Clone, Debug)]
pub enum VertexSubset {
    /// Explicit list of members (ascending, deduplicated).
    Sparse(Vec<Lid>),
    /// One bit per proxy.
    Dense(DenseBitset),
}

impl VertexSubset {
    /// The empty subset (sparse).
    pub fn empty() -> VertexSubset {
        VertexSubset::Sparse(Vec::new())
    }

    /// Builds a sparse subset from members (sorted + deduplicated here).
    pub fn from_members(mut members: Vec<Lid>) -> VertexSubset {
        members.sort_unstable();
        members.dedup();
        VertexSubset::Sparse(members)
    }

    /// Wraps a dirty bit set produced by a Gluon sync.
    pub fn from_bitset(bits: DenseBitset) -> VertexSubset {
        VertexSubset::Dense(bits)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense(b) => b.count_ones() as usize,
        }
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            VertexSubset::Sparse(v) => v.is_empty(),
            VertexSubset::Dense(b) => b.is_empty(),
        }
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> SubsetIter<'_> {
        match self {
            VertexSubset::Sparse(v) => SubsetIter::Sparse(v.iter().copied()),
            VertexSubset::Dense(b) => SubsetIter::Dense(b.iter()),
        }
    }

    /// Applies `f` to fixed [`gluon_exec::CHUNK`]-sized slices of the member
    /// list on `pool`, returning per-chunk results in ascending chunk order
    /// for the caller to fold sequentially. `weight` meters one member's
    /// work (typically its degree). Dense subsets materialize their member
    /// list first, so chunk boundaries are identical whichever
    /// representation the subset happens to be in.
    pub fn for_each_chunked<R: Send>(
        &self,
        pool: &Pool,
        weight: impl Fn(Lid) -> u64 + Sync,
        f: impl Fn(&[Lid]) -> R + Sync,
    ) -> Vec<R> {
        let owned;
        let members: &[Lid] = match self {
            VertexSubset::Sparse(v) => v,
            VertexSubset::Dense(b) => {
                owned = b.iter().collect::<Vec<Lid>>();
                &owned
            }
        };
        pool.map_chunks_weighted(
            members.len(),
            |r| members[r].iter().map(|&l| weight(l)).sum(),
            |r| f(&members[r]),
        )
    }

    /// Materializes the subset as a bit set of `capacity` bits (Gluon's
    /// dirty-set input).
    ///
    /// # Panics
    ///
    /// Panics if a member exceeds `capacity`.
    pub fn to_bitset(&self, capacity: u32) -> DenseBitset {
        match self {
            VertexSubset::Sparse(v) => {
                let mut b = DenseBitset::new(capacity);
                for &m in v {
                    b.set(m);
                }
                b
            }
            VertexSubset::Dense(b) => {
                assert_eq!(b.capacity(), capacity, "bitset capacity mismatch");
                b.clone()
            }
        }
    }

    /// Membership test (O(log n) sparse, O(1) dense).
    pub fn contains(&self, lid: Lid) -> bool {
        match self {
            VertexSubset::Sparse(v) => v.binary_search(&lid).is_ok(),
            VertexSubset::Dense(b) => b.test(lid),
        }
    }
}

/// Concrete iterator over the members of a [`VertexSubset`], ascending
/// (what [`VertexSubset::iter`] returns — no boxing, so tight frontier
/// loops inline).
#[derive(Clone, Debug)]
pub enum SubsetIter<'a> {
    /// Members of a sparse subset.
    Sparse(std::iter::Copied<std::slice::Iter<'a, Lid>>),
    /// Set bits of a dense subset.
    Dense(BitsetIter<'a>),
}

impl Iterator for SubsetIter<'_> {
    type Item = Lid;

    fn next(&mut self) -> Option<Lid> {
        match self {
            SubsetIter::Sparse(it) => it.next(),
            SubsetIter::Dense(it) => it.next(),
        }
    }
}

impl<'a> IntoIterator for &'a VertexSubset {
    type Item = Lid;
    type IntoIter = SubsetIter<'a>;

    fn into_iter(self) -> SubsetIter<'a> {
        self.iter()
    }
}

/// Traversal direction for [`edge_map`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Direction {
    /// Choose per call using Ligra's frontier-size heuristic.
    #[default]
    Auto,
    /// Always push along out-edges of the frontier.
    Push,
    /// Always pull along in-edges of candidate destinations (requires the
    /// transpose, see [`LocalGraph::build_transpose`]).
    Pull,
}

/// The edge update functor of `edgeMap` (Ligra's `F`).
pub trait EdgeOp {
    /// Applies the operator to edge `(src, dst)`; returns true when `dst`
    /// was newly activated by this update.
    fn update(&mut self, src: Lid, dst: Lid, weight: u32) -> bool;

    /// Whether `dst` still wants updates (Ligra's `C`); pull traversals
    /// skip or stop early on nodes where this is false. Defaults to true.
    fn cond(&self, _dst: Lid) -> bool {
        true
    }
}

/// Fraction of local edges above which [`Direction::Auto`] switches to
/// pull (Ligra uses |E|/20).
const PULL_THRESHOLD_DENOM: u64 = 20;

/// Applies `op` to every edge leaving `frontier` and returns the subset of
/// newly activated destinations — Ligra's `edgeMap`.
///
/// # Panics
///
/// Panics if a pull traversal is requested (or auto-selected) before
/// [`LocalGraph::build_transpose`] was called.
pub fn edge_map(
    graph: &LocalGraph,
    frontier: &VertexSubset,
    op: &mut impl EdgeOp,
    direction: Direction,
) -> VertexSubset {
    match choose_direction(graph, frontier, direction) {
        Direction::Push => edge_map_push(graph, frontier, op),
        Direction::Pull => edge_map_pull(graph, frontier, op),
        Direction::Auto => unreachable!("resolved by choose_direction"),
    }
}

/// Resolves [`Direction::Auto`] with Ligra's frontier-size heuristic
/// (never returns `Auto`). The decision depends only on the frontier and
/// the graph — not on the thread count — so parallel and sequential runs
/// traverse in the same direction every round.
pub fn choose_direction(
    graph: &LocalGraph,
    frontier: &VertexSubset,
    direction: Direction,
) -> Direction {
    match direction {
        Direction::Auto => {
            let frontier_degree: u64 = frontier
                .iter()
                .map(|l| u64::from(graph.out_degree(l)))
                .sum();
            let size = frontier.len() as u64 + frontier_degree;
            if graph.has_transpose() && size > graph.num_local_edges() / PULL_THRESHOLD_DENOM {
                Direction::Pull
            } else {
                Direction::Push
            }
        }
        d => d,
    }
}

fn edge_map_push(
    graph: &LocalGraph,
    frontier: &VertexSubset,
    op: &mut impl EdgeOp,
) -> VertexSubset {
    let mut next = Vec::new();
    let mut added = DenseBitset::new(graph.num_proxies());
    for src in frontier.iter() {
        for e in graph.out_edges(src) {
            if op.cond(e.dst) && op.update(src, e.dst, e.weight) && !added.test(e.dst) {
                added.set(e.dst);
                next.push(e.dst);
            }
        }
    }
    VertexSubset::from_members(next)
}

fn edge_map_pull(
    graph: &LocalGraph,
    frontier: &VertexSubset,
    op: &mut impl EdgeOp,
) -> VertexSubset {
    // Pull wants O(1) membership tests on the frontier.
    let dense_frontier;
    let frontier: &VertexSubset = match frontier {
        VertexSubset::Sparse(_) => {
            dense_frontier = VertexSubset::Dense(frontier.to_bitset(graph.num_proxies()));
            &dense_frontier
        }
        VertexSubset::Dense(_) => frontier,
    };
    let mut next = Vec::new();
    for dst in graph.proxies() {
        if !op.cond(dst) {
            continue;
        }
        let mut activated = false;
        for e in graph.in_edges(dst) {
            let src = e.dst; // in_edges reports the source in `dst`
            if frontier.contains(src) && op.update(src, dst, e.weight) {
                activated = true;
            }
            if !op.cond(dst) {
                break; // Ligra's early exit once dst is satisfied
            }
        }
        if activated {
            next.push(dst);
        }
    }
    VertexSubset::from_members(next)
}

/// Deterministic parallel push `edgeMap`: frontier chunks produce
/// `(dst, value)` candidates on the pool via `candidate`, which reads only
/// immutable shared state (snapshot/Jacobi semantics — an update is *not*
/// visible to later edges of the same sweep, unlike [`edge_map`]'s
/// sequential push); `apply` then folds the candidates sequentially in
/// chunk order, making the result bit-identical at any thread count.
/// Returns the destinations `apply` reported as newly activated,
/// deduplicated in application order.
pub fn edge_map_push_par<V: Send>(
    graph: &LocalGraph,
    frontier: &VertexSubset,
    pool: &Pool,
    candidate: impl Fn(Lid, Lid, u32) -> Option<V> + Sync,
    mut apply: impl FnMut(Lid, V) -> bool,
) -> VertexSubset {
    let chunks = frontier.for_each_chunked(
        pool,
        |l| u64::from(graph.out_degree(l)),
        |members| {
            let mut out: Vec<(Lid, V)> = Vec::new();
            for &src in members {
                for e in graph.out_edges(src) {
                    if let Some(v) = candidate(src, e.dst, e.weight) {
                        out.push((e.dst, v));
                    }
                }
            }
            out
        },
    );
    let mut next = Vec::new();
    let mut added = DenseBitset::new(graph.num_proxies());
    for chunk in chunks {
        for (dst, v) in chunk {
            if apply(dst, v) && !added.test(dst) {
                added.set(dst);
                next.push(dst);
            }
        }
    }
    VertexSubset::from_members(next)
}

/// Deterministic parallel pull `edgeMap`: `labels` is split into fixed
/// chunks of *destination* slots, each handed exclusively to one pool
/// worker ([`Pool::map_chunks_mut`] — disjoint slices, no write races).
/// A worker scans its destinations' in-edges against the frontier and
/// folds improvements into the slot **in in-edge order**, the same order
/// the sequential pull visits them; `relax(src, dst, weight, current)`
/// returns the improved value or `None`. Source values must come from a
/// caller-held snapshot (capture it in `relax`), which is what makes the
/// sweep order-free. Returns the activated destinations, ascending.
///
/// # Panics
///
/// Panics if the transpose is absent or `labels` is not one slot per
/// proxy.
pub fn edge_map_pull_par<T: Send>(
    graph: &LocalGraph,
    frontier: &VertexSubset,
    pool: &Pool,
    labels: &mut [T],
    relax: impl Fn(Lid, Lid, u32, &T) -> Option<T> + Sync,
) -> VertexSubset {
    assert!(graph.has_transpose(), "pull requires the transpose");
    assert_eq!(
        labels.len(),
        graph.num_proxies() as usize,
        "one label slot per proxy"
    );
    // Pull wants O(1) membership tests on the frontier.
    let dense_frontier;
    let frontier: &VertexSubset = match frontier {
        VertexSubset::Sparse(_) => {
            dense_frontier = VertexSubset::Dense(frontier.to_bitset(graph.num_proxies()));
            &dense_frontier
        }
        VertexSubset::Dense(_) => frontier,
    };
    let activated = pool.map_chunks_mut(
        labels,
        |r| {
            r.map(|i| graph.in_edges(Lid(i as u32)).count() as u64)
                .sum()
        },
        |start, chunk| {
            let mut activated: Vec<Lid> = Vec::new();
            for (i, slot) in chunk.iter_mut().enumerate() {
                let dst = Lid((start + i) as u32);
                let mut any = false;
                for e in graph.in_edges(dst) {
                    let src = e.dst; // in_edges reports the source in `dst`
                    if frontier.contains(src) {
                        if let Some(nv) = relax(src, dst, e.weight, slot) {
                            *slot = nv;
                            any = true;
                        }
                    }
                }
                if any {
                    activated.push(dst);
                }
            }
            activated
        },
    );
    VertexSubset::from_members(activated.into_iter().flatten().collect())
}

/// Applies `keep` to every member; returns the subset where it was true —
/// Ligra's `vertexMap` with filtering.
pub fn vertex_map(subset: &VertexSubset, mut keep: impl FnMut(Lid) -> bool) -> VertexSubset {
    VertexSubset::from_members(subset.iter().filter(|&l| keep(l)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::gen;
    use gluon_partition::{partition_all, Policy};

    struct BfsOp<'a> {
        dist: &'a mut [u32],
        level: u32,
    }

    impl EdgeOp for BfsOp<'_> {
        fn update(&mut self, _src: Lid, dst: Lid, _w: u32) -> bool {
            if self.dist[dst.index()] == u32::MAX {
                self.dist[dst.index()] = self.level;
                true
            } else {
                false
            }
        }

        fn cond(&self, dst: Lid) -> bool {
            self.dist[dst.index()] == u32::MAX
        }
    }

    fn single_host(graph: &gluon_graph::Csr) -> LocalGraph {
        let mut p = partition_all(graph, 1, Policy::Oec);
        let mut lg = p.remove(0);
        lg.build_transpose();
        lg
    }

    fn bfs_with(direction: Direction) -> Vec<u32> {
        let g = gen::rmat(7, 6, Default::default(), 9);
        let lg = single_host(&g);
        let mut dist = vec![u32::MAX; lg.num_proxies() as usize];
        let start = Lid(0);
        dist[start.index()] = 0;
        let mut frontier = VertexSubset::from_members(vec![start]);
        let mut level = 1;
        while !frontier.is_empty() {
            let mut op = BfsOp {
                dist: &mut dist,
                level,
            };
            frontier = edge_map(&lg, &frontier, &mut op, direction);
            level += 1;
        }
        dist
    }

    #[test]
    fn push_and_pull_agree_on_bfs() {
        let push = bfs_with(Direction::Push);
        let pull = bfs_with(Direction::Pull);
        let auto = bfs_with(Direction::Auto);
        assert_eq!(push, pull);
        assert_eq!(push, auto);
        assert!(push.iter().any(|&d| d != u32::MAX && d > 0));
    }

    #[test]
    fn subset_round_trips_through_bitset() {
        let s = VertexSubset::from_members(vec![Lid(5), Lid(1), Lid(5), Lid(9)]);
        assert_eq!(s.len(), 3);
        let bits = s.to_bitset(16);
        let back = VertexSubset::from_bitset(bits);
        assert_eq!(back.len(), 3);
        assert!(back.contains(Lid(1)) && back.contains(Lid(5)) && back.contains(Lid(9)));
        assert!(!back.contains(Lid(2)));
    }

    #[test]
    fn vertex_map_filters() {
        let s = VertexSubset::from_members((0..10).map(Lid).collect());
        let evens = vertex_map(&s, |l| l.0 % 2 == 0);
        assert_eq!(evens.len(), 5);
        assert!(evens.iter().all(|l| l.0 % 2 == 0));
    }

    #[test]
    fn edge_map_dedups_activations() {
        // Node 0 and 1 both point at node 2: one activation only.
        let g = gluon_graph::Csr::from_edge_list(3, &[(0, 2), (1, 2)]);
        let lg = single_host(&g);
        let mut dist = vec![u32::MAX; 3];
        dist[0] = 0;
        dist[1] = 0;
        let frontier = VertexSubset::from_members(vec![Lid(0), Lid(1)]);
        let mut op = BfsOp {
            dist: &mut dist,
            level: 1,
        };
        let next = edge_map(&lg, &frontier, &mut op, Direction::Push);
        assert_eq!(next.len(), 1);
    }

    fn bfs_par(threads: usize, direction: Direction) -> Vec<u32> {
        let g = gen::rmat(7, 6, Default::default(), 9);
        let lg = single_host(&g);
        let pool = gluon_exec::Pool::new(threads);
        let mut dist = vec![u32::MAX; lg.num_proxies() as usize];
        dist[0] = 0;
        let mut frontier = VertexSubset::from_members(vec![Lid(0)]);
        let mut level = 1;
        while !frontier.is_empty() {
            let prev = dist.clone();
            frontier = match direction {
                Direction::Pull => {
                    edge_map_pull_par(&lg, &frontier, &pool, &mut dist, |src, _dst, _w, cur| {
                        (prev[src.index()] != u32::MAX && level < *cur).then_some(level)
                    })
                }
                _ => edge_map_push_par(
                    &lg,
                    &frontier,
                    &pool,
                    |src, dst, _w| {
                        (prev[src.index()] != u32::MAX && prev[dst.index()] == u32::MAX)
                            .then_some(level)
                    },
                    |dst, v| {
                        if v < dist[dst.index()] {
                            dist[dst.index()] = v;
                            true
                        } else {
                            false
                        }
                    },
                ),
            };
            level += 1;
        }
        dist
    }

    #[test]
    fn parallel_edge_map_matches_sequential_at_any_thread_count() {
        let oracle = bfs_with(Direction::Push);
        for dir in [Direction::Push, Direction::Pull] {
            let seq = bfs_par(1, dir);
            assert_eq!(seq, oracle, "{dir:?} fixpoint");
            for t in [2, 5, 8] {
                assert_eq!(bfs_par(t, dir), seq, "{dir:?} threads={t}");
            }
        }
    }

    #[test]
    fn for_each_chunked_has_representation_independent_chunks() {
        let members: Vec<Lid> = (0..1500).filter(|i| i % 3 != 0).map(Lid).collect();
        let sparse = VertexSubset::from_members(members.clone());
        let dense = VertexSubset::from_bitset(sparse.to_bitset(1500));
        let pool = gluon_exec::Pool::new(4);
        let by = |s: &VertexSubset| s.for_each_chunked(&pool, |_| 1, |c| c.to_vec());
        assert_eq!(by(&sparse), by(&dense));
    }

    #[test]
    fn empty_frontier_yields_empty_result() {
        let g = gen::path(5);
        let lg = single_host(&g);
        let mut dist = vec![u32::MAX; 5];
        let mut op = BfsOp {
            dist: &mut dist,
            level: 1,
        };
        let next = edge_map(&lg, &VertexSubset::empty(), &mut op, Direction::Push);
        assert!(next.is_empty());
    }
}
