//! A Galois-style asynchronous worklist engine (Nguyen et al., SOSP'13).
//!
//! Galois programs apply an *operator* to active nodes drawn from a
//! worklist; the operator may activate further nodes, which are processed
//! in the same round until the worklist drains (local quiescence). Plugged
//! into Gluon this becomes the paper's **D-Galois**: asynchronous chaotic
//! relaxation *within* a host, bulk-synchronous rounds *across* hosts —
//! the hybrid §5.4 argues is the right design for large-scale analytics
//! (it needs 2–4x fewer rounds than level-synchronous engines).

use gluon::DenseBitset;
use gluon_exec::Pool;
use gluon_graph::Lid;

/// The engine's work queue: FIFO with membership filtering, so a node is
/// enqueued at most once until processed.
#[derive(Clone, Debug)]
pub struct Worklist {
    queue: std::collections::VecDeque<Lid>,
    on_list: DenseBitset,
}

impl Worklist {
    /// Creates an empty worklist over `capacity` node slots.
    pub fn new(capacity: u32) -> Worklist {
        Worklist {
            queue: std::collections::VecDeque::new(),
            on_list: DenseBitset::new(capacity),
        }
    }

    /// Enqueues `lid` unless it is already pending.
    pub fn push(&mut self, lid: Lid) {
        if !self.on_list.test(lid) {
            self.on_list.set(lid);
            self.queue.push_back(lid);
        }
    }

    /// Dequeues the next pending node.
    pub fn pop(&mut self) -> Option<Lid> {
        let lid = self.queue.pop_front()?;
        self.on_list.clear(lid);
        Some(lid)
    }

    /// Number of pending nodes.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no work is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl Extend<Lid> for Worklist {
    fn extend<I: IntoIterator<Item = Lid>>(&mut self, iter: I) {
        for lid in iter {
            self.push(lid);
        }
    }
}

/// Galois' `for_each`: drains the worklist to local quiescence, letting the
/// operator push follow-up work. Returns the number of operator
/// applications.
///
/// # Examples
///
/// ```
/// use gluon_engines::galois::{for_each, Worklist};
/// use gluon_graph::Lid;
///
/// // Count down from each seed, pushing v-1 until zero.
/// let mut hits = 0u32;
/// let applied = for_each(8, [Lid(3)], |lid, wl| {
///     hits += 1;
///     if lid.0 > 0 {
///         wl.push(Lid(lid.0 - 1));
///     }
/// });
/// assert_eq!(applied, 4); // 3, 2, 1, 0
/// assert_eq!(hits, 4);
/// ```
pub fn for_each(
    capacity: u32,
    init: impl IntoIterator<Item = Lid>,
    mut op: impl FnMut(Lid, &mut Worklist),
) -> u64 {
    let mut wl = Worklist::new(capacity);
    wl.extend(init);
    let mut applied = 0u64;
    while let Some(lid) = wl.pop() {
        op(lid, &mut wl);
        applied += 1;
    }
    applied
}

/// Galois' `do_all`: applies `op` to every item once, no follow-up work.
pub fn do_all(items: impl IntoIterator<Item = Lid>, mut op: impl FnMut(Lid)) -> u64 {
    let mut applied = 0u64;
    for lid in items {
        op(lid);
        applied += 1;
    }
    applied
}

/// Deterministic parallel `do_all`: applies `map` to fixed
/// [`gluon_exec::CHUNK`]-sized slices of `items` on `pool` and returns the
/// per-chunk results in ascending chunk order for the caller to fold
/// sequentially. `map` reads only immutable shared state (`Fn + Sync`);
/// `weight` meters one item's work (typically its out-degree) into the
/// pool's seq/critical-path counters. Deterministic local quiescence is
/// built on top of this: sweep the frontier in bulk, apply the candidate
/// chunks in order, repeat until no label changes — monotone operators
/// reach the same fixpoint FIFO chaotic relaxation does.
pub fn do_all_chunked<R: Send>(
    pool: &Pool,
    items: &[Lid],
    weight: impl Fn(Lid) -> u64 + Sync,
    map: impl Fn(&[Lid]) -> R + Sync,
) -> Vec<R> {
    pool.map_chunks_weighted(
        items.len(),
        |r| items[r].iter().map(|&l| weight(l)).sum(),
        |r| map(&items[r]),
    )
}

/// A delta-stepping priority worklist (Meyer & Sanders): work items carry a
/// priority (e.g. a tentative distance), are drained bucket by bucket
/// (bucket = priority / delta), and may be re-pushed with a better priority.
/// Stale entries are skipped lazily.
///
/// This is the scheduler Lonestar's asynchronous sssp uses; combined with
/// Gluon it yields a distributed sssp that does far fewer wasted
/// relaxations than FIFO chaotic relaxation on weighted graphs.
#[derive(Clone, Debug)]
pub struct DeltaWorklist {
    delta: u32,
    buckets: Vec<Vec<Lid>>,
    /// Best priority each node was pushed with (u32::MAX = never pushed or
    /// already drained at its best priority).
    best: Vec<u32>,
    current: usize,
}

impl DeltaWorklist {
    /// Creates a worklist for `capacity` nodes with bucket width `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is zero.
    pub fn new(capacity: u32, delta: u32) -> DeltaWorklist {
        assert!(delta > 0, "bucket width must be positive");
        DeltaWorklist {
            delta,
            buckets: Vec::new(),
            best: vec![u32::MAX; capacity as usize],
            current: 0,
        }
    }

    /// Pushes `lid` with `priority`, if better than its pending priority.
    pub fn push(&mut self, lid: Lid, priority: u32) {
        if priority >= self.best[lid.index()] {
            return; // an equal or better entry is already pending
        }
        self.best[lid.index()] = priority;
        let b = (priority / self.delta) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize_with(b + 1, Vec::new);
        }
        self.buckets[b].push(lid);
        self.current = self.current.min(b);
    }

    /// Pops the lowest-priority pending node (skipping stale entries).
    pub fn pop(&mut self) -> Option<(Lid, u32)> {
        while self.current < self.buckets.len() {
            while let Some(lid) = self.buckets[self.current].pop() {
                let prio = self.best[lid.index()];
                // Stale if the node was re-pushed into a lower bucket (its
                // best priority no longer maps to this bucket).
                if prio != u32::MAX && (prio / self.delta) as usize == self.current {
                    self.best[lid.index()] = u32::MAX;
                    return Some((lid, prio));
                }
            }
            self.current += 1;
        }
        None
    }

    /// Whether any work is pending.
    pub fn is_empty(&self) -> bool {
        self.buckets[self.current.min(self.buckets.len())..]
            .iter()
            .all(Vec::is_empty)
    }
}

/// Prioritized `for_each`: drains work in ascending priority order (bucket
/// granularity `delta`), letting the operator push follow-up work with
/// priorities. Returns the number of operator applications.
///
/// # Examples
///
/// ```
/// use gluon_engines::galois::for_each_prioritized;
/// use gluon_graph::Lid;
///
/// // Drain in priority order: 5 before 40.
/// let mut seen = Vec::new();
/// for_each_prioritized(4, 10, [(Lid(0), 40), (Lid(1), 5)], |lid, prio, _| {
///     seen.push((lid.0, prio));
/// });
/// assert_eq!(seen, vec![(1, 5), (0, 40)]);
/// ```
pub fn for_each_prioritized(
    capacity: u32,
    delta: u32,
    init: impl IntoIterator<Item = (Lid, u32)>,
    mut op: impl FnMut(Lid, u32, &mut DeltaWorklist),
) -> u64 {
    let mut wl = DeltaWorklist::new(capacity, delta);
    for (lid, prio) in init {
        wl.push(lid, prio);
    }
    let mut applied = 0u64;
    while let Some((lid, prio)) = wl.pop() {
        op(lid, prio, &mut wl);
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::gen;
    use gluon_partition::{partition_all, Policy};

    #[test]
    fn worklist_deduplicates_pending_entries() {
        let mut wl = Worklist::new(10);
        wl.push(Lid(3));
        wl.push(Lid(3));
        assert_eq!(wl.len(), 1);
        assert_eq!(wl.pop(), Some(Lid(3)));
        // After popping, the node may be enqueued again.
        wl.push(Lid(3));
        assert_eq!(wl.len(), 1);
    }

    #[test]
    fn for_each_reaches_quiescence_on_sssp() {
        // Asynchronous sssp on a single-host partition: one for_each call
        // relaxes everything (no rounds needed).
        let g = gluon_graph::with_random_weights(&gen::rmat(7, 6, Default::default(), 4), 4, 7);
        let mut parts = partition_all(&g, 1, Policy::Oec);
        let lg = parts.remove(0);
        let n = lg.num_proxies();
        let mut dist = vec![u32::MAX; n as usize];
        dist[0] = 0;
        for_each(n, [Lid(0)], |v, wl| {
            let dv = dist[v.index()];
            for e in lg.out_edges(v) {
                let nd = dv.saturating_add(e.weight);
                if nd < dist[e.dst.index()] {
                    dist[e.dst.index()] = nd;
                    wl.push(e.dst);
                }
            }
        });
        // Triangle inequality holds at fixpoint.
        for v in lg.proxies() {
            if dist[v.index()] == u32::MAX {
                continue;
            }
            for e in lg.out_edges(v) {
                assert!(dist[e.dst.index()] <= dist[v.index()].saturating_add(e.weight));
            }
        }
    }

    #[test]
    fn do_all_visits_every_item_once() {
        let mut seen = Vec::new();
        let n = do_all((0..5).map(Lid), |l| seen.push(l.0));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delta_worklist_orders_by_bucket() {
        let mut wl = DeltaWorklist::new(10, 4);
        wl.push(Lid(1), 9);
        wl.push(Lid(2), 0);
        wl.push(Lid(3), 5);
        assert_eq!(wl.pop(), Some((Lid(2), 0)));
        assert_eq!(wl.pop(), Some((Lid(3), 5)));
        assert_eq!(wl.pop(), Some((Lid(1), 9)));
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn delta_worklist_repush_with_better_priority_wins() {
        let mut wl = DeltaWorklist::new(4, 2);
        wl.push(Lid(0), 11);
        wl.push(Lid(0), 3); // improvement: the stale bucket-5 entry is skipped
        assert_eq!(wl.pop(), Some((Lid(0), 3)));
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn delta_worklist_ignores_worse_repush() {
        let mut wl = DeltaWorklist::new(4, 2);
        wl.push(Lid(0), 3);
        wl.push(Lid(0), 11);
        assert_eq!(wl.pop(), Some((Lid(0), 3)));
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn delta_stepping_sssp_matches_dijkstra_order_free_result() {
        let g = gluon_graph::with_random_weights(&gen::rmat(7, 6, Default::default(), 44), 9, 5);
        let mut parts = partition_all(&g, 1, Policy::Oec);
        let lg = parts.remove(0);
        let n = lg.num_proxies();
        let mut dist = vec![u32::MAX; n as usize];
        dist[0] = 0;
        let applied = for_each_prioritized(n, 4, [(Lid(0), 0)], |v, prio, wl| {
            if prio > dist[v.index()] {
                return; // stale by the time it drained
            }
            for e in lg.out_edges(v) {
                let nd = dist[v.index()].saturating_add(e.weight);
                if nd < dist[e.dst.index()] {
                    dist[e.dst.index()] = nd;
                    wl.push(e.dst, nd);
                }
            }
        });
        // Compare against plain chaotic relaxation.
        let mut dist2 = vec![u32::MAX; n as usize];
        dist2[0] = 0;
        let applied_fifo = for_each(n, [Lid(0)], |v, wl| {
            for e in lg.out_edges(v) {
                let nd = dist2[v.index()].saturating_add(e.weight);
                if nd < dist2[e.dst.index()] {
                    dist2[e.dst.index()] = nd;
                    wl.push(e.dst);
                }
            }
        });
        assert_eq!(dist, dist2);
        // Prioritized scheduling should not do more work than FIFO.
        assert!(applied <= applied_fifo + 5, "{applied} vs {applied_fifo}");
    }

    #[test]
    fn do_all_chunked_sweeps_reach_the_fifo_fixpoint_at_any_thread_count() {
        // Deterministic bulk sub-rounds (sweep -> ordered apply -> repeat)
        // must land on the same labels as FIFO chaotic relaxation.
        let g = gluon_graph::with_random_weights(&gen::rmat(7, 6, Default::default(), 4), 4, 7);
        let mut parts = partition_all(&g, 1, Policy::Oec);
        let lg = parts.remove(0);
        let n = lg.num_proxies();
        let mut fifo = vec![u32::MAX; n as usize];
        fifo[0] = 0;
        for_each(n, [Lid(0)], |v, wl| {
            let dv = fifo[v.index()];
            for e in lg.out_edges(v) {
                let nd = dv.saturating_add(e.weight);
                if nd < fifo[e.dst.index()] {
                    fifo[e.dst.index()] = nd;
                    wl.push(e.dst);
                }
            }
        });
        for threads in [1, 2, 5, 8] {
            let pool = Pool::new(threads);
            let mut dist = vec![u32::MAX; n as usize];
            dist[0] = 0;
            let mut frontier = vec![Lid(0)];
            while !frontier.is_empty() {
                let chunks = do_all_chunked(
                    &pool,
                    &frontier,
                    |v| u64::from(lg.out_degree(v)),
                    |chunk| {
                        let mut out = Vec::new();
                        for &v in chunk {
                            let dv = dist[v.index()];
                            for e in lg.out_edges(v) {
                                let nd = dv.saturating_add(e.weight);
                                if nd < dist[e.dst.index()] {
                                    out.push((e.dst, nd));
                                }
                            }
                        }
                        out
                    },
                );
                let mut next = Vec::new();
                let mut queued = DenseBitset::new(n);
                for chunk in chunks {
                    for (dst, nd) in chunk {
                        if nd < dist[dst.index()] {
                            dist[dst.index()] = nd;
                            if !queued.test(dst) {
                                queued.set(dst);
                                next.push(dst);
                            }
                        }
                    }
                }
                frontier = next;
            }
            assert_eq!(dist, fifo, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_with_no_seeds_does_nothing() {
        let applied = for_each(4, [], |_, _| panic!("no work expected"));
        assert_eq!(applied, 0);
    }
}
