//! Shared-memory compute engines pluggable into the Gluon substrate.
//!
//! The paper's thesis is that the computation engine and the communication
//! substrate can be decoupled: any shared-memory vertex-programming system
//! can run each host's partition, with Gluon reconciling proxies between
//! rounds. This crate provides Rust renditions of the three engines the
//! paper plugs in:
//!
//! * [`ligra`] — frontier-based `edgeMap`/`vertexMap` with direction
//!   optimization (→ **D-Ligra**);
//! * [`galois`] — asynchronous worklist `for_each`/`do_all` with
//!   within-round chaotic relaxation (→ **D-Galois**);
//! * [`irgl`] — bulk-synchronous GPU-style kernels with bulk extract/set
//!   (→ **D-IrGL**).
//!
//! All three operate on one host's [`gluon_partition::LocalGraph`] and know
//! nothing about other hosts — exactly the property (§2.2's invariant (b))
//! that lets Gluon drive them unmodified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod galois;
pub mod irgl;
pub mod ligra;

pub use galois::{do_all, for_each, for_each_prioritized, DeltaWorklist, Worklist};
pub use irgl::{bulk_extract, bulk_set, DeviceModel, DeviceStats, IrglEngine, KernelOutput};
pub use ligra::{edge_map, vertex_map, Direction, EdgeOp, VertexSubset};
