//! Deterministic intra-host parallel runtime.
//!
//! The paper's hosts are 68-core KNL nodes and GPUs: every engine loop and
//! every sync micro-stage runs *parallel* inside a host. This crate supplies
//! the worker pool the simulated hosts use for that second level of
//! parallelism — with one non-negotiable contract:
//!
//! > **Determinism.** Every pool operation produces results bit-identical
//! > to the sequential execution, at any thread count.
//!
//! Three mechanisms enforce it:
//!
//! 1. **Fixed chunk boundaries.** Index ranges are split into fixed-width
//!    chunks whose width depends only on the range length (64-aligned,
//!    at most [`CHUNK`] elements) — never on the thread count — so the
//!    unit of scheduling never depends on parallelism.
//! 2. **Deterministic assignment.** Chunks are dealt to workers by a
//!    deterministic longest-processing-time greedy on their declared
//!    weights (ties broken by chunk index); no work stealing, no racing
//!    for chunks. Assignment cannot affect results — only the critical
//!    path — because of mechanism 3.
//! 3. **In-order combination.** Workers only *produce* per-chunk results
//!    from immutable shared state; the pool hands them back in ascending
//!    chunk order and callers fold/apply them sequentially, so floating
//!    point accumulation order matches the sequential loop exactly.
//!
//! The pool also meters work: each metered call records the *sequential*
//! work (sum of chunk weights) and the *critical-path* work (the largest
//! per-worker share under the deterministic assignment). Their ratio is the
//! **measured** speedup of that call — it reflects the actual chunk
//! imbalance of the workload, not an assumed ideal — and feeds the cost
//! model's `cores_per_host` projection. This matters because the simulated
//! cluster shares physical cores between hosts, so wall-clock cannot show
//! intra-host scaling; the critical path under the real assignment can.
//!
//! Threads are crossbeam-style scoped threads, spawned per call: pool
//! lifetime management would buy little here (the chunked loops dominate),
//! and scoped spawning keeps the closures free to borrow the caller's
//! stack. For workloads that must not allocate at all (the sync arena's
//! steady-state guarantee), [`Pool::inline`] builds a pool that keeps the
//! configured thread count for scheduling and metering — chunk widths,
//! assignments, and the critical-path meter are exactly those of the
//! spawning pool — but executes every bucket on the calling thread, so no
//! spawn-time allocations (closure boxes, join handles) occur. Results are
//! bit-identical either way; only wall-clock parallelism differs.
//!
//! # Examples
//!
//! ```
//! use gluon_exec::Pool;
//!
//! let data: Vec<u64> = (0..10_000).collect();
//! let pool = Pool::new(4);
//! // Per-chunk partial sums, combined in chunk order.
//! let total = pool.reduce(data.len(), 0u64, |r| data[r].iter().sum(), |a, b| a + b);
//! assert_eq!(total, data.iter().sum::<u64>());
//! // Bit-identical to any other thread count.
//! assert_eq!(
//!     total,
//!     Pool::sequential().reduce(data.len(), 0u64, |r| data[r].iter().sum(), |a, b| a + b)
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gluon_metrics::ExecMetrics;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Maximum chunk width (elements per chunk) for all chunked operations.
///
/// A multiple of 64 so chunk boundaries align with `DenseBitset` words, and
/// small enough that skewed graphs still split into many chunks per host.
/// The actual width of a given call is derived from the range length alone
/// (see [`chunk_width`]); widths are part of the determinism contract: they
/// must never depend on the thread count.
pub const CHUNK: usize = 512;

/// Minimum chunk width: one `DenseBitset` word.
const MIN_CHUNK: usize = 64;

/// The chunk width used for a range of `len` elements: the largest
/// 64-aligned width in `[64, CHUNK]` that still yields ~64+ chunks.
///
/// Depending only on `len` (and never on the thread count) keeps chunk
/// boundaries — and therefore combination order — identical across thread
/// counts; shrinking the width on small ranges keeps skewed weight
/// distributions (one hub-heavy chunk) from swallowing the whole critical
/// path.
pub fn chunk_width(len: usize) -> usize {
    ((len / MIN_CHUNK) / MIN_CHUNK * MIN_CHUNK).clamp(MIN_CHUNK, CHUNK)
}

/// Work metered by one pool (accumulated across calls until drained).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WorkSplit {
    /// Total work units (sum over chunks of their weights) — what a
    /// sequential execution performs.
    pub seq: u64,
    /// Critical-path work units: the largest per-worker share under the
    /// deterministic weight-balanced assignment. Equals `seq` when the
    /// pool is sequential.
    pub crit: u64,
}

impl WorkSplit {
    fn add(&mut self, other: WorkSplit) {
        self.seq += other.seq;
        self.crit += other.crit;
    }

    /// Measured speedup of the metered work: `seq / crit` (1.0 when no
    /// work was metered).
    pub fn speedup(&self) -> f64 {
        if self.crit == 0 {
            1.0
        } else {
            self.seq as f64 / self.crit as f64
        }
    }
}

/// A deterministic worker pool for one simulated host.
///
/// Cloning shares the meter (clones meter into the same accumulator), so a
/// context and the engines it drives can hold the same pool.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
    spawn: bool,
    meter: Arc<Mutex<WorkSplit>>,
    metrics: ExecMetrics,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::sequential()
    }
}

impl Pool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            spawn: true,
            meter: Arc::new(Mutex::new(WorkSplit::default())),
            metrics: ExecMetrics::disabled(),
        }
    }

    /// Publishes every metered operation into `metrics` (in addition to
    /// the drainable meter). Shared across clones of this pool.
    #[must_use]
    pub fn with_metrics(mut self, metrics: ExecMetrics) -> Pool {
        self.metrics = metrics;
        self
    }

    /// A pool that schedules and meters as if it had `threads` workers —
    /// identical chunk widths, identical deterministic assignment,
    /// identical critical-path accounting — but runs every bucket on the
    /// calling thread instead of spawning. Scoped thread spawning
    /// allocates (closure boxes, join state); an inline pool performs no
    /// allocations of its own, which is what the allocation-metering
    /// guard measures against.
    pub fn inline(threads: usize) -> Pool {
        Pool {
            spawn: false,
            ..Pool::new(threads)
        }
    }

    /// The single-threaded pool: every operation runs inline.
    pub fn sequential() -> Pool {
        Pool::new(1)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether more than one worker is configured.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Whether this pool actually spawns OS threads (false for
    /// [`Pool::inline`] pools).
    pub fn spawns(&self) -> bool {
        self.spawn
    }

    /// Returns and resets the work metered since the last drain.
    pub fn drain_work(&self) -> WorkSplit {
        std::mem::take(&mut self.meter.lock().expect("meter poisoned"))
    }

    /// Reads the work metered since the last drain, without resetting.
    pub fn metered_work(&self) -> WorkSplit {
        *self.meter.lock().expect("meter poisoned")
    }

    fn record(&self, split: WorkSplit) {
        self.meter.lock().expect("meter poisoned").add(split);
        self.metrics.on_work(split.seq, split.crit);
    }

    /// The fixed chunk ranges covering `0..len`.
    fn chunk_ranges(len: usize) -> impl Iterator<Item = Range<usize>> {
        let width = chunk_width(len);
        (0..len.div_ceil(width)).map(move |i| i * width..((i + 1) * width).min(len))
    }

    /// Deals chunks to workers: longest-processing-time greedy over the
    /// declared chunk weights, ties broken by worker load, then bucket
    /// size, then worker index — fully deterministic. Meters the sequential
    /// total and the resulting critical path (the heaviest worker share).
    ///
    /// The assignment only decides *who computes* each chunk; results are
    /// recombined by chunk index, so this cannot affect what is computed.
    fn assign(&self, weights: &[u64]) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
        let mut buckets: Vec<Vec<usize>> = (0..self.threads).map(|_| Vec::new()).collect();
        let mut loads = vec![0u64; self.threads];
        for i in order {
            let w = (0..self.threads)
                .min_by_key(|&w| (loads[w], buckets[w].len(), w))
                .expect("at least one worker");
            loads[w] += weights[i];
            buckets[w].push(i);
        }
        self.record(WorkSplit {
            seq: weights.iter().sum(),
            crit: loads.iter().copied().max().unwrap_or(0),
        });
        buckets
    }

    /// Chunked parallel map with metered weights: applies `f` to each fixed
    /// chunk of `0..len` and returns the results in ascending chunk order.
    ///
    /// `weight(range)` is the work-unit cost of a chunk (e.g. the out-degree
    /// sum of its vertices); the pool meters the sequential total and the
    /// critical path of the weight-balanced assignment. `f` must read only
    /// shared immutable state — the `Fn + Sync` bounds enforce this — which
    /// is what makes the result independent of the thread count.
    pub fn map_chunks_weighted<R: Send>(
        &self,
        len: usize,
        weight: impl Fn(Range<usize>) -> u64 + Sync,
        f: impl Fn(Range<usize>) -> R + Sync,
    ) -> Vec<R> {
        let num_chunks = len.div_ceil(chunk_width(len));
        let weights: Vec<u64> = Self::chunk_ranges(len).map(weight).collect();
        let buckets = self.assign(&weights);
        if !self.spawn || !self.is_parallel() || num_chunks <= 1 {
            return Self::chunk_ranges(len).map(f).collect();
        }
        let width = chunk_width(len);
        let f = &f;
        let run = move |bucket: &[usize]| {
            bucket
                .iter()
                .map(|&i| (i, f(i * width..((i + 1) * width).min(len))))
                .collect::<Vec<(usize, R)>>()
        };
        let mut per_worker: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = buckets[1..]
                .iter()
                .map(|bucket| s.spawn(move || run(bucket)))
                .collect();
            let mine = run(&buckets[0]);
            let mut all = vec![mine];
            all.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked")),
            );
            all
        });
        // Reassemble in ascending chunk order (in-order combination).
        let mut out: Vec<Option<R>> = (0..num_chunks).map(|_| None).collect();
        for bucket in &mut per_worker {
            for (i, r) in bucket.drain(..) {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|r| r.expect("chunk covered")).collect()
    }

    /// As [`Pool::map_chunks_weighted`] with each chunk weighted by its
    /// element count.
    pub fn map_chunks<R: Send>(&self, len: usize, f: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
        self.map_chunks_weighted(len, |r| r.len() as u64, f)
    }

    /// Chunked parallel reduction: maps each fixed chunk with `map`, then
    /// folds the per-chunk results **in ascending chunk order** with
    /// `combine` starting from `identity` — the in-order combination that
    /// keeps floating-point reductions bit-identical to the sequential
    /// loop.
    pub fn reduce<R: Send>(
        &self,
        len: usize,
        identity: R,
        map: impl Fn(Range<usize>) -> R + Sync,
        mut combine: impl FnMut(R, R) -> R,
    ) -> R {
        self.map_chunks(len, map)
            .into_iter()
            .fold(identity, &mut combine)
    }

    /// Chunked parallel mutation: splits `data` into fixed chunks, runs
    /// `f(chunk_start, chunk)` on each — workers own **disjoint** slices,
    /// so no write races are possible — and returns the per-chunk results
    /// in ascending chunk order.
    ///
    /// `weight` meters each chunk by its range within `data` (e.g. in-degree
    /// sums for a pull kernel writing per-destination slots).
    pub fn map_chunks_mut<T: Send, R: Send>(
        &self,
        data: &mut [T],
        weight: impl Fn(Range<usize>) -> u64 + Sync,
        f: impl Fn(usize, &mut [T]) -> R + Sync,
    ) -> Vec<R> {
        let len = data.len();
        let width = chunk_width(len);
        let num_chunks = len.div_ceil(width);
        let weights: Vec<u64> = Self::chunk_ranges(len).map(weight).collect();
        let buckets = self.assign(&weights);
        if !self.spawn || !self.is_parallel() || num_chunks <= 1 {
            return data
                .chunks_mut(width)
                .enumerate()
                .map(|(i, c)| f(i * width, c))
                .collect();
        }
        let mut owner = vec![0usize; num_chunks];
        for (w, bucket) in buckets.iter().enumerate() {
            for &i in bucket {
                owner[i] = w;
            }
        }
        let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
            (0..self.threads).map(|_| Vec::new()).collect();
        for (i, chunk) in data.chunks_mut(width).enumerate() {
            per_worker[owner[i]].push((i, chunk));
        }
        let f = &f;
        let mut results: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|s| {
            let mut buckets = per_worker.into_iter();
            let mine = buckets.next().expect("at least one worker");
            let handles: Vec<_> = buckets
                .map(|work| {
                    s.spawn(move || {
                        work.into_iter()
                            .map(|(i, c)| (i, f(i * width, c)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let own: Vec<(usize, R)> = mine
                .into_iter()
                .map(|(i, c)| (i, f(i * width, c)))
                .collect();
            let mut all = vec![own];
            all.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked")),
            );
            all
        });
        let mut out: Vec<Option<R>> = (0..num_chunks).map(|_| None).collect();
        for bucket in &mut results {
            for (i, r) in bucket.drain(..) {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|r| r.expect("chunk covered")).collect()
    }

    /// One task per index `0..n`, results in index order — for small fixed
    /// fan-outs like per-peer extract/encode in the sync hot path. Not
    /// metered (sync work is accounted as communication, not compute).
    pub fn map_per<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        if !self.spawn || !self.is_parallel() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let f = &f;
        let mut per_worker: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (1..self.threads.min(n))
                .map(|w| {
                    s.spawn(move || {
                        (w..n)
                            .step_by(self.threads)
                            .map(|i| (i, f(i)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mine: Vec<(usize, R)> = (0..n).step_by(self.threads).map(|i| (i, f(i))).collect();
            let mut all = vec![mine];
            all.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked")),
            );
            all
        });
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for bucket in &mut per_worker {
            for (i, r) in bucket.drain(..) {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|r| r.expect("index covered")).collect()
    }

    /// One task per scratch slot: runs `f(i, &mut scratch[i])` for every
    /// index, handing each worker a contiguous block of slots. Unlike
    /// [`Pool::map_per`] there is no result vector — workers write their
    /// output *into* their slots — so a steady-state caller performs no
    /// allocations of its own (and an [`Pool::inline`] pool none at all).
    ///
    /// Determinism: every index writes only its own slot, so the outcome
    /// is identical to the sequential loop at any thread count and in
    /// either spawn mode. Not metered (sync work is accounted as
    /// communication, not compute).
    pub fn for_each_scratch<S: Send>(&self, scratch: &mut [S], f: impl Fn(usize, &mut S) + Sync) {
        let n = scratch.len();
        if !self.spawn || !self.is_parallel() || n <= 1 {
            for (i, s) in scratch.iter_mut().enumerate() {
                f(i, s);
            }
            return;
        }
        let t = self.threads.min(n);
        let base = n / t;
        let rem = n % t;
        let block = |b: usize| base + usize::from(b < rem);
        let f = &f;
        crossbeam::thread::scope(|s| {
            let (mine, mut rest) = scratch.split_at_mut(block(0));
            let mut start = mine.len();
            for b in 1..t {
                let (head, tail) = rest.split_at_mut(block(b));
                rest = tail;
                let head_start = start;
                start += head.len();
                s.spawn(move || {
                    for (off, slot) in head.iter_mut().enumerate() {
                        f(head_start + off, slot);
                    }
                });
            }
            for (i, slot) in mine.iter_mut().enumerate() {
                f(i, slot);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        // The per-chunk results (not just the fold) must agree across
        // thread counts: same boundaries, same order.
        let len = 3 * CHUNK + 17;
        let seq = Pool::sequential().map_chunks(len, |r| (r.start, r.end));
        for t in [2, 3, 8] {
            assert_eq!(Pool::new(t).map_chunks(len, |r| (r.start, r.end)), seq);
        }
        let width = chunk_width(len);
        assert_eq!(seq.len(), len.div_ceil(width));
        assert_eq!(*seq.last().unwrap(), ((seq.len() - 1) * width, len));
        for (i, &(start, end)) in seq.iter().enumerate() {
            assert_eq!(start, i * width);
            assert!(end <= len);
        }
    }

    #[test]
    fn chunk_width_is_aligned_and_bounded() {
        for len in [0, 1, 63, 64, 1553, 4096, 100_000, 1 << 20] {
            let w = chunk_width(len);
            assert_eq!(w % 64, 0, "len {len}: width {w} not word-aligned");
            assert!((64..=CHUNK).contains(&w), "len {len}: width {w}");
        }
        // Large ranges saturate at the maximum width; small ones split
        // finely enough that one worker cannot be handed everything.
        assert_eq!(chunk_width(1 << 20), CHUNK);
        assert_eq!(chunk_width(1553), 64);
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // Pathological float mix where re-association visibly changes the
        // result; in-order combination must keep it stable.
        let data: Vec<f64> = (0..(4 * CHUNK))
            .map(|i| {
                if i % 3 == 0 {
                    1e16
                } else {
                    1.0 + i as f64 * 1e-3
                }
            })
            .collect();
        let run = |t: usize| {
            Pool::new(t).reduce(
                data.len(),
                0.0f64,
                |r| data[r].iter().fold(0.0f64, |a, b| a + b),
                |a, b| a + b,
            )
        };
        let seq = run(1);
        for t in [2, 5, 8] {
            assert_eq!(seq.to_bits(), run(t).to_bits(), "threads = {t}");
        }
    }

    #[test]
    fn map_chunks_mut_writes_disjoint_slices() {
        let mut data = vec![0u32; 2 * CHUNK + 100];
        let touched: Vec<usize> = Pool::new(4)
            .map_chunks_mut(
                &mut data,
                |r| r.len() as u64,
                |start, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (start + i) as u32;
                    }
                    chunk.len()
                },
            )
            .into_iter()
            .collect();
        assert_eq!(touched.iter().sum::<usize>(), data.len());
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
    }

    #[test]
    fn meter_records_seq_and_critical_path() {
        let pool = Pool::new(2);
        // Two chunks with weights 10 and 30: seq 40, worker shares {10, 30}.
        let len = 2 * MIN_CHUNK;
        assert_eq!(chunk_width(len), MIN_CHUNK);
        let _ = pool.map_chunks_weighted(len, |r| if r.start == 0 { 10 } else { 30 }, |_| ());
        let w = pool.drain_work();
        assert_eq!(w, WorkSplit { seq: 40, crit: 30 });
        assert!((w.speedup() - 40.0 / 30.0).abs() < 1e-12);
        // Drained.
        assert_eq!(pool.drain_work(), WorkSplit::default());
    }

    #[test]
    fn weighted_assignment_bounds_crit_by_heaviest_chunk() {
        // Eight chunks, one hub chunk of weight 100 and seven of weight 10:
        // the greedy assignment must isolate the hub so the critical path
        // is the hub chunk, not hub + round-robin extras.
        let len = 8 * MIN_CHUNK;
        let pool = Pool::new(4);
        let _ = pool.map_chunks_weighted(len, |r| if r.start == 0 { 100 } else { 10 }, |_| ());
        let w = pool.drain_work();
        assert_eq!(
            w,
            WorkSplit {
                seq: 170,
                crit: 100
            }
        );
    }

    #[test]
    fn sequential_pool_has_crit_equal_seq() {
        let pool = Pool::sequential();
        let _ = pool.map_chunks(3 * CHUNK, |_| ());
        let w = pool.drain_work();
        assert_eq!(w.seq, w.crit);
        assert_eq!(w.seq, 3 * CHUNK as u64);
    }

    #[test]
    fn map_per_preserves_index_order() {
        for t in [1, 3, 7] {
            let out = Pool::new(t).map_per(13, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cloned_pools_share_the_meter() {
        let pool = Pool::new(2);
        let clone = pool.clone();
        let _ = clone.map_chunks(CHUNK, |_| ());
        assert_eq!(pool.metered_work().seq, CHUNK as u64);
    }

    #[test]
    fn for_each_scratch_covers_every_slot_in_place() {
        for t in [1, 3, 4, 7] {
            let mut scratch = vec![0usize; 13];
            Pool::new(t).for_each_scratch(&mut scratch, |i, s| *s = i * i);
            assert_eq!(scratch, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn inline_pool_matches_spawning_pool() {
        let data: Vec<u64> = (0..(3 * CHUNK as u64)).collect();
        let run = |pool: Pool| {
            let total = pool.reduce(data.len(), 0u64, |r| data[r].iter().sum(), |a, b| a + b);
            (total, pool.drain_work())
        };
        let (seq_total, spawned_work) = run(Pool::new(4));
        let (inline_total, inline_work) = run(Pool::inline(4));
        assert_eq!(seq_total, inline_total);
        // Same schedule, same meter: the inline pool charges the identical
        // critical path even though it never spawned.
        assert_eq!(spawned_work, inline_work);
        assert!(Pool::new(4).spawns());
        assert!(!Pool::inline(4).spawns());
        assert!(Pool::inline(4).is_parallel());

        let mut a = vec![0usize; 11];
        let mut b = vec![0usize; 11];
        Pool::new(4).for_each_scratch(&mut a, |i, s| *s = i + 1);
        Pool::inline(4).for_each_scratch(&mut b, |i, s| *s = i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_mirror_the_meter() {
        let hub = gluon_metrics::MetricsHub::new(1);
        let pool = Pool::new(2).with_metrics(ExecMetrics::register(&hub.host_registry(0)));
        let len = 2 * MIN_CHUNK;
        let _ = pool.map_chunks_weighted(len, |r| if r.start == 0 { 10 } else { 30 }, |_| ());
        let r = hub.host_registry(0);
        assert_eq!(r.counter_value("pool_parallel_ops"), 1);
        assert_eq!(r.counter_value("pool_seq_work"), 40);
        assert_eq!(r.counter_value("pool_crit_work"), 30);
        // The drainable meter is unaffected by the mirror.
        assert_eq!(pool.drain_work(), WorkSplit { seq: 40, crit: 30 });
    }

    #[test]
    fn empty_range_is_fine() {
        let pool = Pool::new(4);
        assert!(pool.map_chunks(0, |_| ()).is_empty());
        assert_eq!(pool.reduce(0, 7u32, |_| 1, |a, b| a + b), 7);
    }
}
