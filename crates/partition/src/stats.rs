//! Partition quality metrics (replication factor, balance).
//!
//! §5.2 of the paper compares policies by *replication factor* — the average
//! number of proxies per node — and reports that CVC keeps it at ~2–8 on 128
//! and 256 hosts while Gemini's edge-cut reaches ~4–25. These metrics are
//! what the Table 2 harness prints.

use crate::local::LocalGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate quality metrics of one partitioning.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Number of hosts.
    pub num_hosts: usize,
    /// |V| of the global graph.
    pub global_nodes: u32,
    /// |E| of the global graph.
    pub global_edges: u64,
    /// Total proxies across hosts.
    pub total_proxies: u64,
    /// Average proxies per node (≥ 1).
    pub replication_factor: f64,
    /// max/mean of per-host edge counts (1.0 = perfectly balanced).
    pub edge_imbalance: f64,
    /// max/mean of per-host proxy counts.
    pub proxy_imbalance: f64,
    /// Largest per-host edge count.
    pub max_host_edges: u64,
    /// Largest per-host proxy count.
    pub max_host_proxies: u64,
}

impl PartitionStats {
    /// Computes metrics over one host-set of partitions.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn of(parts: &[LocalGraph]) -> Self {
        assert!(!parts.is_empty(), "no partitions");
        let proxies: Vec<u64> = parts.iter().map(|p| u64::from(p.num_proxies())).collect();
        let edges: Vec<u64> = parts.iter().map(|p| p.num_local_edges()).collect();
        Self::from_scalars(
            parts[0].global_nodes(),
            parts[0].global_edges(),
            &proxies,
            &edges,
        )
    }

    /// Computes metrics from per-host scalars rather than the partitions
    /// themselves — what a multi-process launcher has after workers report
    /// their `num_proxies()` / `num_local_edges()` over the wire.
    ///
    /// # Panics
    ///
    /// Panics if `proxies` and `edges` differ in length or are empty.
    pub fn from_scalars(
        global_nodes: u32,
        global_edges: u64,
        proxies: &[u64],
        edges: &[u64],
    ) -> Self {
        assert!(!proxies.is_empty(), "no partitions");
        assert_eq!(proxies.len(), edges.len(), "per-host scalar length skew");
        let num_hosts = proxies.len();
        let total_proxies: u64 = proxies.iter().sum();
        let mean_edges = edges.iter().sum::<u64>() as f64 / num_hosts as f64;
        let mean_proxies = total_proxies as f64 / num_hosts as f64;
        PartitionStats {
            num_hosts,
            global_nodes,
            global_edges,
            total_proxies,
            replication_factor: total_proxies as f64 / f64::from(global_nodes.max(1)),
            edge_imbalance: edges.iter().copied().max().unwrap_or(0) as f64 / mean_edges.max(1.0),
            proxy_imbalance: proxies.iter().copied().max().unwrap_or(0) as f64
                / mean_proxies.max(1.0),
            max_host_edges: edges.iter().copied().max().unwrap_or(0),
            max_host_proxies: proxies.iter().copied().max().unwrap_or(0),
        }
    }
}

impl fmt::Display for PartitionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hosts={} rep={:.2} edge-imb={:.2} proxy-imb={:.2}",
            self.num_hosts, self.replication_factor, self.edge_imbalance, self.proxy_imbalance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::partition_all;
    use crate::policy::Policy;
    use gluon_graph::gen;

    #[test]
    fn single_host_has_replication_one() {
        let g = gen::rmat(6, 4, Default::default(), 1);
        let s = PartitionStats::of(&partition_all(&g, 1, Policy::Oec));
        assert!((s.replication_factor - 1.0).abs() < 1e-12);
        assert!((s.edge_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replication_grows_with_hosts() {
        let g = gen::rmat(8, 8, Default::default(), 2);
        let r2 = PartitionStats::of(&partition_all(&g, 2, Policy::Oec)).replication_factor;
        let r8 = PartitionStats::of(&partition_all(&g, 8, Policy::Oec)).replication_factor;
        assert!(r8 > r2, "r2={r2} r8={r8}");
    }

    #[test]
    fn cvc_replication_beats_edge_cut_on_skewed_graphs_at_scale() {
        // The §5.2 claim the paper makes against Gemini.
        let g = gen::twitter_like(4000, 16, 3);
        let hosts = 16;
        let cvc = PartitionStats::of(&partition_all(&g, hosts, Policy::Cvc)).replication_factor;
        let oec = PartitionStats::of(&partition_all(&g, hosts, Policy::Oec)).replication_factor;
        assert!(
            cvc < oec,
            "expected CVC ({cvc:.2}) below OEC ({oec:.2}) at {hosts} hosts"
        );
    }

    #[test]
    fn from_scalars_matches_of() {
        let g = gen::rmat(7, 6, Default::default(), 3);
        let parts = partition_all(&g, 4, Policy::Cvc);
        let direct = PartitionStats::of(&parts);
        let proxies: Vec<u64> = parts.iter().map(|p| u64::from(p.num_proxies())).collect();
        let edges: Vec<u64> = parts.iter().map(|p| p.num_local_edges()).collect();
        let scalar = PartitionStats::from_scalars(
            parts[0].global_nodes(),
            parts[0].global_edges(),
            &proxies,
            &edges,
        );
        assert_eq!(direct, scalar);
    }

    #[test]
    fn display_is_compact() {
        let g = gen::path(10);
        let s = PartitionStats::of(&partition_all(&g, 2, Policy::Oec));
        assert!(s.to_string().contains("hosts=2"));
    }
}
