//! Checkable statements of the paper's partitioning invariants.
//!
//! These run in tests and in debug tooling; they encode §2.2's invariants
//! (a)/(b) plus the per-policy structural invariants of §3.1 that the
//! communication optimizer exploits.

use crate::local::LocalGraph;
use crate::policy::Policy;
use std::collections::HashMap;
use std::fmt;

/// A violated partition invariant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvariantViolation(String);

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(msg: String) -> Result<(), InvariantViolation> {
    Err(InvariantViolation(msg))
}

/// Checks the invariants local to a single host's partition.
///
/// * masters-first proxy layout, both ranges gid-sorted (construction
///   contract);
/// * per-policy structural invariants: OEC mirrors have no local outgoing
///   edges, IEC mirrors no local incoming edges, CVC mirrors never both.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_local_graph(lg: &LocalGraph) -> Result<(), InvariantViolation> {
    for m in lg.masters() {
        if lg.owner_of(m) != lg.host() {
            return violation(format!("master {m} owned by {}", lg.owner_of(m)));
        }
    }
    for m in lg.mirrors() {
        if lg.owner_of(m) == lg.host() {
            return violation(format!("mirror {m} owned locally"));
        }
        match lg.policy() {
            Policy::Oec | Policy::RandomOec | Policy::Fennel => {
                if lg.has_local_out_edges(m) {
                    return violation(format!(
                        "OEC mirror {m} on host {} has outgoing edges",
                        lg.host()
                    ));
                }
            }
            Policy::Iec => {
                if lg.has_local_in_edges(m) {
                    return violation(format!(
                        "IEC mirror {m} on host {} has incoming edges",
                        lg.host()
                    ));
                }
            }
            Policy::Cvc => {
                if lg.has_local_in_edges(m) && lg.has_local_out_edges(m) {
                    return violation(format!(
                        "CVC mirror {m} on host {} has both edge directions",
                        lg.host()
                    ));
                }
            }
            Policy::Hvc => {}
        }
    }
    Ok(())
}

/// Checks the cross-host invariants over a full set of partitions:
/// every global node has exactly one master, every global edge appears on
/// exactly one host, and every proxy's recorded owner really masters it.
///
/// # Errors
///
/// Returns the first violation found.
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn check_partitions(parts: &[LocalGraph]) -> Result<(), InvariantViolation> {
    assert!(!parts.is_empty(), "no partitions to check");
    let global_nodes = parts[0].global_nodes();
    let global_edges = parts[0].global_edges();
    let mut master_host: HashMap<u32, usize> = HashMap::new();
    for p in parts {
        for m in p.masters() {
            if let Some(prev) = master_host.insert(p.gid(m).0, p.host()) {
                return violation(format!(
                    "node {} mastered by both host {prev} and host {}",
                    p.gid(m),
                    p.host()
                ));
            }
        }
    }
    if master_host.len() != global_nodes as usize {
        return violation(format!(
            "{} of {global_nodes} nodes have masters",
            master_host.len()
        ));
    }
    let mut total_edges = 0u64;
    for p in parts {
        total_edges += p.num_local_edges();
        for m in p.proxies() {
            let recorded = p.owner_of(m);
            let actual = master_host[&p.gid(m).0];
            if recorded != actual {
                return violation(format!(
                    "host {} thinks {} is mastered by {recorded}, actually {actual}",
                    p.host(),
                    p.gid(m)
                ));
            }
        }
    }
    if total_edges != global_edges {
        return violation(format!(
            "{total_edges} local edges for {global_edges} global edges"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::partition_all;
    use gluon_graph::gen;

    #[test]
    fn all_policies_pass_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::rmat(6, 4, Default::default(), seed);
            for policy in Policy::ALL {
                for hosts in [1, 2, 4, 5] {
                    let parts = partition_all(&g, hosts, policy);
                    for p in &parts {
                        check_local_graph(p).unwrap_or_else(|e| panic!("{policy} x{hosts}: {e}"));
                    }
                    check_partitions(&parts).unwrap_or_else(|e| panic!("{policy} x{hosts}: {e}"));
                }
            }
        }
    }

    #[test]
    fn passes_on_pathological_graphs() {
        for g in [
            gen::star(32),
            gen::star(32).transpose(),
            gen::path(17),
            gen::cycle(8),
            gluon_graph::Csr::empty(10),
            gen::complete(6),
        ] {
            for policy in Policy::ALL {
                let parts = partition_all(&g, 3, policy);
                for p in &parts {
                    check_local_graph(p).expect("local invariants");
                }
                check_partitions(&parts).expect("global invariants");
            }
        }
    }
}
