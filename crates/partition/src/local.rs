//! One host's partition of the distributed graph.

use crate::policy::Policy;
use gluon_graph::{Csr, Gid, HostId, Lid};
use std::collections::HashMap;

/// A local edge: destination proxy and weight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LocalEdge {
    /// Destination proxy (local id).
    pub dst: Lid,
    /// Edge weight (1 when unweighted).
    pub weight: u32,
}

/// One host's partitioned graph: a CSR over *proxies* plus the bookkeeping
/// that relates proxies to the global graph.
///
/// Invariants (checked by [`crate::invariants::check_local_graph`]):
///
/// * proxies `0..num_masters()` are masters, the rest are mirrors;
/// * both ranges are sorted by global id;
/// * every edge connects two proxies of this host (paper invariant (b));
/// * the master of every node this host owns is present even if isolated.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    host: HostId,
    num_hosts: usize,
    policy: Policy,
    global_nodes: u32,
    global_edges: u64,
    /// Local topology over Lid space (reusing the CSR layout).
    graph: Csr,
    /// Lazily built transpose for pull-style operators.
    transpose: Option<Box<Csr>>,
    /// lid -> gid.
    gids: Vec<Gid>,
    /// gid -> lid for proxies present here.
    lids: HashMap<Gid, Lid>,
    /// lid -> host owning the master proxy.
    owner: Vec<HostId>,
    num_masters: u32,
    /// lid -> has at least one local outgoing edge.
    has_out: Vec<bool>,
    /// lid -> has at least one local incoming edge.
    has_in: Vec<bool>,
}

impl LocalGraph {
    /// Assembles a local graph; used by [`crate::build`].
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree in length or ordering (masters first,
    /// each range sorted by gid).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        host: HostId,
        num_hosts: usize,
        policy: Policy,
        global_nodes: u32,
        global_edges: u64,
        graph: Csr,
        gids: Vec<Gid>,
        owner: Vec<HostId>,
        num_masters: u32,
    ) -> Self {
        assert_eq!(graph.num_nodes() as usize, gids.len(), "gids per proxy");
        assert_eq!(gids.len(), owner.len(), "owner per proxy");
        assert!(num_masters as usize <= gids.len(), "masters within range");
        assert!(
            gids[..num_masters as usize].windows(2).all(|w| w[0] < w[1]),
            "masters must be sorted by gid"
        );
        assert!(
            gids[num_masters as usize..].windows(2).all(|w| w[0] < w[1]),
            "mirrors must be sorted by gid"
        );
        assert!(
            owner[..num_masters as usize].iter().all(|&o| o == host),
            "master proxies must be owned locally"
        );
        assert!(
            owner[num_masters as usize..].iter().all(|&o| o != host),
            "mirror proxies must be owned remotely"
        );
        let lids: HashMap<Gid, Lid> = gids
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, Lid::from_index(i)))
            .collect();
        assert_eq!(lids.len(), gids.len(), "duplicate gid among proxies");
        let has_out = graph.out_degrees().iter().map(|&d| d > 0).collect();
        let has_in = graph.in_degrees().iter().map(|&d| d > 0).collect();
        LocalGraph {
            host,
            num_hosts,
            policy,
            global_nodes,
            global_edges,
            graph,
            transpose: None,
            gids,
            lids,
            owner,
            num_masters,
            has_out,
            has_in,
        }
    }

    /// This host's rank.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Number of hosts in the partitioning.
    pub fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    /// Policy that produced this partition.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// |V| of the *global* graph.
    pub fn global_nodes(&self) -> u32 {
        self.global_nodes
    }

    /// |E| of the *global* graph.
    pub fn global_edges(&self) -> u64 {
        self.global_edges
    }

    /// Number of proxies on this host (masters + mirrors).
    pub fn num_proxies(&self) -> u32 {
        self.graph.num_nodes()
    }

    /// Number of master proxies.
    pub fn num_masters(&self) -> u32 {
        self.num_masters
    }

    /// Number of mirror proxies.
    pub fn num_mirrors(&self) -> u32 {
        self.num_proxies() - self.num_masters
    }

    /// Number of edges assigned to this host.
    pub fn num_local_edges(&self) -> u64 {
        self.graph.num_edges()
    }

    /// Iterates over all proxies.
    pub fn proxies(&self) -> impl Iterator<Item = Lid> {
        (0..self.num_proxies()).map(Lid)
    }

    /// Iterates over master proxies (the contiguous prefix).
    pub fn masters(&self) -> impl Iterator<Item = Lid> {
        (0..self.num_masters).map(Lid)
    }

    /// Iterates over mirror proxies (the contiguous suffix).
    pub fn mirrors(&self) -> impl Iterator<Item = Lid> {
        (self.num_masters..self.num_proxies()).map(Lid)
    }

    /// Whether `lid` is a master proxy.
    #[inline]
    pub fn is_master(&self, lid: Lid) -> bool {
        lid.0 < self.num_masters
    }

    /// Host owning the master proxy of `lid`.
    #[inline]
    pub fn owner_of(&self, lid: Lid) -> HostId {
        self.owner[lid.index()]
    }

    /// Global id of proxy `lid`.
    #[inline]
    pub fn gid(&self, lid: Lid) -> Gid {
        self.gids[lid.index()]
    }

    /// Local id of global node `gid`, if this host has a proxy for it.
    #[inline]
    pub fn lid(&self, gid: Gid) -> Option<Lid> {
        self.lids.get(&gid).copied()
    }

    /// Whether proxy `lid` has at least one local outgoing edge.
    #[inline]
    pub fn has_local_out_edges(&self, lid: Lid) -> bool {
        self.has_out[lid.index()]
    }

    /// Whether proxy `lid` has at least one local incoming edge.
    #[inline]
    pub fn has_local_in_edges(&self, lid: Lid) -> bool {
        self.has_in[lid.index()]
    }

    /// Local out-degree of proxy `lid`.
    #[inline]
    pub fn out_degree(&self, lid: Lid) -> u32 {
        self.graph.out_degree(Gid(lid.0))
    }

    /// Iterates over local outgoing edges of proxy `lid`.
    pub fn out_edges(&self, lid: Lid) -> impl Iterator<Item = LocalEdge> + '_ {
        self.graph.out_edges(Gid(lid.0)).map(|e| LocalEdge {
            dst: Lid(e.dst.0),
            weight: e.weight,
        })
    }

    /// Iterates over local incoming edges of proxy `lid` as
    /// `(source, weight)`.
    ///
    /// # Panics
    ///
    /// Panics unless [`LocalGraph::build_transpose`] ran first.
    pub fn in_edges(&self, lid: Lid) -> impl Iterator<Item = LocalEdge> + '_ {
        let t = self
            .transpose
            .as_ref()
            .expect("call build_transpose() before using in_edges()");
        t.out_edges(Gid(lid.0)).map(|e| LocalEdge {
            dst: Lid(e.dst.0),
            weight: e.weight,
        })
    }

    /// Materializes the transposed topology so [`LocalGraph::in_edges`]
    /// works. Idempotent.
    pub fn build_transpose(&mut self) {
        if self.transpose.is_none() {
            self.transpose = Some(Box::new(self.graph.transpose()));
        }
    }

    /// Whether the transpose is already materialized.
    pub fn has_transpose(&self) -> bool {
        self.transpose.is_some()
    }

    /// The raw local topology (Lid space packed as a [`Csr`]).
    pub fn topology(&self) -> &Csr {
        &self.graph
    }

    /// Mirror proxies whose master lives on `remote`, in gid order.
    ///
    /// This list is exactly what the memoization handshake of §4.1 sends to
    /// `remote` at startup.
    pub fn mirrors_on(&self, remote: HostId) -> Vec<Lid> {
        self.mirrors()
            .filter(|&m| self.owner_of(m) == remote)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::partition_all;
    use gluon_graph::gen;

    fn sample() -> Vec<LocalGraph> {
        let g = gen::rmat(6, 4, Default::default(), 3);
        partition_all(&g, 3, Policy::Oec)
    }

    #[test]
    fn masters_precede_mirrors() {
        for lg in sample() {
            for m in lg.masters() {
                assert!(lg.is_master(m));
                assert_eq!(lg.owner_of(m), lg.host());
            }
            for m in lg.mirrors() {
                assert!(!lg.is_master(m));
                assert_ne!(lg.owner_of(m), lg.host());
            }
        }
    }

    #[test]
    fn gid_lid_round_trip() {
        for lg in sample() {
            for p in lg.proxies() {
                assert_eq!(lg.lid(lg.gid(p)), Some(p));
            }
            assert_eq!(lg.lid(Gid(u32::MAX)), None);
        }
    }

    #[test]
    fn in_edges_requires_transpose() {
        let mut parts = sample();
        let lg = &mut parts[0];
        assert!(!lg.has_transpose());
        lg.build_transpose();
        assert!(lg.has_transpose());
        // In-edge sources must themselves have the proxy as an out-target.
        for p in lg.proxies() {
            for ie in lg.in_edges(p) {
                assert!(lg.out_edges(ie.dst).any(|oe| oe.dst == p));
            }
        }
    }

    #[test]
    fn mirrors_on_partitions_the_mirror_set() {
        for lg in sample() {
            let mut total = 0;
            for h in 0..lg.num_hosts() {
                let ms = lg.mirrors_on(h);
                if h == lg.host() {
                    assert!(ms.is_empty());
                }
                assert!(ms.windows(2).all(|w| lg.gid(w[0]) < lg.gid(w[1])));
                total += ms.len();
            }
            assert_eq!(total, lg.num_mirrors() as usize);
        }
    }
}
