//! Graph partitioning for the Gluon substrate.
//!
//! Implements the four partitioning strategies of the paper's §3.1 — OEC,
//! IEC, CVC and (hybrid) UVC — as runtime-selectable [`Policy`] values,
//! along with the machinery that turns a global [`gluon_graph::Csr`] into
//! per-host [`LocalGraph`]s: proxy creation, master/mirror designation,
//! global↔local id maps, and the structural flags (`has_local_in/out_edges`)
//! that the communication optimizer consumes.
//!
//! # Examples
//!
//! ```
//! use gluon_graph::gen;
//! use gluon_partition::{partition_all, PartitionStats, Policy};
//!
//! let g = gen::rmat(8, 8, Default::default(), 42);
//! let parts = partition_all(&g, 4, Policy::Cvc);
//! let stats = PartitionStats::of(&parts);
//! assert!(stats.replication_factor >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod build;
pub mod invariants;
mod local;
mod policy;
mod stats;

pub use blocks::BlockMap;
pub use build::{local_edge_gids, partition_all, partition_on_host};
pub use invariants::{check_local_graph, check_partitions, InvariantViolation};
pub use local::{LocalEdge, LocalGraph};
pub use policy::{grid_dims, ParsePolicyError, Policy, PolicyCtx};
pub use stats::PartitionStats;
