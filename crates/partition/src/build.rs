//! Constructing [`LocalGraph`]s from a global graph and a policy.
//!
//! Two paths produce *identical* partitions:
//!
//! * [`partition_all`] — a serial convenience that materializes every host's
//!   partition at once (tests, single-process tools);
//! * [`partition_on_host`] — the distributed path of the paper (§4.1: "each
//!   host reads from disk a subset of edges assigned to it and receives from
//!   other hosts the rest"): every host scans its 1/n slice of the edge
//!   list, routes edges to their assigned hosts through an all-to-all
//!   exchange, and builds only its own partition.

use crate::local::LocalGraph;
use crate::policy::{Policy, PolicyCtx};
use bytes::{BufMut, Bytes, BytesMut};
use gluon_graph::{Csr, Gid, GraphBuilder};
use gluon_net::{Communicator, Transport};

/// Partitions `graph` for `num_hosts` hosts, producing all partitions at
/// once (rank order).
///
/// # Examples
///
/// ```
/// use gluon_graph::gen;
/// use gluon_partition::{partition_all, Policy};
///
/// let g = gen::rmat(6, 4, Default::default(), 1);
/// let parts = partition_all(&g, 4, Policy::Cvc);
/// let local_edges: u64 = parts.iter().map(|p| p.num_local_edges()).sum();
/// assert_eq!(local_edges, g.num_edges());
/// ```
///
/// # Panics
///
/// Panics if `num_hosts` is zero.
pub fn partition_all(graph: &Csr, num_hosts: usize, policy: Policy) -> Vec<LocalGraph> {
    let ctx = PolicyCtx::new(policy, graph, num_hosts);
    let mut buckets: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); num_hosts];
    for (src, e) in graph.edges() {
        buckets[ctx.host_of_edge(src, e.dst)].push((src.0, e.dst.0, e.weight));
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(host, edges)| build_local(host, &ctx, graph, edges))
        .collect()
}

/// Distributed partitioning: call on every host of a cluster; each host
/// returns its own [`LocalGraph`].
///
/// `graph` models the cluster's shared filesystem — every host can see it,
/// but each host only *scans* its 1/n contiguous slice of the edge list and
/// learns the rest of its edges from the all-to-all exchange, exactly like
/// the disk-plus-network construction the paper describes. The produced
/// partition is bit-identical to the corresponding entry of
/// [`partition_all`].
pub fn partition_on_host<T: Transport + ?Sized>(
    graph: &Csr,
    policy: Policy,
    comm: &Communicator<'_, T>,
) -> LocalGraph {
    let num_hosts = comm.world_size();
    let rank = comm.rank();
    let ctx = PolicyCtx::new(policy, graph, num_hosts);
    let m = graph.num_edges();
    let lo = m * rank as u64 / num_hosts as u64;
    let hi = m * (rank as u64 + 1) / num_hosts as u64;

    let mut outgoing: Vec<BytesMut> = (0..num_hosts).map(|_| BytesMut::new()).collect();
    let mut own: Vec<(u32, u32, u32)> = Vec::new();
    for (src, e) in edge_slice(graph, lo, hi) {
        let host = ctx.host_of_edge(src, e.dst);
        if host == rank {
            own.push((src.0, e.dst.0, e.weight));
        } else {
            let buf = &mut outgoing[host];
            buf.put_u32_le(src.0);
            buf.put_u32_le(e.dst.0);
            buf.put_u32_le(e.weight);
        }
    }
    let incoming = comm.all_to_all(outgoing.into_iter().map(BytesMut::freeze).collect());
    for payload in incoming {
        decode_edges(&payload, &mut own);
    }
    build_local(rank, &ctx, graph, own)
}

/// Iterates over edges `lo..hi` (by CSR edge index) of `graph`.
fn edge_slice(
    graph: &Csr,
    lo: u64,
    hi: u64,
) -> impl Iterator<Item = (Gid, gluon_graph::Edge)> + '_ {
    let offsets = graph.offsets();
    // First node whose edge range extends past `lo`.
    let start_node = offsets.partition_point(|&o| o <= lo).saturating_sub(1);
    (start_node as u32..graph.num_nodes())
        .flat_map(move |v| {
            let base = offsets[v as usize];
            graph
                .out_edges(Gid(v))
                .enumerate()
                .map(move |(i, e)| (base + i as u64, Gid(v), e))
        })
        .skip_while(move |&(idx, _, _)| idx < lo)
        .take_while(move |&(idx, _, _)| idx < hi)
        .map(|(_, src, e)| (src, e))
}

fn decode_edges(payload: &Bytes, out: &mut Vec<(u32, u32, u32)>) {
    assert_eq!(
        payload.len() % 12,
        0,
        "edge payload must be 12-byte triples"
    );
    for chunk in payload.chunks_exact(12) {
        let src = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        let w = u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
        out.push((src, dst, w));
    }
}

/// Builds host `host`'s [`LocalGraph`] from the edges assigned to it.
fn build_local(
    host: usize,
    ctx: &PolicyCtx,
    graph: &Csr,
    edges: Vec<(u32, u32, u32)>,
) -> LocalGraph {
    let num_hosts = ctx.num_hosts();
    // Masters: every node this host owns, sorted by gid — present even when
    // isolated, so reductions and initial values always have a home.
    let mut master_gids: Vec<u32> = (0..graph.num_nodes())
        .filter(|&v| ctx.master_of(Gid(v)) == host)
        .collect();
    master_gids.sort_unstable();
    // Mirrors: endpoints of local edges whose master is remote.
    let mut mirror_gids: Vec<u32> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for &(u, v, _) in &edges {
            for g in [u, v] {
                if ctx.master_of(Gid(g)) != host && seen.insert(g) {
                    mirror_gids.push(g);
                }
            }
        }
    }
    mirror_gids.sort_unstable();

    let num_masters = master_gids.len() as u32;
    let num_proxies = master_gids.len() + mirror_gids.len();
    let mut gids = Vec::with_capacity(num_proxies);
    let mut owner = Vec::with_capacity(num_proxies);
    for &g in &master_gids {
        gids.push(Gid(g));
        owner.push(host);
    }
    for &g in &mirror_gids {
        gids.push(Gid(g));
        owner.push(ctx.master_of(Gid(g)));
    }
    let lid_of = |g: u32| -> u32 {
        match master_gids.binary_search(&g) {
            Ok(i) => i as u32,
            Err(_) => {
                let i = mirror_gids
                    .binary_search(&g)
                    .expect("endpoint of a local edge has a proxy");
                (master_gids.len() + i) as u32
            }
        }
    };
    let mut builder = GraphBuilder::new(num_proxies as u32);
    for (u, v, w) in edges {
        builder.add_edge(Gid(lid_of(u)), Gid(lid_of(v)), w);
    }
    let local_csr = builder.build();
    LocalGraph::from_parts(
        host,
        num_hosts,
        ctx.policy(),
        graph.num_nodes(),
        graph.num_edges(),
        local_csr,
        gids,
        owner,
        num_masters,
    )
}

/// Translates a local edge target back to global space (test helper).
pub fn local_edge_gids(lg: &LocalGraph) -> Vec<(Gid, Gid, u32)> {
    let mut out = Vec::with_capacity(lg.num_local_edges() as usize);
    for p in lg.proxies() {
        for e in lg.out_edges(p) {
            out.push((lg.gid(p), lg.gid(e.dst), e.weight));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::gen;
    use gluon_net::run_cluster;

    #[test]
    fn every_edge_lands_on_exactly_one_host() {
        let g = gen::with_random_weights(&gen::rmat(6, 4, Default::default(), 7), 9, 1);
        for policy in Policy::ALL {
            let parts = partition_all(&g, 3, policy);
            let mut all: Vec<_> = parts
                .iter()
                .flat_map(local_edge_gids)
                .map(|(s, d, w)| (s.0, d.0, w))
                .collect();
            all.sort_unstable();
            let mut orig: Vec<_> = g.edges().map(|(s, e)| (s.0, e.dst.0, e.weight)).collect();
            orig.sort_unstable();
            assert_eq!(all, orig, "policy {policy}");
        }
    }

    #[test]
    fn every_node_has_exactly_one_master() {
        let g = gen::rmat(6, 4, Default::default(), 2);
        for policy in Policy::ALL {
            let parts = partition_all(&g, 4, policy);
            let mut owners = vec![0u32; g.num_nodes() as usize];
            for p in &parts {
                for m in p.masters() {
                    owners[p.gid(m).index()] += 1;
                }
            }
            assert!(owners.iter().all(|&c| c == 1), "policy {policy}");
        }
    }

    #[test]
    fn single_host_partition_has_no_mirrors() {
        let g = gen::rmat(5, 4, Default::default(), 4);
        for policy in Policy::ALL {
            let parts = partition_all(&g, 1, policy);
            assert_eq!(parts.len(), 1);
            assert_eq!(parts[0].num_mirrors(), 0);
            assert_eq!(parts[0].num_local_edges(), g.num_edges());
        }
    }

    #[test]
    fn distributed_equals_serial() {
        let g = gen::with_random_weights(&gen::rmat(6, 4, Default::default(), 11), 5, 2);
        for policy in [Policy::Oec, Policy::Iec, Policy::Cvc, Policy::Hvc] {
            let serial = partition_all(&g, 4, policy);
            let distributed = run_cluster(4, |ep| {
                let comm = Communicator::new(ep);
                partition_on_host(&g, policy, &comm)
            });
            for (s, d) in serial.iter().zip(&distributed) {
                assert_eq!(s.num_masters(), d.num_masters(), "policy {policy}");
                assert_eq!(s.num_mirrors(), d.num_mirrors(), "policy {policy}");
                let mut se = local_edge_gids(s);
                let mut de = local_edge_gids(d);
                se.sort_unstable();
                de.sort_unstable();
                assert_eq!(se, de, "policy {policy}");
            }
        }
    }

    #[test]
    fn edge_slice_covers_all_edges_without_overlap() {
        let g = gen::rmat(6, 4, Default::default(), 5);
        let m = g.num_edges();
        for n in [1u64, 2, 3, 7] {
            let mut seen = 0u64;
            for h in 0..n {
                let lo = m * h / n;
                let hi = m * (h + 1) / n;
                seen += edge_slice(&g, lo, hi).count() as u64;
            }
            assert_eq!(seen, m, "hosts {n}");
        }
    }

    #[test]
    fn edge_slice_handles_isolated_leading_nodes() {
        // Node 0..9 isolated, edges start at node 10.
        let mut b = GraphBuilder::new(20);
        b.add_edge(Gid(10), Gid(1), 1);
        b.add_edge(Gid(15), Gid(2), 1);
        let g = b.build();
        let all: Vec<_> = edge_slice(&g, 0, 2).map(|(s, e)| (s.0, e.dst.0)).collect();
        assert_eq!(all, vec![(10, 1), (15, 2)]);
        let second: Vec<_> = edge_slice(&g, 1, 2).map(|(s, e)| (s.0, e.dst.0)).collect();
        assert_eq!(second, vec![(15, 2)]);
    }

    #[test]
    fn oec_mirrors_have_no_outgoing_edges() {
        // The structural invariant §2.3 relies on.
        let g = gen::rmat(6, 4, Default::default(), 6);
        for p in partition_all(&g, 4, Policy::Oec) {
            for m in p.mirrors() {
                assert!(!p.has_local_out_edges(m), "host {} {m}", p.host());
            }
        }
    }

    #[test]
    fn iec_mirrors_have_no_incoming_edges() {
        let g = gen::rmat(6, 4, Default::default(), 6);
        for p in partition_all(&g, 4, Policy::Iec) {
            for m in p.mirrors() {
                assert!(!p.has_local_in_edges(m), "host {} {m}", p.host());
            }
        }
    }

    #[test]
    fn cvc_mirrors_never_have_both_edge_directions() {
        let g = gen::rmat(7, 4, Default::default(), 8);
        for p in partition_all(&g, 4, Policy::Cvc) {
            for m in p.mirrors() {
                assert!(
                    !(p.has_local_in_edges(m) && p.has_local_out_edges(m)),
                    "host {} {m} has both directions",
                    p.host()
                );
            }
        }
    }
}
