//! Partitioning policies: the paper's four strategies of §3.1 plus a
//! hashed edge-cut and a Fennel-style streaming partitioner.
//!
//! A policy answers two questions deterministically on every host:
//! *who masters node N* ([`PolicyCtx::master_of`]) and *which host gets edge
//! (U, V)* ([`PolicyCtx::host_of_edge`]). Everything else — proxy creation,
//! mirror designation, local CSR construction — follows mechanically from
//! those two answers (see [`crate::build`]).

use crate::blocks::BlockMap;
use gluon_graph::{Csr, Gid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The partitioning strategies implemented by Gluon (paper §3.1 / §5.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Policy {
    /// Outgoing Edge-Cut: all outgoing edges of a node live with its master;
    /// incoming edges are partitioned. Chunk-based blocks balance out-edges.
    Oec,
    /// Incoming Edge-Cut: all incoming edges live with the master; outgoing
    /// edges are partitioned. Chunk-based blocks balance in-edges.
    Iec,
    /// Cartesian Vertex-Cut: hosts form a 2D grid; edge (U, V) goes to the
    /// host at (row of U's master, column of V's master).
    Cvc,
    /// Hybrid Vertex-Cut (the paper's UVC instance, after PowerLyra): edges
    /// into low in-degree nodes are placed by destination, edges into high
    /// in-degree nodes by source, splitting the hubs' in-edges.
    Hvc,
    /// Random (hashed) outgoing edge-cut: masters are scattered by a hash
    /// rather than chunks. The policy Gunrock-style multi-GPU systems use.
    RandomOec,
    /// Fennel streaming partitioning (Tsourakakis et al., WSDM'14 — one of
    /// the policy families the paper's §6 surveys): nodes are streamed in
    /// id order and greedily placed on the host with the most already-placed
    /// neighbors, minus a load penalty. Edges follow the source's master
    /// (OEC-class structural invariants).
    Fennel,
}

impl Policy {
    /// All policies, for sweeps.
    pub const ALL: [Policy; 6] = [
        Policy::Oec,
        Policy::Iec,
        Policy::Cvc,
        Policy::Hvc,
        Policy::RandomOec,
        Policy::Fennel,
    ];

    /// Short lowercase name used in harness output (`oec`, `iec`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Oec => "oec",
            Policy::Iec => "iec",
            Policy::Cvc => "cvc",
            Policy::Hvc => "hvc",
            Policy::RandomOec => "random-oec",
            Policy::Fennel => "fennel",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Policy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "oec" => Ok(Policy::Oec),
            "iec" => Ok(Policy::Iec),
            "cvc" => Ok(Policy::Cvc),
            "hvc" => Ok(Policy::Hvc),
            "random-oec" => Ok(Policy::RandomOec),
            "fennel" => Ok(Policy::Fennel),
            _ => Err(ParsePolicyError(s.to_owned())),
        }
    }
}

/// Error parsing a [`Policy`] name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy {:?}, expected one of oec/iec/cvc/hvc/random-oec/fennel",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

/// Near-square factorization `rows x cols = hosts` with `rows <= cols`,
/// used for the CVC host grid.
pub fn grid_dims(hosts: usize) -> (usize, usize) {
    assert!(hosts > 0, "need at least one host");
    let mut rows = (hosts as f64).sqrt() as usize;
    while rows > 1 && !hosts.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), hosts / rows.max(1))
}

/// Precomputed, graph-specific state of one policy: block boundaries, grid
/// shape, hub threshold. Identical on every host (it is a pure function of
/// the input graph), which is what makes the edge assignment a *temporal
/// invariant* the rest of the system can memoize against.
#[derive(Clone, Debug)]
pub struct PolicyCtx {
    policy: Policy,
    num_hosts: usize,
    blocks: BlockMap,
    /// CVC grid shape (rows, cols); (1, num_hosts) otherwise.
    grid: (usize, usize),
    /// HVC: global in-degree per node (empty for other policies).
    in_degrees: Vec<u32>,
    /// HVC: in-degree above which a node counts as a hub.
    hub_threshold: u32,
    /// Fennel: the streamed node -> host assignment (empty otherwise).
    assignment: Vec<u32>,
}

impl PolicyCtx {
    /// Builds the policy context for `graph` split over `num_hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `num_hosts` is zero.
    pub fn new(policy: Policy, graph: &Csr, num_hosts: usize) -> Self {
        assert!(num_hosts > 0, "need at least one host");
        let blocks = match policy {
            Policy::Oec | Policy::Fennel => BlockMap::balanced(&graph.out_degrees(), num_hosts),
            Policy::Iec => BlockMap::balanced(&graph.in_degrees(), num_hosts),
            Policy::Cvc | Policy::Hvc => {
                let out = graph.out_degrees();
                let inn = graph.in_degrees();
                let total: Vec<u32> = out
                    .iter()
                    .zip(&inn)
                    .map(|(&o, &i)| o.saturating_add(i))
                    .collect();
                BlockMap::balanced(&total, num_hosts)
            }
            Policy::RandomOec => BlockMap::uniform(graph.num_nodes(), num_hosts),
        };
        let grid = if policy == Policy::Cvc {
            grid_dims(num_hosts)
        } else {
            (1, num_hosts)
        };
        let (in_degrees, hub_threshold) = if policy == Policy::Hvc {
            let degs = graph.in_degrees();
            // PowerLyra-style: a node is a hub when its in-degree is well
            // above average; 4x average works across our inputs.
            let avg = graph.num_edges() / u64::from(graph.num_nodes().max(1));
            (degs, (4 * avg.max(1)) as u32)
        } else {
            (Vec::new(), 0)
        };
        let assignment = if policy == Policy::Fennel {
            fennel_assignment(graph, num_hosts)
        } else {
            Vec::new()
        };
        PolicyCtx {
            policy,
            num_hosts,
            blocks,
            grid,
            in_degrees,
            hub_threshold,
            assignment,
        }
    }

    /// The policy this context instantiates.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    /// CVC grid shape `(rows, cols)`.
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Host owning the *master* proxy of `node`.
    pub fn master_of(&self, node: Gid) -> usize {
        match self.policy {
            Policy::RandomOec => scramble(node) as usize % self.num_hosts,
            Policy::Fennel => self.assignment[node.index()] as usize,
            _ => self.blocks.owner(node),
        }
    }

    /// Host that edge `(src, dst)` is assigned to.
    pub fn host_of_edge(&self, src: Gid, dst: Gid) -> usize {
        match self.policy {
            Policy::Oec | Policy::RandomOec | Policy::Fennel => self.master_of(src),
            Policy::Iec => self.master_of(dst),
            Policy::Cvc => {
                let (_, cols) = self.grid;
                let row = self.master_of(src) / cols;
                let col = self.master_of(dst) % cols;
                row * cols + col
            }
            Policy::Hvc => {
                if self.in_degrees[dst.index()] > self.hub_threshold {
                    self.master_of(src)
                } else {
                    self.master_of(dst)
                }
            }
        }
    }
}

/// Greedy Fennel stream: place each node (in id order) on the host with
/// the highest score `|placed neighbors there| - alpha * load^(gamma - 1)`,
/// with gamma = 1.5 and the standard alpha, subject to a 10% balance slack.
fn fennel_assignment(graph: &Csr, num_hosts: usize) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    let m = graph.num_edges() as f64;
    let k = num_hosts as f64;
    let gamma = 1.5f64;
    let alpha = if n == 0 {
        0.0
    } else {
        m * k.powf(gamma - 1.0) / (n as f64).powf(gamma)
    };
    let cap = ((n as f64 / k) * 1.1).ceil() as usize + 1;
    let transpose = graph.transpose();
    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0usize; num_hosts];
    let mut scores = vec![0.0f64; num_hosts];
    for v in 0..n as u32 {
        for s in scores.iter_mut() {
            *s = 0.0;
        }
        for e in graph.out_edges(Gid(v)) {
            let a = assignment[e.dst.index()];
            if a != u32::MAX {
                scores[a as usize] += 1.0;
            }
        }
        for e in transpose.out_edges(Gid(v)) {
            let a = assignment[e.dst.index()];
            if a != u32::MAX {
                scores[a as usize] += 1.0;
            }
        }
        let mut best = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        for h in 0..num_hosts {
            if loads[h] >= cap {
                continue;
            }
            let score = scores[h] - alpha * gamma / 2.0 * (loads[h] as f64).powf(gamma - 1.0);
            if score > best_score {
                best_score = score;
                best = h;
            }
        }
        // The 10% slack guarantees some host is always below cap.
        let h = if best == usize::MAX {
            loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, l)| *l)
                .expect("at least one host")
                .0
        } else {
            best
        };
        assignment[v as usize] = h as u32;
        loads[h] += 1;
    }
    assignment
}

/// Cheap deterministic 32-bit mix for [`Policy::RandomOec`].
fn scramble(node: Gid) -> u32 {
    let mut x = node.0.wrapping_mul(0x9E37_79B9);
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::{gen, Csr};

    #[test]
    fn grid_dims_factorizes() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(6), (2, 3));
        assert_eq!(grid_dims(8), (2, 4));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(7), (1, 7));
    }

    #[test]
    fn policy_names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(p.name().parse::<Policy>().expect("parses"), p);
        }
        assert!("bogus".parse::<Policy>().is_err());
    }

    #[test]
    fn oec_assigns_out_edges_to_source_master() {
        let g = gen::rmat(6, 4, Default::default(), 1);
        let ctx = PolicyCtx::new(Policy::Oec, &g, 4);
        for (src, e) in g.edges() {
            assert_eq!(ctx.host_of_edge(src, e.dst), ctx.master_of(src));
        }
    }

    #[test]
    fn iec_assigns_in_edges_to_destination_master() {
        let g = gen::rmat(6, 4, Default::default(), 1);
        let ctx = PolicyCtx::new(Policy::Iec, &g, 4);
        for (src, e) in g.edges() {
            assert_eq!(ctx.host_of_edge(src, e.dst), ctx.master_of(e.dst));
        }
    }

    #[test]
    fn cvc_edge_host_shares_row_with_src_master_and_col_with_dst_master() {
        let g = gen::rmat(7, 4, Default::default(), 2);
        let ctx = PolicyCtx::new(Policy::Cvc, &g, 6);
        let (_, cols) = ctx.grid();
        for (src, e) in g.edges() {
            let h = ctx.host_of_edge(src, e.dst);
            assert_eq!(h / cols, ctx.master_of(src) / cols, "row invariant");
            assert_eq!(h % cols, ctx.master_of(e.dst) % cols, "col invariant");
        }
    }

    #[test]
    fn hvc_splits_hub_in_edges_by_source() {
        let g = gen::star(64).transpose(); // node 0 has in-degree 63: a hub
        let ctx = PolicyCtx::new(Policy::Hvc, &g, 4);
        let hosts: std::collections::HashSet<_> =
            g.edges().map(|(s, e)| ctx.host_of_edge(s, e.dst)).collect();
        assert!(hosts.len() > 1, "hub in-edges should be split across hosts");
    }

    #[test]
    fn hvc_places_low_degree_edges_by_destination() {
        let g = gen::path(64);
        let ctx = PolicyCtx::new(Policy::Hvc, &g, 4);
        for (src, e) in g.edges() {
            assert_eq!(ctx.host_of_edge(src, e.dst), ctx.master_of(e.dst));
        }
    }

    #[test]
    fn random_oec_scatters_masters() {
        let g = gen::path(256);
        let ctx = PolicyCtx::new(Policy::RandomOec, &g, 4);
        let mut counts = [0usize; 4];
        for v in g.nodes() {
            counts[ctx.master_of(v)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 256 / 8), "{counts:?}");
    }

    #[test]
    fn assignments_are_deterministic_across_contexts() {
        let g = gen::rmat(6, 4, Default::default(), 5);
        for p in Policy::ALL {
            let a = PolicyCtx::new(p, &g, 3);
            let b = PolicyCtx::new(p, &g, 3);
            for (src, e) in g.edges() {
                assert_eq!(a.host_of_edge(src, e.dst), b.host_of_edge(src, e.dst));
                assert_eq!(a.master_of(src), b.master_of(src));
            }
        }
    }

    #[test]
    fn fennel_balances_within_slack() {
        let g = gen::rmat(8, 8, Default::default(), 14);
        let hosts = 5;
        let ctx = PolicyCtx::new(Policy::Fennel, &g, hosts);
        let mut loads = vec![0usize; hosts];
        for v in g.nodes() {
            loads[ctx.master_of(v)] += 1;
        }
        let cap = ((g.num_nodes() as f64 / hosts as f64) * 1.1).ceil() as usize + 1;
        assert!(loads.iter().all(|&l| l <= cap), "{loads:?} cap {cap}");
    }

    #[test]
    fn fennel_cuts_fewer_edges_than_random_on_clustered_graphs() {
        // A graph of dense cliques: streaming placement should co-locate
        // clique members far better than hashing.
        let mut edges = Vec::new();
        let cliques = 12u32;
        let size = 12u32;
        for c in 0..cliques {
            for a in 0..size {
                for b in 0..size {
                    if a != b {
                        edges.push((c * size + a, c * size + b));
                    }
                }
            }
        }
        let g = Csr::from_edge_list(cliques * size, &edges);
        let cut = |policy: Policy| -> usize {
            let ctx = PolicyCtx::new(policy, &g, 4);
            g.edges()
                .filter(|&(s, e)| ctx.master_of(s) != ctx.master_of(e.dst))
                .count()
        };
        let fennel = cut(Policy::Fennel);
        let random = cut(Policy::RandomOec);
        assert!(
            fennel * 2 < random,
            "fennel cut {fennel} vs random cut {random}"
        );
    }

    #[test]
    fn edge_hosts_are_in_range() {
        let g = gen::rmat(6, 8, Default::default(), 9);
        for p in Policy::ALL {
            for hosts in [1, 2, 3, 5, 8] {
                let ctx = PolicyCtx::new(p, &g, hosts);
                for (src, e) in g.edges() {
                    assert!(ctx.host_of_edge(src, e.dst) < hosts);
                    assert!(ctx.master_of(src) < hosts);
                }
            }
        }
    }
}
