//! Balanced contiguous blocking of the node id space.
//!
//! The chunk-based edge-cuts of the paper (§5.2, following Gemini) split
//! nodes into contiguous blocks "while trying to balance outgoing and
//! incoming edges respectively". [`BlockMap`] computes such a split for an
//! arbitrary per-node weight and answers ownership queries in O(log n).

use gluon_graph::Gid;
use serde::{Deserialize, Serialize};

/// A split of `0..num_nodes` into `num_blocks` contiguous ranges with
/// near-equal total weight.
///
/// # Examples
///
/// ```
/// use gluon_partition::BlockMap;
/// use gluon_graph::Gid;
///
/// // Node 0 is heavy; it gets a block of its own.
/// let map = BlockMap::balanced(&[100, 1, 1, 1], 2);
/// assert_eq!(map.owner(Gid(0)), 0);
/// assert_eq!(map.owner(Gid(3)), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BlockMap {
    /// `starts[b]..starts[b + 1]` is block `b`; `starts.len() == num_blocks + 1`.
    starts: Vec<u32>,
}

impl BlockMap {
    /// Splits nodes into `num_blocks` contiguous blocks whose weight totals
    /// are as even as a greedy sweep can make them.
    ///
    /// Every node receives weight `weights[v] + 1` (the `+ 1` balances node
    /// counts when edge weights are highly skewed and guarantees progress
    /// for zero-weight nodes).
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is zero.
    pub fn balanced(weights: &[u32], num_blocks: usize) -> Self {
        assert!(num_blocks > 0, "need at least one block");
        let n = weights.len();
        let total: u64 = weights.iter().map(|&w| u64::from(w) + 1).sum();
        let mut starts = Vec::with_capacity(num_blocks + 1);
        starts.push(0u32);
        let mut assigned = 0u64;
        let mut v = 0usize;
        for b in 0..num_blocks {
            // Remaining weight spread over remaining blocks.
            let remaining_blocks = (num_blocks - b) as u64;
            let target = (total - assigned).div_ceil(remaining_blocks);
            let mut acc = 0u64;
            // Leave enough nodes so later blocks are never starved below
            // zero size only when nodes run out.
            while v < n && acc < target {
                acc += u64::from(weights[v]) + 1;
                v += 1;
            }
            assigned += acc;
            starts.push(v as u32);
        }
        *starts.last_mut().expect("non-empty") = n as u32;
        BlockMap { starts }
    }

    /// Splits `num_nodes` nodes into equal-size blocks (by node count).
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is zero.
    pub fn uniform(num_nodes: u32, num_blocks: usize) -> Self {
        assert!(num_blocks > 0, "need at least one block");
        let starts = (0..=num_blocks as u64)
            .map(|b| ((b * u64::from(num_nodes)) / num_blocks as u64) as u32)
            .collect();
        BlockMap { starts }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> u32 {
        *self.starts.last().expect("non-empty")
    }

    /// Block owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn owner(&self, node: Gid) -> usize {
        assert!(node.0 < self.num_nodes(), "node {node} out of range");
        // partition_point returns the count of blocks starting at or before
        // the node; subtract one for the index.
        self.starts.partition_point(|&s| s <= node.0) - 1
    }

    /// Node range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn range(&self, b: usize) -> std::ops::Range<u32> {
        self.starts[b]..self.starts[b + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_blocks_cover_everything() {
        let m = BlockMap::uniform(10, 3);
        assert_eq!(m.num_blocks(), 3);
        let sizes: Vec<_> = (0..3).map(|b| m.range(b).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn owner_is_consistent_with_range() {
        let m = BlockMap::balanced(&[5, 1, 1, 9, 2, 2, 0, 4], 3);
        for b in 0..m.num_blocks() {
            for v in m.range(b) {
                assert_eq!(m.owner(Gid(v)), b, "node {v}");
            }
        }
    }

    #[test]
    fn balanced_splits_heavy_node_apart() {
        let m = BlockMap::balanced(&[100, 1, 1, 1], 2);
        assert_eq!(m.owner(Gid(0)), 0);
        for v in 1..4 {
            assert_eq!(m.owner(Gid(v)), 1);
        }
    }

    #[test]
    fn more_blocks_than_nodes_yields_empty_tail_blocks() {
        let m = BlockMap::uniform(2, 5);
        assert_eq!(m.num_blocks(), 5);
        assert_eq!(m.num_nodes(), 2);
        let nonempty = (0..5).filter(|&b| !m.range(b).is_empty()).count();
        assert_eq!(nonempty, 2);
    }

    #[test]
    fn balanced_weights_are_roughly_even() {
        let weights: Vec<u32> = (0..1000).map(|v| (v * 7919) % 50).collect();
        let m = BlockMap::balanced(&weights, 8);
        let totals: Vec<u64> = (0..8)
            .map(|b| m.range(b).map(|v| u64::from(weights[v as usize]) + 1).sum())
            .collect();
        let max = *totals.iter().max().expect("non-empty");
        let min = *totals.iter().min().expect("non-empty");
        assert!(max < 2 * min.max(1), "imbalanced blocks: {totals:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_rejects_out_of_range() {
        BlockMap::uniform(3, 2).owner(Gid(3));
    }
}
