//! `gluon-meter`: a counting global allocator.
//!
//! The Gluon sync arena promises *zero heap allocations per steady-state
//! sync round* (the memory-side consequence of the paper's temporal
//! invariance: partitioning never changes, so buffer shapes never
//! change). A promise like that is only worth anything if it is
//! measured, so this crate wraps the system allocator in atomic counters
//! and exposes snapshots cheap enough to take around every sync call.
//!
//! This is the one crate in the workspace that contains `unsafe` code:
//! implementing [`GlobalAlloc`] requires it, and the implementation is a
//! pure pass-through to [`System`] plus relaxed counter bumps. Every
//! other crate keeps its `#![forbid(unsafe_code)]`.
//!
//! The counters only move when a binary *installs* the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: gluon_meter::CountingAlloc = gluon_meter::CountingAlloc;
//! ```
//!
//! Code that merely *reads* the counters (e.g. `gluon-core` behind its
//! `alloc-meter` feature) works unconditionally: without the installed
//! allocator the counters simply stay at zero. The counters are
//! process-wide, so a measurement window is only attributable to one
//! actor when nothing else is allocating concurrently — the allocation
//! guard test serializes itself for exactly this reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`] pass-through that counts every allocation. Install it
/// with `#[global_allocator]` in the measuring binary.
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a fresh acquisition of heap space: count it like
        // an allocation (growth in place still means the round was not
        // allocation-free).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations performed so far (0 unless [`CountingAlloc`] is the
/// process's global allocator). Reallocations count as allocations.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap deallocations performed so far.
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator so far (monotonic; frees are
/// not subtracted).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// A point-in-time reading of the counters, for delta measurements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllocSnapshot {
    /// Allocation count at snapshot time.
    pub allocations: u64,
    /// Deallocation count at snapshot time.
    pub deallocations: u64,
    /// Cumulative requested bytes at snapshot time.
    pub bytes: u64,
}

/// Takes a snapshot of the current counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: allocations(),
        deallocations: deallocations(),
        bytes: allocated_bytes(),
    }
}

impl AllocSnapshot {
    /// Allocations performed since `earlier`.
    pub fn allocs_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.allocations - earlier.allocations
    }

    /// Bytes requested since `earlier`.
    pub fn bytes_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.bytes - earlier.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters
    // stay flat no matter what the test allocates — which is itself the
    // documented behavior for non-measuring processes.
    #[test]
    fn counters_are_flat_without_installation() {
        let before = snapshot();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        let after = snapshot();
        assert_eq!(after.allocs_since(&before), 0);
        assert_eq!(after.bytes_since(&before), 0);
    }
}
