//! Direct tests of the GluonContext sync patterns, independent of the
//! algorithm layer.

use gluon::{
    DenseBitset, GluonContext, MaxField, MinField, OptLevel, ReadLocation, SumField, SyncSpec,
    WriteLocation,
};
use gluon_graph::{gen, Gid, Lid};
use gluon_net::{run_cluster, Communicator};
use gluon_partition::{partition_on_host, Policy};

/// Helper: run an SPMD body on a partitioned rmat graph.
fn with_cluster<R: Send>(
    hosts: usize,
    policy: Policy,
    opts: OptLevel,
    body: impl Fn(&gluon_partition::LocalGraph, &mut GluonContext<'_, gluon_net::MemoryTransport>) -> R
        + Sync,
) -> Vec<R> {
    let g = gen::rmat(7, 8, Default::default(), 2024);
    run_cluster(hosts, |ep| {
        let comm = Communicator::new(ep);
        let lg = partition_on_host(&g, policy, &comm);
        let mut ctx = GluonContext::new(&lg, &comm, opts);
        body(&lg, &mut ctx)
    })
}

#[test]
fn reduce_only_sums_partials_at_masters() {
    // Every proxy contributes 1; after a reduce-only sync each master must
    // hold its node's replication count (proxies across the cluster).
    for policy in [Policy::Cvc, Policy::Hvc, Policy::Oec] {
        let per_host = with_cluster(4, policy, OptLevel::OSTI, |lg, ctx| {
            let n = lg.num_proxies();
            let mut counts = vec![1u32; n as usize];
            let mut bits = DenseBitset::new(n);
            bits.set_all();
            let mut field = SumField::new(&mut counts);
            ctx.sync(&SyncSpec::reduce(WriteLocation::Any), &mut field, &mut bits);
            lg.masters()
                .map(|m| (lg.gid(m).0, counts[m.index()]))
                .collect::<Vec<_>>()
        });
        // Sum of master counts = total proxies in the cluster.
        let total: u32 = per_host.iter().flatten().map(|&(_, c)| c).sum();
        let g = gen::rmat(7, 8, Default::default(), 2024);
        let parts = gluon_partition::partition_all(&g, 4, policy);
        let proxies: u32 = parts.iter().map(|p| p.num_proxies()).sum();
        assert_eq!(total, proxies, "{policy}");
    }
}

#[test]
fn broadcast_only_propagates_master_values() {
    let per_host = with_cluster(3, Policy::Cvc, OptLevel::OSTI, |lg, ctx| {
        let n = lg.num_proxies();
        // Masters hold their gid as the value; mirrors hold a sentinel.
        let mut vals = vec![u32::MAX; n as usize];
        let mut bits = DenseBitset::new(n);
        for m in lg.masters() {
            vals[m.index()] = lg.gid(m).0;
            bits.set(m);
        }
        let mut field = MinField::new(&mut vals);
        ctx.sync(
            &SyncSpec::broadcast(ReadLocation::Any),
            &mut field,
            &mut bits,
        );
        // After broadcast every proxy must hold its gid.
        lg.proxies()
            .map(|p| vals[p.index()] == lg.gid(p).0)
            .collect::<Vec<bool>>()
    });
    assert!(per_host.into_iter().flatten().all(|ok| ok));
}

#[test]
fn max_reduction_takes_largest_mirror_value() {
    let per_host = with_cluster(4, Policy::Hvc, OptLevel::OSTI, |lg, ctx| {
        let n = lg.num_proxies();
        // Each proxy proposes host_rank * 1000 + 1; the max must win.
        let proposal = (ctx.rank() as u32 + 1) * 1000;
        let mut vals = vec![0u32; n as usize];
        let mut bits = DenseBitset::new(n);
        for p in lg.proxies() {
            vals[p.index()] = proposal;
            bits.set(p);
        }
        let mut field = MaxField::new(&mut vals);
        ctx.sync(
            &SyncSpec::full(WriteLocation::Any, ReadLocation::Any),
            &mut field,
            &mut bits,
        );
        lg.masters()
            .map(|m| (lg.gid(m).0, vals[m.index()]))
            .collect::<Vec<_>>()
    });
    // For every node, the master value must equal 1000 * (1 + max rank of
    // any host holding a proxy of it). Compute expectation from partitions.
    let g = gen::rmat(7, 8, Default::default(), 2024);
    let parts = gluon_partition::partition_all(&g, 4, Policy::Hvc);
    let mut expected = vec![0u32; g.num_nodes() as usize];
    for p in &parts {
        for l in p.proxies() {
            let gid = p.gid(l).index();
            expected[gid] = expected[gid].max((p.host() as u32 + 1) * 1000);
        }
    }
    let mut got = vec![0u32; g.num_nodes() as usize];
    for host in per_host {
        for (gid, v) in host {
            got[gid as usize] = v;
        }
    }
    assert_eq!(got, expected);
}

#[test]
fn stats_record_one_phase_per_sync() {
    let per_host = with_cluster(2, Policy::Oec, OptLevel::OSTI, |lg, ctx| {
        let n = lg.num_proxies();
        let mut vals = vec![0u32; n as usize];
        let mut bits = DenseBitset::new(n);
        for _ in 0..3 {
            let mut field = MinField::new(&mut vals);
            ctx.sync(
                &SyncSpec::full(WriteLocation::Destination, ReadLocation::Source),
                &mut field,
                &mut bits,
            );
        }
        let _ = ctx.any_globally(false);
        ctx.stats().num_phases()
    });
    assert!(per_host.into_iter().all(|phases| phases == 4));
}

#[test]
fn unopt_and_osti_reach_identical_fixpoints() {
    let mut results = Vec::new();
    for opts in [OptLevel::UNOPT, OptLevel::OSTI] {
        let per_host = with_cluster(3, Policy::Cvc, opts, |lg, ctx| {
            // One round of min-relax from node 0 over local edges.
            let n = lg.num_proxies();
            let mut vals = vec![u32::MAX; n as usize];
            let mut bits = DenseBitset::new(n);
            if let Some(s) = lg.lid(Gid(0)) {
                vals[s.index()] = 0;
                for e in lg.out_edges(s) {
                    vals[e.dst.index()] = 1;
                    bits.set(e.dst);
                }
            }
            let mut field = MinField::new(&mut vals);
            ctx.sync(
                &SyncSpec::full(WriteLocation::Destination, ReadLocation::Source),
                &mut field,
                &mut bits,
            );
            lg.masters()
                .map(|m| (lg.gid(m).0, vals[m.index()]))
                .collect::<Vec<_>>()
        });
        let mut flat: Vec<(u32, u32)> = per_host.into_iter().flatten().collect();
        flat.sort_unstable();
        results.push(flat);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn memo_bytes_are_accounted() {
    let per_host = with_cluster(4, Policy::Cvc, OptLevel::OSTI, |lg, ctx| {
        (lg.num_mirrors(), ctx.stats().memo_bytes)
    });
    for (mirrors, memo_bytes) in per_host {
        // 5 bytes per mirror entry (gid + flags).
        assert_eq!(memo_bytes, u64::from(mirrors) * 5);
    }
}

#[test]
fn sum_field_dense_retransmission_does_not_double_count() {
    // Force dense mode by updating every mirror, twice in a row; the
    // master total must equal the sum of distinct contributions.
    let per_host = with_cluster(2, Policy::Oec, OptLevel::OSTI, |lg, ctx| {
        let n = lg.num_proxies();
        let mut vals = vec![0.0f64; n as usize];
        let mut bits = DenseBitset::new(n);
        // Contribution 1 from every mirror.
        for m in lg.mirrors() {
            vals[m.index()] = 1.0;
            bits.set(m);
        }
        {
            let mut field = SumField::new(&mut vals);
            ctx.sync(&SyncSpec::reduce(WriteLocation::Any), &mut field, &mut bits);
        }
        // Second sync with no new contributions; resets must guarantee
        // nothing is re-sent (or re-sent as zero).
        {
            let mut field = SumField::new(&mut vals);
            ctx.sync(&SyncSpec::reduce(WriteLocation::Any), &mut field, &mut bits);
        }
        lg.masters()
            .map(|m| (lg.gid(m).0, vals[m.index()]))
            .collect::<Vec<_>>()
    });
    // Each master's total equals its mirror count (1.0 per mirror).
    let g = gen::rmat(7, 8, Default::default(), 2024);
    let parts = gluon_partition::partition_all(&g, 2, Policy::Oec);
    let mut mirror_count = vec![0.0f64; g.num_nodes() as usize];
    for p in &parts {
        for m in p.mirrors() {
            mirror_count[p.gid(m).index()] += 1.0;
        }
    }
    for host in per_host {
        for (gid, v) in host {
            assert_eq!(v, mirror_count[gid as usize], "node {gid}");
        }
    }
}

#[test]
fn single_host_context_syncs_are_no_ops() {
    let per_host = with_cluster(1, Policy::Cvc, OptLevel::OSTI, |lg, ctx| {
        let n = lg.num_proxies();
        let mut vals: Vec<u32> = (0..n).collect();
        let before = vals.clone();
        let mut bits = DenseBitset::new(n);
        bits.set_all();
        let mut field = MinField::new(&mut vals);
        ctx.sync(
            &SyncSpec::full(WriteLocation::Destination, ReadLocation::Source),
            &mut field,
            &mut bits,
        );
        (vals == before, ctx.stats().bytes_sent())
    });
    let (unchanged, bytes) = &per_host[0];
    assert!(unchanged);
    assert_eq!(*bytes, 0);
    let _ = Lid(0);
}
