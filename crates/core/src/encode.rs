//! Compact metadata encodings for updated values (§4.2), plus the codec-v2
//! compressed modes layered on top of them.
//!
//! When memoization (§4.1) is on, two hosts share an agreed, ordered list of
//! proxies; a sync message only has to say *which positions* of that list
//! carry values. Gluon picks, per message, the cheapest of the candidate
//! encodings by computing each candidate's exact byte size:
//!
//! | mode | when | wire layout (after the mode byte) |
//! |---|---|---|
//! | [`WireMode::Empty`] | no updates | nothing |
//! | [`WireMode::Dense`] | updates dense | values of *all* list entries |
//! | [`WireMode::Bitvec`] | updates sparse | bit per list entry + set values |
//! | [`WireMode::Indices`] | very sparse | `u32` count, `u32` positions, values |
//! | [`WireMode::IndicesDelta`] | sparse, clustered-or-not | varint count, varint first position, varint gaps (`delta − 1`), values |
//! | [`WireMode::RunLength`] | runs of consecutive updates | varint run count, alternating unset/set run lengths as varints, values |
//! | [`WireMode::SameIndicesDelta`] | all updated values byte-identical | `IndicesDelta` metadata + **one** value |
//! | [`WireMode::SameRunLength`] | all updated values byte-identical | `RunLength` metadata + **one** value |
//!
//! "The number of bits set in the bit-vector is used to determine which mode
//! yields the smallest message size. A byte in the sent message indicates
//! which mode was selected."
//!
//! The compressed modes (5–8) extend that rule: delta-coded index lists
//! shrink the 4-byte-per-position cost of [`WireMode::Indices`] to one or
//! two bytes per gap, run-length coding collapses contiguous update ranges,
//! and the `Same*` variants ship a single value when every updated value is
//! byte-identical on the wire (the common "all updates equal" broadcast —
//! e.g. a BFS frontier all at the same depth). Same-value detection
//! compares *encoded bytes*, never `PartialEq`, so `-0.0`/`0.0` keep their
//! bit patterns and `NaN`s simply never collapse. Selection is a pure
//! function of `(list_len, updated positions, value bytes)` — identical at
//! any thread count.
//!
//! Without memoization there is no agreed list; [`encode_gid_values`]
//! produces the classic `(global-ID, value)` pair stream other systems use
//! ([`WireMode::GidValues`]).
//!
//! # Error handling contract
//!
//! Every decode entry point is fallible: [`decode_memoized`] and
//! [`decode_gid_values`] return [`DecodeError`] on any malformed input —
//! truncated payloads, unknown mode bytes, out-of-range or non-increasing
//! positions, varint overflows, trailing bytes — and never panic, whatever
//! the bytes. Structural validation happens before values are applied
//! wherever the layout allows it. The *encoders* still assert their local
//! preconditions (sorted in-range positions): those inputs come from this
//! process, not from the wire.

use crate::value::SyncValue;
use bytes::{BufMut, Bytes};
use gluon_graph::Gid;
use std::fmt;

/// Number of distinct wire modes (mode bytes `0..NUM_WIRE_MODES`).
pub const NUM_WIRE_MODES: usize = 9;

/// Wire encoding selected for one sync message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum WireMode {
    /// No updates at all.
    Empty = 0,
    /// Values of every list entry, no metadata.
    Dense = 1,
    /// Bit-vector over the list plus values of set entries.
    Bitvec = 2,
    /// Explicit `u32` positions plus values.
    Indices = 3,
    /// `(global-ID, value)` pairs — the non-memoized fallback.
    GidValues = 4,
    /// Varint-delta-coded positions plus values (codec v2).
    IndicesDelta = 5,
    /// Run-length-coded bit-vector plus values (codec v2).
    RunLength = 6,
    /// [`WireMode::IndicesDelta`] metadata with one shared value (codec
    /// v2, all updated values byte-identical).
    SameIndicesDelta = 7,
    /// [`WireMode::RunLength`] metadata with one shared value (codec v2,
    /// all updated values byte-identical).
    SameRunLength = 8,
}

impl WireMode {
    /// Every mode, ordered by mode byte.
    pub const ALL: [WireMode; NUM_WIRE_MODES] = [
        WireMode::Empty,
        WireMode::Dense,
        WireMode::Bitvec,
        WireMode::Indices,
        WireMode::GidValues,
        WireMode::IndicesDelta,
        WireMode::RunLength,
        WireMode::SameIndicesDelta,
        WireMode::SameRunLength,
    ];

    /// Parses a mode byte.
    pub fn from_byte(b: u8) -> Option<WireMode> {
        match b {
            0 => Some(WireMode::Empty),
            1 => Some(WireMode::Dense),
            2 => Some(WireMode::Bitvec),
            3 => Some(WireMode::Indices),
            4 => Some(WireMode::GidValues),
            5 => Some(WireMode::IndicesDelta),
            6 => Some(WireMode::RunLength),
            7 => Some(WireMode::SameIndicesDelta),
            8 => Some(WireMode::SameRunLength),
            _ => None,
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            WireMode::Empty => "empty",
            WireMode::Dense => "dense",
            WireMode::Bitvec => "bitvec",
            WireMode::Indices => "indices",
            WireMode::GidValues => "gid_values",
            WireMode::IndicesDelta => "idx_delta",
            WireMode::RunLength => "run_len",
            WireMode::SameIndicesDelta => "same_idx",
            WireMode::SameRunLength => "same_run",
        }
    }

    /// The mode byte of a *locally produced* payload.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty or carries an unknown mode byte. Only
    /// for payloads this process just encoded; bytes from the wire go
    /// through [`WireMode::try_of`].
    pub fn of(payload: &[u8]) -> WireMode {
        WireMode::try_of(payload).expect("locally produced payload has a known mode byte")
    }

    /// The mode byte of a payload of unknown provenance.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on an empty payload,
    /// [`DecodeError::UnknownMode`] on an unrecognized mode byte.
    pub fn try_of(payload: &[u8]) -> Result<WireMode, DecodeError> {
        let &b = payload.first().ok_or(DecodeError::Truncated)?;
        WireMode::from_byte(b).ok_or(DecodeError::UnknownMode(b))
    }
}

impl fmt::Display for WireMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a received payload could not be decoded. Malformed bytes (a
/// corrupted frame on an unprotected transport, a forged message) surface
/// as one of these — the decoders never panic on wire input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The payload ended before the layout said it would.
    Truncated,
    /// The first byte is not a known mode byte.
    UnknownMode(u8),
    /// A known mode that is invalid for this decoder (e.g. a
    /// [`WireMode::GidValues`] payload handed to [`decode_memoized`]).
    UnexpectedMode(WireMode),
    /// A decoded position does not fit the agreed proxy list.
    IndexOutOfRange {
        /// The offending position.
        pos: u64,
        /// Length of the agreed list.
        list_len: usize,
    },
    /// Bytes remain after the layout's last field.
    TrailingBytes(usize),
    /// A varint ran past the largest encodable value.
    VarintOverflow,
    /// The payload violates the mode's structural rules.
    Malformed(&'static str),
    /// A `(global-ID, value)` payload named a node with no proxy here.
    UnknownGid(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::UnknownMode(b) => write!(f, "unknown wire mode byte {b:#04x}"),
            DecodeError::UnexpectedMode(m) => {
                write!(f, "wire mode {m} is invalid for this decoder")
            }
            DecodeError::IndexOutOfRange { pos, list_len } => {
                write!(f, "position {pos} outside the {list_len}-entry agreed list")
            }
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the payload"),
            DecodeError::VarintOverflow => write!(f, "varint overflows u64"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
            DecodeError::UnknownGid(gid) => {
                write!(f, "global id {gid} has no proxy on this host")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Exact LEB128 length of `x`.
fn varint_len(x: u64) -> usize {
    ((64 - x.leading_zeros()).max(1) as usize).div_ceil(7)
}

fn put_varint<B: BufMut>(buf: &mut B, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

/// Reads one LEB128 varint from `body` at `*cursor`, advancing it.
fn read_varint(body: &[u8], cursor: &mut usize) -> Result<u64, DecodeError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = body.get(*cursor).ok_or(DecodeError::Truncated)?;
        *cursor += 1;
        let low = (b & 0x7f) as u64;
        if shift > 63 || (shift == 63 && low > 1) {
            return Err(DecodeError::VarintOverflow);
        }
        x |= low << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

/// Exact metadata bytes of the delta-coded position list (varint count +
/// varint first position + varint gaps).
fn delta_meta_bytes(updated: &[u32]) -> usize {
    let mut n = varint_len(updated.len() as u64) + varint_len(updated[0] as u64);
    for w in updated.windows(2) {
        n += varint_len((w[1] - w[0] - 1) as u64);
    }
    n
}

/// The alternating run lengths of the update set: `[unset, set, unset,
/// set, …]`, starting with the (possibly zero) unset prefix and ending
/// with the final set run. The implicit unset tail is not encoded.
fn runs_of(updated: &[u32]) -> Vec<u64> {
    let mut runs = Vec::new();
    runs_of_into(updated, &mut runs);
    runs
}

/// As [`runs_of`], writing into a reusable buffer (cleared first) so the
/// steady-state encode path performs no allocation.
fn runs_of_into(updated: &[u32], runs: &mut Vec<u64>) {
    runs.clear();
    runs.push(updated[0] as u64);
    let mut set_len = 1u64;
    for w in updated.windows(2) {
        if w[1] == w[0] + 1 {
            set_len += 1;
        } else {
            runs.push(set_len);
            runs.push((w[1] - w[0] - 1) as u64);
            set_len = 1;
        }
    }
    runs.push(set_len);
}

/// Exact metadata bytes of the run-length layout (varint run count + each
/// run length as a varint).
fn run_meta_bytes(runs: &[u64]) -> usize {
    varint_len(runs.len() as u64) + runs.iter().map(|&r| varint_len(r)).sum::<usize>()
}

/// Exact wire sizes of every encoding applicable to this update set, in
/// fixed candidate order. `values_identical` admits the `Same*` modes (the
/// caller must have compared the *encoded* value bytes); `compress = false`
/// restricts the set to the paper's original three modes — the codec-v1
/// baseline that [`crate::OptLevel::without_compression`] selects.
///
/// The adaptive selector picks the minimum size from exactly this list
/// (ties resolve to the earliest candidate, as `min_by_key` does), so a
/// test can verify the choice was optimal by recomputing it.
pub fn candidate_sizes<V: SyncValue>(
    list_len: usize,
    updated: &[u32],
    values_identical: bool,
    compress: bool,
) -> Vec<(WireMode, usize)> {
    let v = V::WIRE_BYTES;
    let k = updated.len();
    let mut out = vec![
        (WireMode::Dense, 1 + list_len * v),
        (WireMode::Bitvec, 1 + list_len.div_ceil(8) + k * v),
        (WireMode::Indices, 1 + 4 + k * 4 + k * v),
    ];
    if compress && k > 0 {
        let dmeta = delta_meta_bytes(updated);
        let rmeta = run_meta_bytes(&runs_of(updated));
        out.push((WireMode::IndicesDelta, 1 + dmeta + k * v));
        out.push((WireMode::RunLength, 1 + rmeta + k * v));
        if values_identical {
            out.push((WireMode::SameIndicesDelta, 1 + dmeta + v));
            out.push((WireMode::SameRunLength, 1 + rmeta + v));
        }
    }
    out
}

/// The adaptive selection of [`candidate_sizes`] without materializing the
/// candidate list — the steady-state encode path must not allocate. `runs`
/// is the precomputed [`runs_of`] buffer (unused unless `compress` admits
/// the run-length candidates). Ties resolve exactly as
/// `candidate_sizes(..).min_by_key(size)` does: the *earliest* candidate
/// in the fixed order wins (`min_by_key` keeps the first minimum).
fn select_mode<V: SyncValue>(
    list_len: usize,
    updated: &[u32],
    values_identical: bool,
    compress: bool,
    runs: &[u64],
) -> (WireMode, usize) {
    let v = V::WIRE_BYTES;
    let k = updated.len();
    let mut best = (WireMode::Dense, 1 + list_len * v);
    let mut consider = |m: WireMode, s: usize| {
        if s < best.1 {
            best = (m, s);
        }
    };
    consider(WireMode::Bitvec, 1 + list_len.div_ceil(8) + k * v);
    consider(WireMode::Indices, 1 + 4 + k * 4 + k * v);
    if compress && k > 0 {
        let dmeta = delta_meta_bytes(updated);
        let rmeta = run_meta_bytes(runs);
        consider(WireMode::IndicesDelta, 1 + dmeta + k * v);
        consider(WireMode::RunLength, 1 + rmeta + k * v);
        if values_identical {
            consider(WireMode::SameIndicesDelta, 1 + dmeta + v);
            consider(WireMode::SameRunLength, 1 + rmeta + v);
        }
    }
    best
}

/// Reusable scratch for [`encode_memoized_into`]: the packed value bytes,
/// the bit-vector, and the run-length buffer every encode needs. Sized by
/// high-water mark — after a warm-up round the sync arena's per-peer
/// scratch never grows again (the paper's temporal invariance applied to
/// memory: stable partitioning means stable buffer shapes).
#[derive(Clone, Debug, Default)]
pub struct EncodeScratch {
    /// Packed wire bytes of the updated values, in position order.
    vals: Vec<u8>,
    /// Bit-vector workspace for [`WireMode::Bitvec`].
    bits: Vec<u8>,
    /// Alternating run lengths for the run-length modes.
    runs: Vec<u64>,
}

impl EncodeScratch {
    /// Current high-water footprint of the scratch buffers, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.vals.capacity() + self.bits.capacity() + self.runs.capacity() * 8
    }
}

/// Builds the payload for one specific (non-empty, memoized) mode into
/// `out`. `scratch.vals` holds the packed wire bytes of the updated
/// values, in position order; `scratch.runs` the precomputed run lengths
/// (run-length modes only).
fn assemble_into<V: SyncValue>(
    mode: WireMode,
    list_len: usize,
    updated: &[u32],
    scratch: &mut EncodeScratch,
    value_at: &impl Fn(usize) -> V,
    out: &mut Vec<u8>,
) {
    let v = V::WIRE_BYTES;
    let k = updated.len();
    out.put_u8(mode as u8);
    match mode {
        WireMode::Dense => {
            for pos in 0..list_len {
                value_at(pos).write_to(out);
            }
        }
        WireMode::Bitvec => {
            scratch.bits.clear();
            scratch.bits.resize(list_len.div_ceil(8), 0);
            for &p in updated {
                scratch.bits[p as usize / 8] |= 1 << (p % 8);
            }
            out.put_slice(&scratch.bits);
            out.put_slice(&scratch.vals);
        }
        WireMode::Indices => {
            out.put_u32_le(k as u32);
            for &p in updated {
                out.put_u32_le(p);
            }
            out.put_slice(&scratch.vals);
        }
        WireMode::IndicesDelta | WireMode::SameIndicesDelta => {
            put_varint(out, k as u64);
            put_varint(out, updated[0] as u64);
            for w in updated.windows(2) {
                put_varint(out, (w[1] - w[0] - 1) as u64);
            }
            if mode == WireMode::SameIndicesDelta {
                out.put_slice(&scratch.vals[..v]);
            } else {
                out.put_slice(&scratch.vals);
            }
        }
        WireMode::RunLength | WireMode::SameRunLength => {
            put_varint(out, scratch.runs.len() as u64);
            for i in 0..scratch.runs.len() {
                put_varint(out, scratch.runs[i]);
            }
            if mode == WireMode::SameRunLength {
                out.put_slice(&scratch.vals[..v]);
            } else {
                out.put_slice(&scratch.vals);
            }
        }
        WireMode::Empty | WireMode::GidValues => unreachable!("not assembled here"),
    }
}

/// Packs the wire bytes of every updated value into `scratch.vals`, in
/// position order, and reports whether they are all byte-identical.
fn pack_values_into<V: SyncValue>(
    updated: &[u32],
    value_at: &impl Fn(usize) -> V,
    scratch: &mut EncodeScratch,
) -> bool {
    let v = V::WIRE_BYTES;
    scratch.vals.clear();
    scratch.vals.reserve(updated.len() * v);
    for &p in updated {
        value_at(p as usize).write_to(&mut scratch.vals);
    }
    let (first, rest) = scratch.vals.split_at(v.min(scratch.vals.len()));
    rest.chunks_exact(v).all(|c| c == first)
}

/// Encodes the update set `updated` (sorted positions into the agreed list
/// of `list_len` entries) choosing the smallest wire mode among every
/// codec-v2 candidate.
///
/// `value_at(pos)` must return the current value of list entry `pos`; dense
/// mode reads *every* position, the sparse modes only the updated ones.
///
/// # Examples
///
/// ```
/// use gluon::encode::{decode_memoized, encode_memoized, WireMode};
///
/// let values = [10u32, 20, 30, 40];
/// let msg = encode_memoized(4, &[1, 3], |p| values[p]);
/// let mut got = Vec::new();
/// decode_memoized::<u32>(&msg, 4, &mut |pos, v| got.push((pos, v))).unwrap();
/// assert_eq!(got, vec![(1, 20), (3, 40)]);
/// ```
///
/// # Panics
///
/// Panics if `updated` is not sorted or contains a position `>= list_len`
/// (a local-caller contract — wire input never reaches the encoder).
pub fn encode_memoized<V: SyncValue>(
    list_len: usize,
    updated: &[u32],
    value_at: impl Fn(usize) -> V,
) -> Bytes {
    encode_memoized_with(list_len, updated, value_at, true)
}

/// As [`encode_memoized`], with the codec-v2 candidates gated on
/// `compress`: when false only the original dense/bitvec/indices modes
/// compete, reproducing the pre-compression wire format byte for byte.
///
/// # Panics
///
/// As [`encode_memoized`].
pub fn encode_memoized_with<V: SyncValue>(
    list_len: usize,
    updated: &[u32],
    value_at: impl Fn(usize) -> V,
    compress: bool,
) -> Bytes {
    let mut scratch = EncodeScratch::default();
    let mut out = Vec::new();
    encode_memoized_into(
        list_len,
        updated,
        value_at,
        compress,
        &mut scratch,
        &mut out,
    );
    Bytes::from(out)
}

/// As [`encode_memoized_with`], writing the payload into a caller-owned
/// buffer (cleared first) with caller-owned scratch — the allocation-free
/// entry point the sync arena uses. After a warm-up pass has grown
/// `scratch` and `out` to their high-water capacities, further calls with
/// the same shapes perform no heap allocation. The payload bytes are
/// identical to [`encode_memoized_with`] in every case.
///
/// # Panics
///
/// As [`encode_memoized`].
pub fn encode_memoized_into<V: SyncValue>(
    list_len: usize,
    updated: &[u32],
    value_at: impl Fn(usize) -> V,
    compress: bool,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    debug_assert!(updated.windows(2).all(|w| w[0] < w[1]), "positions sorted");
    assert!(
        updated.last().is_none_or(|&p| (p as usize) < list_len),
        "update position out of list range"
    );
    out.clear();
    if updated.is_empty() {
        out.put_u8(WireMode::Empty as u8);
        return;
    }
    let same = pack_values_into(updated, &value_at, scratch);
    if compress {
        runs_of_into(updated, &mut scratch.runs);
    }
    let (mode, size) = select_mode::<V>(list_len, updated, same, compress, &scratch.runs);
    out.reserve(size);
    assemble_into(mode, list_len, updated, scratch, &value_at, out);
    debug_assert_eq!(out.len(), size);
}

/// Builds the payload for one *forced* wire mode, bypassing the adaptive
/// selector — for golden-format and differential tests.
///
/// Returns `None` when `mode` cannot represent this update set:
/// [`WireMode::Empty`] with updates (or any other mode without),
/// [`WireMode::GidValues`] (no agreed list), or a `Same*` mode whose
/// updated values are not byte-identical.
///
/// # Panics
///
/// As [`encode_memoized`] for unsorted or out-of-range positions.
pub fn encode_memoized_as<V: SyncValue>(
    mode: WireMode,
    list_len: usize,
    updated: &[u32],
    value_at: impl Fn(usize) -> V,
) -> Option<Bytes> {
    debug_assert!(updated.windows(2).all(|w| w[0] < w[1]), "positions sorted");
    assert!(
        updated.last().is_none_or(|&p| (p as usize) < list_len),
        "update position out of list range"
    );
    if mode == WireMode::Empty {
        return updated
            .is_empty()
            .then(|| Bytes::from_static(&[WireMode::Empty as u8]));
    }
    if updated.is_empty() || mode == WireMode::GidValues {
        return None;
    }
    let mut scratch = EncodeScratch::default();
    let same = pack_values_into(updated, &value_at, &mut scratch);
    if matches!(mode, WireMode::SameIndicesDelta | WireMode::SameRunLength) && !same {
        return None;
    }
    let size = candidate_sizes::<V>(list_len, updated, same, true)
        .into_iter()
        .find(|&(m, _)| m == mode)
        .map(|(_, s)| s)?;
    runs_of_into(updated, &mut scratch.runs);
    let mut out = Vec::with_capacity(size);
    assemble_into(mode, list_len, updated, &mut scratch, &value_at, &mut out);
    Some(Bytes::from(out))
}

/// Decodes a payload produced by [`encode_memoized`], calling
/// `apply(position, value)` for every carried entry.
///
/// # Errors
///
/// Returns a [`DecodeError`] on any malformed payload — this function is
/// total over arbitrary bytes and never panics. When the error is detected
/// after decoding began (only possible for layouts whose value section
/// length depends on already-applied metadata), some entries may already
/// have been applied; the caller must treat the message as poisoned.
pub fn decode_memoized<V: SyncValue>(
    payload: &[u8],
    list_len: usize,
    apply: &mut impl FnMut(usize, V),
) -> Result<(), DecodeError> {
    decode_memoized_scratch(payload, list_len, &mut DecodeScratch::default(), apply)
}

/// Reusable scratch for [`decode_memoized_scratch`]: the position and run
/// buffers the delta-coded and run-length layouts validate into before
/// applying any value. Sized by high-water mark, like [`EncodeScratch`].
#[derive(Clone, Debug, Default)]
pub struct DecodeScratch {
    /// Decoded positions of an `IndicesDelta`-family payload.
    positions: Vec<usize>,
    /// Decoded `(start, end)` set runs of a `RunLength`-family payload.
    set_ranges: Vec<(usize, usize)>,
}

impl DecodeScratch {
    /// Current high-water footprint of the scratch buffers, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.positions.capacity() * std::mem::size_of::<usize>()
            + self.set_ranges.capacity() * std::mem::size_of::<(usize, usize)>()
    }
}

/// As [`decode_memoized`], with caller-owned scratch — the
/// allocation-free entry point the sync arena uses. Decoding behavior and
/// errors are identical in every case.
///
/// # Errors
///
/// As [`decode_memoized`].
pub fn decode_memoized_scratch<V: SyncValue>(
    payload: &[u8],
    list_len: usize,
    scratch: &mut DecodeScratch,
    apply: &mut impl FnMut(usize, V),
) -> Result<(), DecodeError> {
    let mode = WireMode::try_of(payload)?;
    let body = &payload[1..];
    let v = V::WIRE_BYTES;
    match mode {
        WireMode::Empty => {
            if !body.is_empty() {
                return Err(DecodeError::TrailingBytes(body.len()));
            }
        }
        WireMode::Dense => {
            let need = list_len * v;
            if body.len() < need {
                return Err(DecodeError::Truncated);
            }
            if body.len() > need {
                return Err(DecodeError::TrailingBytes(body.len() - need));
            }
            for pos in 0..list_len {
                apply(pos, V::read_from(&body[pos * v..]));
            }
        }
        WireMode::Bitvec => {
            let nbytes = list_len.div_ceil(8);
            if body.len() < nbytes {
                return Err(DecodeError::Truncated);
            }
            let (bits, values) = body.split_at(nbytes);
            if !list_len.is_multiple_of(8) && bits[nbytes - 1] >> (list_len % 8) != 0 {
                return Err(DecodeError::Malformed("bit set beyond the list range"));
            }
            let k: usize = bits.iter().map(|b| b.count_ones() as usize).sum();
            let need = k * v;
            if values.len() < need {
                return Err(DecodeError::Truncated);
            }
            if values.len() > need {
                return Err(DecodeError::TrailingBytes(values.len() - need));
            }
            let mut cursor = 0usize;
            for pos in 0..list_len {
                if bits[pos / 8] & (1 << (pos % 8)) != 0 {
                    apply(pos, V::read_from(&values[cursor..]));
                    cursor += v;
                }
            }
        }
        WireMode::Indices => {
            if body.len() < 4 {
                return Err(DecodeError::Truncated);
            }
            let k = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
            if k > list_len {
                return Err(DecodeError::Malformed(
                    "index count exceeds the list length",
                ));
            }
            let need = 4 + k * 4 + k * v;
            if body.len() < need {
                return Err(DecodeError::Truncated);
            }
            if body.len() > need {
                return Err(DecodeError::TrailingBytes(body.len() - need));
            }
            let (positions, values) = body[4..].split_at(k * 4);
            let mut prev: Option<u32> = None;
            for i in 0..k {
                let p = u32::from_le_bytes(positions[i * 4..i * 4 + 4].try_into().expect("4"));
                if (p as usize) >= list_len {
                    return Err(DecodeError::IndexOutOfRange {
                        pos: p as u64,
                        list_len,
                    });
                }
                if prev.is_some_and(|q| p <= q) {
                    return Err(DecodeError::Malformed("positions not strictly increasing"));
                }
                prev = Some(p);
            }
            for i in 0..k {
                let p = u32::from_le_bytes(positions[i * 4..i * 4 + 4].try_into().expect("4"));
                apply(p as usize, V::read_from(&values[i * v..]));
            }
        }
        WireMode::IndicesDelta | WireMode::SameIndicesDelta => {
            let same = mode == WireMode::SameIndicesDelta;
            let mut cur = 0usize;
            let k64 = read_varint(body, &mut cur)?;
            if k64 == 0 {
                return Err(DecodeError::Malformed("zero-count sparse payload"));
            }
            if k64 > list_len as u64 {
                return Err(DecodeError::Malformed(
                    "index count exceeds the list length",
                ));
            }
            let k = k64 as usize;
            let positions = &mut scratch.positions;
            positions.clear();
            positions.reserve(k);
            let mut pos = read_varint(body, &mut cur)?;
            if pos >= list_len as u64 {
                return Err(DecodeError::IndexOutOfRange { pos, list_len });
            }
            positions.push(pos as usize);
            for _ in 1..k {
                let gap = read_varint(body, &mut cur)?;
                pos = pos
                    .checked_add(gap)
                    .and_then(|p| p.checked_add(1))
                    .ok_or(DecodeError::VarintOverflow)?;
                if pos >= list_len as u64 {
                    return Err(DecodeError::IndexOutOfRange { pos, list_len });
                }
                positions.push(pos as usize);
            }
            let values = &body[cur..];
            let need = if same { v } else { k * v };
            if values.len() < need {
                return Err(DecodeError::Truncated);
            }
            if values.len() > need {
                return Err(DecodeError::TrailingBytes(values.len() - need));
            }
            for (i, &p) in positions.iter().enumerate() {
                let off = if same { 0 } else { i * v };
                apply(p, V::read_from(&values[off..]));
            }
        }
        WireMode::RunLength | WireMode::SameRunLength => {
            let same = mode == WireMode::SameRunLength;
            let mut cur = 0usize;
            let n_runs = read_varint(body, &mut cur)?;
            if n_runs == 0 || n_runs % 2 != 0 {
                return Err(DecodeError::Malformed("run count must be even and nonzero"));
            }
            if n_runs > list_len as u64 + 1 {
                return Err(DecodeError::Malformed("more runs than list entries"));
            }
            let set_ranges = &mut scratch.set_ranges;
            set_ranges.clear();
            set_ranges.reserve(n_runs as usize / 2);
            let mut pos = 0u64;
            for i in 0..n_runs {
                let r = read_varint(body, &mut cur)?;
                if i > 0 && r == 0 {
                    return Err(DecodeError::Malformed("zero-length run"));
                }
                let end = pos.checked_add(r).ok_or(DecodeError::VarintOverflow)?;
                if end > list_len as u64 {
                    return Err(DecodeError::IndexOutOfRange {
                        pos: end - 1,
                        list_len,
                    });
                }
                if i % 2 == 1 {
                    set_ranges.push((pos as usize, end as usize));
                }
                pos = end;
            }
            let k: usize = set_ranges.iter().map(|&(s, e)| e - s).sum();
            let values = &body[cur..];
            let need = if same { v } else { k * v };
            if values.len() < need {
                return Err(DecodeError::Truncated);
            }
            if values.len() > need {
                return Err(DecodeError::TrailingBytes(values.len() - need));
            }
            let mut i = 0usize;
            for &(s, e) in set_ranges.iter() {
                for p in s..e {
                    let off = if same { 0 } else { i * v };
                    apply(p, V::read_from(&values[off..]));
                    i += 1;
                }
            }
        }
        WireMode::GidValues => return Err(DecodeError::UnexpectedMode(WireMode::GidValues)),
    }
    Ok(())
}

/// Encodes `(global-ID, value)` pairs — the non-memoized wire format that
/// UNOPT/OSI use (and that systems like PowerGraph and Gemini always use).
pub fn encode_gid_values<V: SyncValue>(pairs: &[(Gid, V)]) -> Bytes {
    let mut out = Vec::new();
    encode_gid_values_into(pairs, &mut out);
    Bytes::from(out)
}

/// As [`encode_gid_values`], writing into a caller-owned buffer (cleared
/// first) so the steady-state non-memoized path performs no allocation
/// once the buffer reached its high-water capacity.
pub fn encode_gid_values_into<V: SyncValue>(pairs: &[(Gid, V)], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(1 + pairs.len() * (4 + V::WIRE_BYTES));
    out.put_u8(WireMode::GidValues as u8);
    for &(gid, v) in pairs {
        out.put_u32_le(gid.0);
        v.write_to(out);
    }
}

/// Decodes a payload produced by [`encode_gid_values`].
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedMode`] for a memoized-mode payload,
/// [`DecodeError::Truncated`] when the body is not a whole number of
/// pairs, and the mode-byte errors of [`WireMode::try_of`]. Never panics.
pub fn decode_gid_values<V: SyncValue>(
    payload: &[u8],
    apply: &mut impl FnMut(Gid, V),
) -> Result<(), DecodeError> {
    let mode = WireMode::try_of(payload)?;
    if mode != WireMode::GidValues {
        return Err(DecodeError::UnexpectedMode(mode));
    }
    let body = &payload[1..];
    let stride = 4 + V::WIRE_BYTES;
    if !body.len().is_multiple_of(stride) {
        return Err(DecodeError::Truncated);
    }
    for chunk in body.chunks_exact(stride) {
        let gid = Gid(u32::from_le_bytes(chunk[..4].try_into().expect("gid")));
        apply(gid, V::read_from(&chunk[4..]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn round_trip(list_len: usize, updated: &[u32]) -> (WireMode, Vec<(usize, u32)>) {
        let value_at = |p: usize| (p as u32 + 1) * 11;
        let msg = encode_memoized(list_len, updated, value_at);
        let mode = WireMode::of(&msg);
        let mut got = Vec::new();
        decode_memoized::<u32>(&msg, list_len, &mut |pos, v| got.push((pos, v)))
            .expect("own encoding decodes");
        (mode, got)
    }

    #[test]
    fn empty_update_set_sends_one_byte() {
        let msg = encode_memoized::<u32>(100, &[], |_| unreachable!());
        assert_eq!(msg.len(), 1);
        assert_eq!(WireMode::of(&msg), WireMode::Empty);
        decode_memoized::<u32>(&msg, 100, &mut |_, _| panic!("no entries")).expect("empty");
    }

    #[test]
    fn dense_updates_with_distinct_values_choose_dense_mode() {
        let updated: Vec<u32> = (0..100).collect();
        let (mode, got) = round_trip(100, &updated);
        assert_eq!(mode, WireMode::Dense);
        assert_eq!(got.len(), 100);
        assert_eq!(got[7], (7, 88));
    }

    #[test]
    fn scattered_sparse_updates_choose_a_compact_mode() {
        let updated: Vec<u32> = (0..100).step_by(5).collect(); // 20 of 100
        let (mode, got) = round_trip(100, &updated);
        // At this density the 13-byte bitvec metadata still beats the delta
        // list (21 bytes: count + first + 19 gap varints); delta only wins
        // once the update set thins out further.
        assert_eq!(mode, WireMode::Bitvec);
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|&(p, v)| v == (p as u32 + 1) * 11));
    }

    #[test]
    fn very_sparse_updates_choose_delta_indices() {
        let (mode, got) = round_trip(10_000, &[3, 9_876]);
        assert_eq!(mode, WireMode::IndicesDelta);
        assert_eq!(got, vec![(3, 44), (9_876, 9_877 * 11)]);
    }

    #[test]
    fn v1_candidates_only_without_compression() {
        let updated: Vec<u32> = (0..100).step_by(5).collect();
        let msg = encode_memoized_with(100, &updated, |p| (p as u32 + 1) * 11, false);
        assert_eq!(WireMode::of(&msg), WireMode::Bitvec);
        let very_sparse = encode_memoized_with(10_000, &[3, 9_876], |p| p as u32, false);
        assert_eq!(WireMode::of(&very_sparse), WireMode::Indices);
    }

    #[test]
    fn equal_values_collapse_to_a_same_mode() {
        // A broadcast where every updated entry carries the same value —
        // the metadata is shipped, the value once.
        let updated: Vec<u32> = (10..200).collect();
        let msg = encode_memoized(4_000, &updated, |_| 7u64);
        assert_eq!(WireMode::of(&msg), WireMode::SameRunLength);
        // varint(2 runs) + varint(10) + varint(190) + 8-byte value + mode.
        assert_eq!(msg.len(), 1 + 1 + 1 + 2 + 8);
        let mut got = Vec::new();
        decode_memoized::<u64>(&msg, 4_000, &mut |pos, v| got.push((pos, v))).expect("decodes");
        assert_eq!(got.len(), 190);
        assert!(got.iter().all(|&(_, v)| v == 7));
        assert_eq!(got.first(), Some(&(10usize, 7u64)));
        assert_eq!(got.last(), Some(&(199usize, 7u64)));
    }

    #[test]
    fn same_value_collapsing_compares_bits_not_partial_eq() {
        // -0.0 == 0.0 under PartialEq but differs on the wire: collapsing
        // would rewrite one of them, so the encoder must not collapse.
        let msg = encode_memoized(1_000, &[4, 5], |p| if p == 4 { 0.0f64 } else { -0.0 });
        let mut got = Vec::new();
        decode_memoized::<f64>(&msg, 1_000, &mut |pos, v| got.push((pos, v.to_bits())))
            .expect("decodes");
        assert_eq!(got, vec![(4, 0.0f64.to_bits()), (5, (-0.0f64).to_bits())]);
        // NaN != NaN just means no collapsing — still round-trips exactly.
        let nan = f64::from_bits(0x7ff8_0000_0000_0001);
        let msg = encode_memoized(1_000, &[4, 5], |_| nan);
        let mut got = Vec::new();
        decode_memoized::<f64>(&msg, 1_000, &mut |pos, v| got.push((pos, v.to_bits())))
            .expect("decodes");
        assert_eq!(got, vec![(4, nan.to_bits()), (5, nan.to_bits())]);
    }

    #[test]
    fn consecutive_run_prefers_run_length() {
        // 64 consecutive updates of 512: bitvec pays 64 metadata bytes,
        // the run-length layout pays 4.
        let updated: Vec<u32> = (100..164).collect();
        let msg = encode_memoized(512, &updated, |p| p as u64);
        assert_eq!(WireMode::of(&msg), WireMode::RunLength);
        let mut got = Vec::new();
        decode_memoized::<u64>(&msg, 512, &mut |pos, v| got.push((pos, v))).expect("decodes");
        assert_eq!(got.len(), 64);
        assert!(got.iter().all(|&(p, v)| v == p as u64));
    }

    #[test]
    fn selected_mode_is_never_larger_than_alternatives() {
        for list_len in [1usize, 7, 64, 129, 1000] {
            for stride in [1usize, 2, 3, 10, 50] {
                let updated: Vec<u32> = (0..list_len as u32).step_by(stride).collect();
                for compress in [false, true] {
                    let msg = encode_memoized_with(list_len, &updated, |p| p as u64, compress);
                    for (_, size) in candidate_sizes::<u64>(
                        list_len, &updated,
                        false, // conservative: selector may only beat this set
                        compress,
                    ) {
                        assert!(
                            msg.len() <= size,
                            "len={list_len} stride={stride} compress={compress}: {} > {size}",
                            msg.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_modes_round_trip_and_adaptive_matches_forced() {
        let list_len = 300usize;
        let updated: Vec<u32> = vec![0, 1, 2, 3, 50, 51, 299];
        let value_at = |p: usize| p as u32 * 3;
        let mut want: Vec<(usize, u32)> = updated
            .iter()
            .map(|&p| (p as usize, value_at(p as usize)))
            .collect();
        for mode in [
            WireMode::Bitvec,
            WireMode::Indices,
            WireMode::IndicesDelta,
            WireMode::RunLength,
        ] {
            let msg = encode_memoized_as(mode, list_len, &updated, value_at)
                .expect("mode applies to this set");
            assert_eq!(WireMode::of(&msg), mode);
            let mut got = Vec::new();
            decode_memoized::<u32>(&msg, list_len, &mut |pos, v| got.push((pos, v)))
                .expect("forced encoding decodes");
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{mode}");
        }
        // The adaptive payload is byte-identical to forcing its choice.
        let adaptive = encode_memoized(list_len, &updated, value_at);
        let forced =
            encode_memoized_as(WireMode::of(&adaptive), list_len, &updated, value_at).unwrap();
        assert_eq!(adaptive, forced);
    }

    #[test]
    fn forced_same_modes_require_identical_value_bytes() {
        let updated = [3u32, 9];
        assert!(
            encode_memoized_as(WireMode::SameIndicesDelta, 16, &updated, |p| p as u32).is_none()
        );
        let msg = encode_memoized_as(WireMode::SameRunLength, 16, &updated, |_| 5u32)
            .expect("identical values collapse");
        let mut got = Vec::new();
        decode_memoized::<u32>(&msg, 16, &mut |pos, v| got.push((pos, v))).expect("decodes");
        assert_eq!(got, vec![(3, 5), (9, 5)]);
    }

    #[test]
    fn gid_values_round_trip() {
        let pairs = vec![(Gid(5), 0.25f64), (Gid(900), -1.5)];
        let msg = encode_gid_values(&pairs);
        assert_eq!(WireMode::of(&msg), WireMode::GidValues);
        let mut got = Vec::new();
        decode_gid_values::<f64>(&msg, &mut |g, v| got.push((g, v))).expect("decodes");
        assert_eq!(got, pairs);
    }

    #[test]
    fn gid_values_cost_more_than_memoized_modes() {
        // The §4.1/§4.2 claim: dropping global-IDs roughly halves volume for
        // 32-bit labels — and codec v2 only widens the gap.
        let list_len = 1000usize;
        let updated: Vec<u32> = (0..200).collect();
        let memo = encode_memoized(list_len, &updated, |p| p as u32);
        let pairs: Vec<(Gid, u32)> = updated.iter().map(|&p| (Gid(p), p)).collect();
        let gid = encode_gid_values(&pairs);
        assert!(
            (memo.len() as f64) < 0.7 * gid.len() as f64,
            "memo {} vs gid {}",
            memo.len(),
            gid.len()
        );
    }

    #[test]
    fn memoized_decoder_rejects_gid_mode_as_an_error() {
        let msg = encode_gid_values(&[(Gid(0), 1u32)]);
        let mut calls = 0;
        let err = decode_memoized::<u32>(&msg, 1, &mut |_, _| calls += 1)
            .expect_err("gid payload is invalid for the memoized decoder");
        assert_eq!(err, DecodeError::UnexpectedMode(WireMode::GidValues));
        assert_eq!(calls, 0);
    }

    #[test]
    fn gid_decoder_rejects_memoized_modes_as_an_error() {
        let msg = encode_memoized(8, &[1], |_| 9u32);
        let err = decode_gid_values::<u32>(&msg, &mut |_, _| {}).expect_err("wrong decoder");
        assert!(matches!(err, DecodeError::UnexpectedMode(_)));
    }

    #[test]
    fn empty_payload_is_a_truncation_error() {
        assert_eq!(
            decode_memoized::<u32>(&[], 4, &mut |_, _| {}),
            Err(DecodeError::Truncated)
        );
        assert_eq!(
            decode_gid_values::<u32>(&[], &mut |_, _| {}),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn unknown_mode_byte_is_an_error() {
        assert_eq!(
            decode_memoized::<u32>(&[0xAA, 1, 2], 4, &mut |_, _| {}),
            Err(DecodeError::UnknownMode(0xAA))
        );
    }

    #[test]
    fn truncated_payloads_are_errors_for_every_mode() {
        let value_at = |p: usize| p as u64;
        let updated = [1u32, 2, 3, 9, 15];
        for mode in [
            WireMode::Dense,
            WireMode::Bitvec,
            WireMode::Indices,
            WireMode::IndicesDelta,
            WireMode::RunLength,
        ] {
            let msg = encode_memoized_as(mode, 16, &updated, value_at).expect("applies");
            for cut in 1..msg.len() {
                assert!(
                    decode_memoized::<u64>(&msg[..cut], 16, &mut |_, _| {}).is_err(),
                    "{mode}: prefix of {cut} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn out_of_range_index_is_a_decode_error() {
        // Forge an Indices payload whose position is past the list.
        let mut forged = BytesMut::new();
        forged.put_u8(WireMode::Indices as u8);
        forged.put_u32_le(1);
        forged.put_u32_le(4); // list_len is 4, so position 4 is invalid
        forged.put_u32_le(0xDEAD);
        let err = decode_memoized::<u32>(&forged, 4, &mut |_, _| {}).expect_err("out of range");
        assert_eq!(
            err,
            DecodeError::IndexOutOfRange {
                pos: 4,
                list_len: 4
            }
        );
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut msg = encode_memoized(16, &[2, 5], |p| p as u32).to_vec();
        msg.push(0);
        assert!(matches!(
            decode_memoized::<u32>(&msg, 16, &mut |_, _| {}),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn varints_round_trip_and_overflow_is_detected() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x));
            let mut cur = 0;
            assert_eq!(read_varint(&buf, &mut cur), Ok(x));
            assert_eq!(cur, buf.len());
        }
        // 11 continuation bytes cannot fit u64.
        let too_long = [0xFFu8; 11];
        let mut cur = 0;
        assert_eq!(
            read_varint(&too_long, &mut cur),
            Err(DecodeError::VarintOverflow)
        );
        // A continuation byte at the end of input is a truncation.
        let mut cur = 0;
        assert_eq!(read_varint(&[0x80], &mut cur), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_errors_render_helpfully() {
        let checks = [
            (DecodeError::Truncated, "truncated"),
            (DecodeError::UnknownMode(0xFF), "0xff"),
            (
                DecodeError::UnexpectedMode(WireMode::GidValues),
                "gid_values",
            ),
            (
                DecodeError::IndexOutOfRange {
                    pos: 9,
                    list_len: 4,
                },
                "position 9",
            ),
            (DecodeError::TrailingBytes(3), "3 trailing"),
            (DecodeError::VarintOverflow, "varint"),
            (DecodeError::Malformed("zero-length run"), "zero-length run"),
            (DecodeError::UnknownGid(17), "global id 17"),
        ];
        for (err, needle) in checks {
            assert!(
                err.to_string().contains(needle),
                "{err:?} -> {err} misses {needle:?}"
            );
        }
    }

    #[test]
    fn mode_bytes_and_names_are_stable() {
        for (i, mode) in WireMode::ALL.into_iter().enumerate() {
            assert_eq!(mode as u8 as usize, i);
            assert_eq!(WireMode::from_byte(i as u8), Some(mode));
        }
        assert_eq!(WireMode::from_byte(NUM_WIRE_MODES as u8), None);
        assert_eq!(WireMode::SameRunLength.name(), "same_run");
    }
}
