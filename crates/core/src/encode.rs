//! Compact metadata encodings for updated values (§4.2).
//!
//! When memoization (§4.1) is on, two hosts share an agreed, ordered list of
//! proxies; a sync message only has to say *which positions* of that list
//! carry values. Gluon picks, per message, the cheapest of four encodings:
//!
//! | mode | when | wire layout |
//! |---|---|---|
//! | [`WireMode::Empty`] | no updates | mode byte only |
//! | [`WireMode::Dense`] | updates dense | values of *all* list entries |
//! | [`WireMode::Bitvec`] | updates sparse | bit per list entry + set values |
//! | [`WireMode::Indices`] | very sparse | `u32` count, `u32` positions, values |
//!
//! "The number of bits set in the bit-vector is used to determine which mode
//! yields the smallest message size. A byte in the sent message indicates
//! which mode was selected."
//!
//! Without memoization there is no agreed list; [`encode_gid_values`]
//! produces the classic `(global-ID, value)` pair stream other systems use
//! ([`WireMode::GidValues`]).

use crate::value::SyncValue;
use bytes::{BufMut, Bytes, BytesMut};
use gluon_graph::Gid;

/// Wire encoding selected for one sync message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum WireMode {
    /// No updates at all.
    Empty = 0,
    /// Values of every list entry, no metadata.
    Dense = 1,
    /// Bit-vector over the list plus values of set entries.
    Bitvec = 2,
    /// Explicit `u32` positions plus values.
    Indices = 3,
    /// `(global-ID, value)` pairs — the non-memoized fallback.
    GidValues = 4,
}

impl WireMode {
    /// Parses a mode byte.
    pub fn from_byte(b: u8) -> Option<WireMode> {
        match b {
            0 => Some(WireMode::Empty),
            1 => Some(WireMode::Dense),
            2 => Some(WireMode::Bitvec),
            3 => Some(WireMode::Indices),
            4 => Some(WireMode::GidValues),
            _ => None,
        }
    }

    /// The mode byte of an encoded payload.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty or carries an unknown mode byte.
    pub fn of(payload: &[u8]) -> WireMode {
        WireMode::from_byte(*payload.first().expect("payload has a mode byte"))
            .expect("known wire mode")
    }
}

/// Projected sizes of each encoding, used to pick the smallest.
fn mode_sizes<V: SyncValue>(list_len: usize, k: usize) -> [(WireMode, usize); 3] {
    let v = V::WIRE_BYTES;
    [
        (WireMode::Dense, 1 + list_len * v),
        (WireMode::Bitvec, 1 + list_len.div_ceil(8) + k * v),
        (WireMode::Indices, 1 + 4 + k * 4 + k * v),
    ]
}

/// Encodes the update set `updated` (sorted positions into the agreed list
/// of `list_len` entries) choosing the smallest wire mode.
///
/// `value_at(pos)` must return the current value of list entry `pos`; dense
/// mode reads *every* position, the sparse modes only the updated ones.
///
/// # Examples
///
/// ```
/// use gluon::encode::{decode_memoized, encode_memoized, WireMode};
///
/// let values = [10u32, 20, 30, 40];
/// let msg = encode_memoized(4, &[1, 3], |p| values[p]);
/// let mut got = Vec::new();
/// decode_memoized::<u32>(&msg, 4, &mut |pos, v| got.push((pos, v)));
/// assert_eq!(got, vec![(1, 20), (3, 40)]);
/// ```
///
/// # Panics
///
/// Panics if `updated` is not sorted or contains a position `>= list_len`.
pub fn encode_memoized<V: SyncValue>(
    list_len: usize,
    updated: &[u32],
    value_at: impl Fn(usize) -> V,
) -> Bytes {
    debug_assert!(updated.windows(2).all(|w| w[0] < w[1]), "positions sorted");
    assert!(
        updated.last().is_none_or(|&p| (p as usize) < list_len),
        "update position out of list range"
    );
    let k = updated.len();
    if k == 0 {
        return Bytes::from_static(&[WireMode::Empty as u8]);
    }
    let (mode, size) = mode_sizes::<V>(list_len, k)
        .into_iter()
        .min_by_key(|&(_, s)| s)
        .expect("three candidate modes");
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u8(mode as u8);
    match mode {
        WireMode::Dense => {
            for pos in 0..list_len {
                value_at(pos).write_to(&mut buf);
            }
        }
        WireMode::Bitvec => {
            let mut bits = vec![0u8; list_len.div_ceil(8)];
            for &p in updated {
                bits[p as usize / 8] |= 1 << (p % 8);
            }
            buf.put_slice(&bits);
            for &p in updated {
                value_at(p as usize).write_to(&mut buf);
            }
        }
        WireMode::Indices => {
            buf.put_u32_le(k as u32);
            for &p in updated {
                buf.put_u32_le(p);
            }
            for &p in updated {
                value_at(p as usize).write_to(&mut buf);
            }
        }
        WireMode::Empty | WireMode::GidValues => unreachable!("not size candidates"),
    }
    debug_assert_eq!(buf.len(), size);
    buf.freeze()
}

/// Decodes a payload produced by [`encode_memoized`], calling
/// `apply(position, value)` for every carried entry.
///
/// # Panics
///
/// Panics on truncated or malformed payloads and on [`WireMode::GidValues`]
/// payloads (those go through [`decode_gid_values`]).
pub fn decode_memoized<V: SyncValue>(
    payload: &[u8],
    list_len: usize,
    apply: &mut impl FnMut(usize, V),
) {
    let mode = WireMode::of(payload);
    let body = &payload[1..];
    let v = V::WIRE_BYTES;
    match mode {
        WireMode::Empty => assert!(body.is_empty(), "empty message with a body"),
        WireMode::Dense => {
            assert_eq!(body.len(), list_len * v, "dense body size");
            for pos in 0..list_len {
                apply(pos, V::read_from(&body[pos * v..]));
            }
        }
        WireMode::Bitvec => {
            let nbytes = list_len.div_ceil(8);
            let (bits, values) = body.split_at(nbytes);
            let mut cursor = 0usize;
            for pos in 0..list_len {
                if bits[pos / 8] & (1 << (pos % 8)) != 0 {
                    apply(pos, V::read_from(&values[cursor..]));
                    cursor += v;
                }
            }
            assert_eq!(cursor, values.len(), "bitvec popcount matches values");
        }
        WireMode::Indices => {
            let k = u32::from_le_bytes(body[..4].try_into().expect("count")) as usize;
            let (positions, values) = body[4..].split_at(k * 4);
            assert_eq!(values.len(), k * v, "indices value section size");
            for i in 0..k {
                let p =
                    u32::from_le_bytes(positions[i * 4..i * 4 + 4].try_into().expect("position"))
                        as usize;
                assert!(p < list_len, "decoded position out of range");
                apply(p, V::read_from(&values[i * v..]));
            }
        }
        WireMode::GidValues => panic!("gid-value payload passed to memoized decoder"),
    }
}

/// Encodes `(global-ID, value)` pairs — the non-memoized wire format that
/// UNOPT/OSI use (and that systems like PowerGraph and Gemini always use).
pub fn encode_gid_values<V: SyncValue>(pairs: &[(Gid, V)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + pairs.len() * (4 + V::WIRE_BYTES));
    buf.put_u8(WireMode::GidValues as u8);
    for &(gid, v) in pairs {
        buf.put_u32_le(gid.0);
        v.write_to(&mut buf);
    }
    buf.freeze()
}

/// Decodes a payload produced by [`encode_gid_values`].
///
/// # Panics
///
/// Panics on malformed payloads or a non-[`WireMode::GidValues`] mode byte.
pub fn decode_gid_values<V: SyncValue>(payload: &[u8], apply: &mut impl FnMut(Gid, V)) {
    assert_eq!(WireMode::of(payload), WireMode::GidValues, "wire mode");
    let body = &payload[1..];
    let stride = 4 + V::WIRE_BYTES;
    assert_eq!(body.len() % stride, 0, "gid-value body size");
    for chunk in body.chunks_exact(stride) {
        let gid = Gid(u32::from_le_bytes(chunk[..4].try_into().expect("gid")));
        apply(gid, V::read_from(&chunk[4..]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(list_len: usize, updated: &[u32]) -> (WireMode, Vec<(usize, u32)>) {
        let value_at = |p: usize| (p as u32 + 1) * 11;
        let msg = encode_memoized(list_len, updated, value_at);
        let mode = WireMode::of(&msg);
        let mut got = Vec::new();
        decode_memoized::<u32>(&msg, list_len, &mut |pos, v| got.push((pos, v)));
        (mode, got)
    }

    #[test]
    fn empty_update_set_sends_one_byte() {
        let msg = encode_memoized::<u32>(100, &[], |_| unreachable!());
        assert_eq!(msg.len(), 1);
        assert_eq!(WireMode::of(&msg), WireMode::Empty);
        decode_memoized::<u32>(&msg, 100, &mut |_, _| panic!("no entries"));
    }

    #[test]
    fn dense_updates_choose_dense_mode() {
        let updated: Vec<u32> = (0..100).collect();
        let (mode, got) = round_trip(100, &updated);
        assert_eq!(mode, WireMode::Dense);
        assert_eq!(got.len(), 100);
        assert_eq!(got[7], (7, 88));
    }

    #[test]
    fn sparse_updates_choose_bitvec_mode() {
        let updated: Vec<u32> = (0..100).step_by(5).collect(); // 20 of 100
        let (mode, got) = round_trip(100, &updated);
        assert_eq!(mode, WireMode::Bitvec);
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|&(p, v)| v == (p as u32 + 1) * 11));
    }

    #[test]
    fn very_sparse_updates_choose_indices_mode() {
        let (mode, got) = round_trip(10_000, &[3, 9_876]);
        assert_eq!(mode, WireMode::Indices);
        assert_eq!(got, vec![(3, 44), (9_876, 9_877 * 11)]);
    }

    #[test]
    fn selected_mode_is_never_larger_than_alternatives() {
        for list_len in [1usize, 7, 64, 129, 1000] {
            for stride in [1usize, 2, 3, 10, 50] {
                let updated: Vec<u32> = (0..list_len as u32).step_by(stride).collect();
                let msg = encode_memoized(list_len, &updated, |p| p as u64);
                for (_, size) in mode_sizes::<u64>(list_len, updated.len()) {
                    assert!(
                        msg.len() <= size,
                        "len={list_len} stride={stride}: {} > {size}",
                        msg.len()
                    );
                }
            }
        }
    }

    #[test]
    fn gid_values_round_trip() {
        let pairs = vec![(Gid(5), 0.25f64), (Gid(900), -1.5)];
        let msg = encode_gid_values(&pairs);
        assert_eq!(WireMode::of(&msg), WireMode::GidValues);
        let mut got = Vec::new();
        decode_gid_values::<f64>(&msg, &mut |g, v| got.push((g, v)));
        assert_eq!(got, pairs);
    }

    #[test]
    fn gid_values_cost_more_than_memoized_bitvec() {
        // The §4.1/§4.2 claim: dropping global-IDs roughly halves volume for
        // 32-bit labels.
        let list_len = 1000usize;
        let updated: Vec<u32> = (0..200).collect();
        let memo = encode_memoized(list_len, &updated, |p| p as u32);
        let pairs: Vec<(Gid, u32)> = updated.iter().map(|&p| (Gid(p), p)).collect();
        let gid = encode_gid_values(&pairs);
        assert!(
            (memo.len() as f64) < 0.7 * gid.len() as f64,
            "memo {} vs gid {}",
            memo.len(),
            gid.len()
        );
    }

    #[test]
    #[should_panic(expected = "out of list range")]
    fn rejects_out_of_range_position() {
        let _ = encode_memoized(4, &[4], |_| 0u32);
    }

    #[test]
    #[should_panic(expected = "gid-value payload")]
    fn memoized_decoder_rejects_gid_mode() {
        let msg = encode_gid_values(&[(Gid(0), 1u32)]);
        decode_memoized::<u32>(&msg, 1, &mut |_, _| {});
    }
}
