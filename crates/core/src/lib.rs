//! Gluon: a communication-optimizing substrate for distributed
//! heterogeneous graph analytics.
//!
//! This crate reproduces the system of Dathathri et al., *PLDI 2018*. A
//! shared-memory graph engine computes on one host's partition
//! ([`gluon_partition::LocalGraph`]); between rounds it calls
//! [`GluonContext::sync`], passing a [`FieldSync`] structure (the paper's
//! reduce/broadcast structs, Figure 5) and the dirty bit-vector. Gluon
//! composes the reduce and broadcast communication patterns required by the
//! partitioning policy's structural invariants (§3), memoizes address
//! translation so no global-IDs travel with values (§4.1), and encodes
//! update metadata in the cheapest wire mode — the paper's four modes
//! (§4.2) plus the codec-v2 compressed candidates (delta-coded index
//! lists, run-length bitvecs, same-value collapsing). Each optimization
//! can be toggled via [`OptLevel`] (the UNOPT/OSI/OTI/OSTI configurations
//! of the paper's Figure 10; `compress` gates codec v2).
//!
//! # Examples
//!
//! A complete distributed BFS over 4 simulated hosts, written directly
//! against the substrate (the engine crates offer higher-level front-ends):
//!
//! ```
//! use gluon::{
//!     DenseBitset, GluonContext, MinField, OptLevel, ReadLocation, SyncSpec, WriteLocation,
//! };
//! use gluon_graph::{gen, max_out_degree_node};
//! use gluon_net::{run_cluster, Communicator};
//! use gluon_partition::{partition_on_host, Policy};
//!
//! // Push operators write at edge destinations and read at sources.
//! const DIST: SyncSpec =
//!     SyncSpec::full(WriteLocation::Destination, ReadLocation::Source).named("dist");
//!
//! let g = gen::rmat(7, 8, Default::default(), 42);
//! let source = max_out_degree_node(&g);
//! let results = run_cluster(4, |ep| {
//!     let comm = Communicator::new(ep);
//!     let lg = partition_on_host(&g, Policy::Oec, &comm);
//!     let mut ctx = GluonContext::new(&lg, &comm, OptLevel::OSTI);
//!     let mut dist = vec![u32::MAX; lg.num_proxies() as usize];
//!     let mut active = DenseBitset::new(lg.num_proxies());
//!     if let Some(s) = lg.lid(source) {
//!         dist[s.index()] = 0;
//!         active.set(s);
//!     }
//!     loop {
//!         let mut next = DenseBitset::new(lg.num_proxies());
//!         for v in active.iter() {
//!             for e in lg.out_edges(v) {
//!                 let nd = dist[v.index()].saturating_add(1);
//!                 if nd < dist[e.dst.index()] {
//!                     dist[e.dst.index()] = nd;
//!                     next.set(e.dst);
//!                 }
//!             }
//!         }
//!         active = next;
//!         let mut field = MinField::new(&mut dist);
//!         ctx.sync(&DIST, &mut field, &mut active);
//!         if !ctx.any_globally(!active.is_empty()) {
//!             break;
//!         }
//!     }
//!     // Collect master labels back to global space.
//!     lg.masters()
//!         .map(|m| (lg.gid(m).0, dist[m.index()]))
//!         .collect::<Vec<_>>()
//! });
//! let mut got = vec![u32::MAX; g.num_nodes() as usize];
//! for host in results {
//!     for (gid, d) in host {
//!         got[gid as usize] = d;
//!     }
//! }
//! assert_eq!(got[source.index()], 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bitset;
mod checkpoint;
mod comm_tags;
mod context;
pub mod encode;
mod field;
mod memo;
mod opts;
mod stats;
mod value;

pub use arena::{SyncArena, ARENA_WARMUP_ROUNDS};
pub use bitset::{DenseBitset, Iter as BitsetIter};
pub use checkpoint::{CheckpointSnapshot, CheckpointStore};
pub use context::{GluonContext, ReadLocation, SyncError, SyncSpec, WriteLocation};
pub use encode::DecodeError;
pub use field::{init_field, FieldSync, MaxField, MinField, PairMinField, SumField, Zero};
pub use memo::{FlagFilter, MemoTable, ProxyEntry};
pub use opts::{OptLevel, ParseOptLevelError};
pub use stats::{PhaseStats, RunStats, SyncStats, DEFAULT_EDGES_PER_SEC};
pub use value::SyncValue;

/// Structured tracing for the sync stack (re-exported `gluon-trace`).
pub use gluon_trace as trace;

/// Deterministic intra-host worker pool (re-exported `gluon-exec`).
pub use gluon_exec as exec;
pub use gluon_exec::{Pool, WorkSplit, CHUNK};
