//! Optimization levels (the UNOPT / OSI / OTI / OSTI knobs of Figure 10).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which communication optimizations are enabled.
///
/// * `structural` (§3): exploit partitioning invariants — skip or restrict
///   the reduce/broadcast patterns to the mirror subsets that can actually
///   have been written or will actually be read.
/// * `temporal` (§4): exploit the temporal invariance of the partitioning —
///   memoize address translation so that messages carry no global-IDs, and
///   encode update metadata compactly (dense / bit-vector / indices).
/// * `compress` (codec v2): admit the compressed wire modes — varint
///   delta-coded index lists, run-length-coded bitvecs, and same-value
///   collapsing — as extra candidates for the §4.2 size-based selector.
///   Only meaningful when `temporal` is on; turning it off reproduces the
///   original three-mode wire format byte for byte.
///
/// # Examples
///
/// ```
/// use gluon::OptLevel;
///
/// assert_eq!("osti".parse::<OptLevel>().unwrap(), OptLevel::OSTI);
/// assert!(OptLevel::OSTI.structural && OptLevel::OSTI.temporal);
/// assert!(!OptLevel::UNOPT.structural && !OptLevel::UNOPT.temporal);
/// // The codec-v1 baseline: same optimizations, pre-compression wire format.
/// let baseline = OptLevel::OSTI.without_compression();
/// assert_eq!(baseline.to_string(), "osti-nc");
/// assert_eq!("osti-nc".parse::<OptLevel>().unwrap(), baseline);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct OptLevel {
    /// Exploit structural invariants of the partitioning policy.
    pub structural: bool,
    /// Exploit temporal invariance (memoization + metadata encoding).
    pub temporal: bool,
    /// Admit the codec-v2 compressed wire modes as selector candidates.
    pub compress: bool,
}

impl OptLevel {
    /// Both optimizations off: the gather-apply-scatter baseline that sends
    /// global-IDs with every value.
    pub const UNOPT: OptLevel = OptLevel {
        structural: false,
        temporal: false,
        compress: true,
    };
    /// Structural invariants only.
    pub const OSI: OptLevel = OptLevel {
        structural: true,
        temporal: false,
        compress: true,
    };
    /// Temporal invariance only.
    pub const OTI: OptLevel = OptLevel {
        structural: false,
        temporal: true,
        compress: true,
    };
    /// Both on: standard Gluon.
    pub const OSTI: OptLevel = OptLevel {
        structural: true,
        temporal: true,
        compress: true,
    };

    /// The four levels in the paper's presentation order.
    pub const ALL: [OptLevel; 4] = [Self::UNOPT, Self::OSI, Self::OTI, Self::OSTI];

    /// Lowercase name (`unopt`, `osi`, `oti`, `osti`). Does not reflect the
    /// `compress` knob; [`fmt::Display`] appends `-nc` for that.
    pub fn name(self) -> &'static str {
        match (self.structural, self.temporal) {
            (false, false) => "unopt",
            (true, false) => "osi",
            (false, true) => "oti",
            (true, true) => "osti",
        }
    }

    /// The same level with the codec-v2 compressed modes disabled — the
    /// pre-compression wire-format baseline, byte for byte.
    pub fn without_compression(self) -> OptLevel {
        OptLevel {
            compress: false,
            ..self
        }
    }
}

impl Default for OptLevel {
    /// The default is full Gluon ([`OptLevel::OSTI`]).
    fn default() -> Self {
        OptLevel::OSTI
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())?;
        if !self.compress {
            f.write_str("-nc")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for OptLevel {
    type Err = ParseOptLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (base, compress) = match s.strip_suffix("-nc") {
            Some(base) => (base, false),
            None => (s, true),
        };
        let level = match base {
            "unopt" => OptLevel::UNOPT,
            "osi" => OptLevel::OSI,
            "oti" => OptLevel::OTI,
            "osti" => OptLevel::OSTI,
            _ => return Err(ParseOptLevelError(s.to_owned())),
        };
        Ok(OptLevel { compress, ..level })
    }
}

/// Error parsing an [`OptLevel`] name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseOptLevelError(String);

impl fmt::Display for ParseOptLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown optimization level {:?}, expected unopt/osi/oti/osti with an optional -nc suffix",
            self.0
        )
    }
}

impl std::error::Error for ParseOptLevelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for level in OptLevel::ALL {
            assert_eq!(level.name().parse::<OptLevel>().expect("parses"), level);
            let nc = level.without_compression();
            assert_eq!(nc.to_string().parse::<OptLevel>().expect("parses"), nc);
        }
        assert!("best".parse::<OptLevel>().is_err());
        assert!("-nc".parse::<OptLevel>().is_err());
    }

    #[test]
    fn default_is_full_gluon() {
        assert_eq!(OptLevel::default(), OptLevel::OSTI);
        assert!(OptLevel::default().compress);
    }
}
