//! Optimization levels (the UNOPT / OSI / OTI / OSTI knobs of Figure 10).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which communication optimizations are enabled.
///
/// * `structural` (§3): exploit partitioning invariants — skip or restrict
///   the reduce/broadcast patterns to the mirror subsets that can actually
///   have been written or will actually be read.
/// * `temporal` (§4): exploit the temporal invariance of the partitioning —
///   memoize address translation so that messages carry no global-IDs, and
///   encode update metadata compactly (dense / bit-vector / indices).
///
/// # Examples
///
/// ```
/// use gluon::OptLevel;
///
/// assert_eq!("osti".parse::<OptLevel>().unwrap(), OptLevel::OSTI);
/// assert!(OptLevel::OSTI.structural && OptLevel::OSTI.temporal);
/// assert!(!OptLevel::UNOPT.structural && !OptLevel::UNOPT.temporal);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct OptLevel {
    /// Exploit structural invariants of the partitioning policy.
    pub structural: bool,
    /// Exploit temporal invariance (memoization + metadata encoding).
    pub temporal: bool,
}

impl OptLevel {
    /// Both optimizations off: the gather-apply-scatter baseline that sends
    /// global-IDs with every value.
    pub const UNOPT: OptLevel = OptLevel {
        structural: false,
        temporal: false,
    };
    /// Structural invariants only.
    pub const OSI: OptLevel = OptLevel {
        structural: true,
        temporal: false,
    };
    /// Temporal invariance only.
    pub const OTI: OptLevel = OptLevel {
        structural: false,
        temporal: true,
    };
    /// Both on: standard Gluon.
    pub const OSTI: OptLevel = OptLevel {
        structural: true,
        temporal: true,
    };

    /// The four levels in the paper's presentation order.
    pub const ALL: [OptLevel; 4] = [Self::UNOPT, Self::OSI, Self::OTI, Self::OSTI];

    /// Lowercase name (`unopt`, `osi`, `oti`, `osti`).
    pub fn name(self) -> &'static str {
        match (self.structural, self.temporal) {
            (false, false) => "unopt",
            (true, false) => "osi",
            (false, true) => "oti",
            (true, true) => "osti",
        }
    }
}

impl Default for OptLevel {
    /// The default is full Gluon ([`OptLevel::OSTI`]).
    fn default() -> Self {
        OptLevel::OSTI
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for OptLevel {
    type Err = ParseOptLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "unopt" => Ok(OptLevel::UNOPT),
            "osi" => Ok(OptLevel::OSI),
            "oti" => Ok(OptLevel::OTI),
            "osti" => Ok(OptLevel::OSTI),
            _ => Err(ParseOptLevelError(s.to_owned())),
        }
    }
}

/// Error parsing an [`OptLevel`] name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseOptLevelError(String);

impl fmt::Display for ParseOptLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown optimization level {:?}, expected unopt/osi/oti/osti",
            self.0
        )
    }
}

impl std::error::Error for ParseOptLevelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for level in OptLevel::ALL {
            assert_eq!(level.name().parse::<OptLevel>().expect("parses"), level);
        }
        assert!("best".parse::<OptLevel>().is_err());
    }

    #[test]
    fn default_is_full_gluon() {
        assert_eq!(OptLevel::default(), OptLevel::OSTI);
    }
}
