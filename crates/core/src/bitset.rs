//! Dense bit-vector over a host's proxies.
//!
//! The shared-memory engine hands Gluon "a field-specific bit-vector that
//! indicates which nodes' labels have changed" (§4.2). [`DenseBitset`] is
//! that bit-vector: fixed capacity (one bit per proxy), cheap to clear, and
//! iterable in ascending order.

use gluon_graph::Lid;

/// Fixed-capacity bit set indexed by [`Lid`].
///
/// # Examples
///
/// ```
/// use gluon::DenseBitset;
/// use gluon_graph::Lid;
///
/// let mut bits = DenseBitset::new(100);
/// bits.set(Lid(3));
/// bits.set(Lid(64));
/// assert!(bits.test(Lid(3)));
/// assert_eq!(bits.count_ones(), 2);
/// assert_eq!(bits.iter().collect::<Vec<_>>(), vec![Lid(3), Lid(64)]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseBitset {
    words: Vec<u64>,
    capacity: u32,
}

impl DenseBitset {
    /// Creates an empty set with room for `capacity` bits.
    pub fn new(capacity: u32) -> Self {
        DenseBitset {
            words: vec![0; (capacity as usize).div_ceil(64)],
            capacity,
        }
    }

    /// Number of bits the set can hold.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Sets bit `lid`.
    ///
    /// # Panics
    ///
    /// Panics if `lid` is out of range.
    #[inline]
    pub fn set(&mut self, lid: Lid) {
        assert!(
            lid.0 < self.capacity,
            "{lid} beyond capacity {}",
            self.capacity
        );
        self.words[lid.index() / 64] |= 1u64 << (lid.index() % 64);
    }

    /// Clears bit `lid`.
    ///
    /// # Panics
    ///
    /// Panics if `lid` is out of range.
    #[inline]
    pub fn clear(&mut self, lid: Lid) {
        assert!(
            lid.0 < self.capacity,
            "{lid} beyond capacity {}",
            self.capacity
        );
        self.words[lid.index() / 64] &= !(1u64 << (lid.index() % 64));
    }

    /// Tests bit `lid`.
    ///
    /// # Panics
    ///
    /// Panics if `lid` is out of range.
    #[inline]
    pub fn test(&self, lid: Lid) -> bool {
        assert!(
            lid.0 < self.capacity,
            "{lid} beyond capacity {}",
            self.capacity
        );
        self.words[lid.index() / 64] & (1u64 << (lid.index() % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit in `0..capacity`.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        let tail = self.capacity as usize % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &DenseBitset) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The raw backing words (little-endian bit order within each word),
    /// for checkpointing.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites the backing words from a checkpointed snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `words` was taken from a bitset of a different capacity.
    pub fn copy_from_words(&mut self, words: &[u64]) {
        assert_eq!(
            self.words.len(),
            words.len(),
            "word count mismatch: snapshot from a different capacity"
        );
        self.words.copy_from_slice(words);
        // Re-mask the tail so stray high bits cannot appear past capacity.
        let tail = self.capacity as usize % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Iterates over set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set bits of a [`DenseBitset`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = Lid;

    fn next(&mut self) -> Option<Lid> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(Lid((self.word_idx * 64) as u32 + bit))
    }
}

impl<'a> IntoIterator for &'a DenseBitset {
    type Item = Lid;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear() {
        let mut b = DenseBitset::new(130);
        assert!(!b.test(Lid(129)));
        b.set(Lid(129));
        assert!(b.test(Lid(129)));
        b.clear(Lid(129));
        assert!(!b.test(Lid(129)));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut b = DenseBitset::new(200);
        let picks = [0u32, 1, 63, 64, 65, 127, 128, 199];
        for &p in &picks {
            b.set(Lid(p));
        }
        let seen: Vec<u32> = b.iter().map(|l| l.0).collect();
        assert_eq!(seen, picks);
    }

    #[test]
    fn set_all_respects_capacity() {
        let mut b = DenseBitset::new(70);
        b.set_all();
        assert_eq!(b.count_ones(), 70);
        let max = b.iter().last().expect("non-empty");
        assert_eq!(max, Lid(69));
    }

    #[test]
    fn union_merges() {
        let mut a = DenseBitset::new(10);
        let mut b = DenseBitset::new(10);
        a.set(Lid(1));
        b.set(Lid(8));
        a.union_with(&b);
        assert!(a.test(Lid(1)) && a.test(Lid(8)));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn clear_all_empties() {
        let mut b = DenseBitset::new(100);
        b.set_all();
        b.clear_all();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn empty_capacity_is_fine() {
        let b = DenseBitset::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_set_panics() {
        DenseBitset::new(5).set(Lid(5));
    }
}
