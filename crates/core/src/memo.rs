//! Memoization of address translation (§4.1).
//!
//! Before computation starts, every pair of hosts agrees on *which* proxies
//! will flow between them and *in what order*, so that sync messages can
//! carry bare values (or values plus a small positional bit-vector) instead
//! of `(global-ID, value)` pairs.
//!
//! The handshake: each host sends every other host the global-IDs of its
//! mirrors whose masters live there, together with two structural bits per
//! mirror (does the mirror have local incoming / outgoing edges — §3's
//! invariants). The receiving host translates the global-IDs to the local
//! ids of its masters. Afterwards host A's `mirrors[B]` and host B's
//! `masters[A]` name the same nodes in the same order, and global-IDs never
//! appear on the wire again.

use crate::comm_tags::MEMO_TAG;
use bytes::{BufMut, Bytes, BytesMut};
use gluon_graph::{HostId, Lid};
use gluon_net::{Communicator, Transport};
use gluon_partition::LocalGraph;

/// One proxy in an agreed list: the local id on *this* host plus the
/// structural flags of the **mirror** proxy (identical on both sides of the
/// agreement, because the mirror's host measured them and shipped them).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProxyEntry {
    /// Local id (a mirror lid in `mirrors` lists, a master lid in `masters`
    /// lists).
    pub lid: Lid,
    /// The mirror proxy has local incoming edges (it can be *written* by
    /// the owning host's compute phase).
    pub mirror_has_in: bool,
    /// The mirror proxy has local outgoing edges (it will be *read* by the
    /// owning host's compute phase).
    pub mirror_has_out: bool,
}

/// Which proxies of an agreed list participate in a particular pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlagFilter {
    /// Every proxy (structural invariants disabled, or UVC-style policies).
    All,
    /// Only proxies whose mirror has local incoming edges.
    MirrorHasIn,
    /// Only proxies whose mirror has local outgoing edges.
    MirrorHasOut,
}

impl FlagFilter {
    fn admits(self, e: &ProxyEntry) -> bool {
        match self {
            FlagFilter::All => true,
            FlagFilter::MirrorHasIn => e.mirror_has_in,
            FlagFilter::MirrorHasOut => e.mirror_has_out,
        }
    }
}

/// The per-host result of the memoization handshake.
#[derive(Clone, Debug, Default)]
pub struct MemoTable {
    /// `mirrors[h]`: this host's mirror proxies mastered on `h`, gid order.
    pub mirrors: Vec<Vec<ProxyEntry>>,
    /// `masters[h]`: this host's master proxies that have a mirror on `h`,
    /// in the same order as `h`'s `mirrors[self]`.
    pub masters: Vec<Vec<ProxyEntry>>,
}

impl MemoTable {
    /// Runs the handshake; call on every host.
    pub fn exchange<T: Transport + ?Sized>(
        graph: &LocalGraph,
        comm: &Communicator<'_, T>,
    ) -> MemoTable {
        let n = comm.world_size();
        let rank = comm.rank();
        // Describe my mirrors to each owner.
        let mut mirrors: Vec<Vec<ProxyEntry>> = Vec::with_capacity(n);
        let mut outgoing: Vec<Bytes> = Vec::with_capacity(n);
        for h in 0..n {
            let mine = graph.mirrors_on(h);
            let mut buf = BytesMut::with_capacity(mine.len() * 5);
            let mut entries = Vec::with_capacity(mine.len());
            for lid in mine {
                let has_in = graph.has_local_in_edges(lid);
                let has_out = graph.has_local_out_edges(lid);
                buf.put_u32_le(graph.gid(lid).0);
                buf.put_u8(u8::from(has_in) | (u8::from(has_out) << 1));
                entries.push(ProxyEntry {
                    lid,
                    mirror_has_in: has_in,
                    mirror_has_out: has_out,
                });
            }
            mirrors.push(entries);
            outgoing.push(buf.freeze());
        }
        // One explicit message per pair (tagged MEMO_TAG) so that this
        // startup traffic is visible in the byte counters like any other.
        for (dst, payload) in outgoing.into_iter().enumerate() {
            if dst != rank {
                comm.transport()
                    .try_send(dst, MEMO_TAG, payload)
                    .unwrap_or_else(|e| {
                        panic!("memoization exchange: send to host {dst} failed: {e}")
                    });
            }
        }
        let mut masters: Vec<Vec<ProxyEntry>> = vec![Vec::new(); n];
        for (src, slot) in masters.iter_mut().enumerate() {
            if src == rank {
                continue;
            }
            let payload = comm
                .transport()
                .try_recv(src, MEMO_TAG)
                .unwrap_or_else(|e| {
                    panic!("memoization exchange: recv from host {src} failed: {e}")
                });
            assert_eq!(payload.len() % 5, 0, "memoization payload framing");
            let mut entries = Vec::with_capacity(payload.len() / 5);
            for chunk in payload.chunks_exact(5) {
                let gid = u32::from_le_bytes(chunk[..4].try_into().expect("gid"));
                let flags = chunk[4];
                let lid = graph
                    .lid(gluon_graph::Gid(gid))
                    .expect("mirror's master exists on owning host");
                debug_assert!(graph.is_master(lid), "memoized proxy must be a master");
                entries.push(ProxyEntry {
                    lid,
                    mirror_has_in: flags & 1 != 0,
                    mirror_has_out: flags & 2 != 0,
                });
            }
            *slot = entries;
        }
        MemoTable { mirrors, masters }
    }

    /// This host's mirror lids for owner `h` admitted by `filter`, in the
    /// agreed order.
    pub fn mirror_list(&self, h: HostId, filter: FlagFilter) -> Vec<Lid> {
        self.mirrors[h]
            .iter()
            .filter(|e| filter.admits(e))
            .map(|e| e.lid)
            .collect()
    }

    /// This host's master lids mirrored on `h` admitted by `filter`, in the
    /// agreed order.
    pub fn master_list(&self, h: HostId, filter: FlagFilter) -> Vec<Lid> {
        self.masters[h]
            .iter()
            .filter(|e| filter.admits(e))
            .map(|e| e.lid)
            .collect()
    }

    /// Total number of mirror entries (memory-overhead accounting).
    pub fn total_entries(&self) -> usize {
        self.mirrors.iter().map(Vec::len).sum::<usize>()
            + self.masters.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::gen;
    use gluon_net::run_cluster;
    use gluon_partition::{partition_on_host, Policy};

    fn tables_for(policy: Policy, hosts: usize) -> Vec<(LocalGraph, MemoTable)> {
        let g = gen::rmat(6, 4, Default::default(), 17);
        run_cluster(hosts, |ep| {
            let comm = Communicator::new(ep);
            let lg = partition_on_host(&g, policy, &comm);
            let memo = MemoTable::exchange(&lg, &comm);
            (lg, memo)
        })
    }

    #[test]
    fn pairwise_agreement_on_nodes_and_order() {
        for policy in Policy::ALL {
            let per_host = tables_for(policy, 3);
            for (a, (lg_a, memo_a)) in per_host.iter().enumerate() {
                for (b, (lg_b, memo_b)) in per_host.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    // a's mirrors owned by b == b's masters mirrored on a.
                    let mine = &memo_a.mirrors[b];
                    let theirs = &memo_b.masters[a];
                    assert_eq!(mine.len(), theirs.len(), "{policy} {a}->{b}");
                    for (ea, eb) in mine.iter().zip(theirs) {
                        assert_eq!(lg_a.gid(ea.lid), lg_b.gid(eb.lid), "{policy}");
                        assert_eq!(ea.mirror_has_in, eb.mirror_has_in);
                        assert_eq!(ea.mirror_has_out, eb.mirror_has_out);
                    }
                }
            }
        }
    }

    #[test]
    fn filters_produce_matching_sublists() {
        let per_host = tables_for(Policy::Cvc, 4);
        for (a, (lg_a, memo_a)) in per_host.iter().enumerate() {
            for (b, (lg_b, memo_b)) in per_host.iter().enumerate() {
                if a == b {
                    continue;
                }
                for filter in [
                    FlagFilter::All,
                    FlagFilter::MirrorHasIn,
                    FlagFilter::MirrorHasOut,
                ] {
                    let mine = memo_a.mirror_list(b, filter);
                    let theirs = memo_b.master_list(a, filter);
                    let gids_a: Vec<_> = mine.iter().map(|&l| lg_a.gid(l)).collect();
                    let gids_b: Vec<_> = theirs.iter().map(|&l| lg_b.gid(l)).collect();
                    assert_eq!(gids_a, gids_b, "filter {filter:?}");
                }
            }
        }
    }

    #[test]
    fn oec_mirrors_never_have_out_edges() {
        let per_host = tables_for(Policy::Oec, 3);
        for (_, memo) in &per_host {
            for list in &memo.mirrors {
                assert!(list.iter().all(|e| !e.mirror_has_out));
            }
        }
    }

    #[test]
    fn single_host_table_is_empty() {
        let per_host = tables_for(Policy::Oec, 1);
        assert_eq!(per_host[0].1.total_entries(), 0);
    }
}
