//! Fixed-size wire encoding of synchronized label values.

use bytes::BufMut;

/// A node-label value that Gluon can put on the wire.
///
/// Implementations are fixed-size little-endian encodings; the sync layer
/// relies on [`SyncValue::WIRE_BYTES`] to slice incoming payloads without
/// any per-value framing.
///
/// Values are `Send + Sync` so the parallel sync path can extract and
/// encode them from worker threads.
pub trait SyncValue: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Encoded size in bytes.
    const WIRE_BYTES: usize;

    /// Appends the encoding of `self` to `buf`.
    fn write_to<B: BufMut>(self, buf: &mut B);

    /// Decodes a value from the first [`SyncValue::WIRE_BYTES`] bytes of
    /// `raw`.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is shorter than [`SyncValue::WIRE_BYTES`].
    fn read_from(raw: &[u8]) -> Self;
}

macro_rules! int_sync_value {
    ($ty:ty, $bytes:expr) => {
        impl SyncValue for $ty {
            const WIRE_BYTES: usize = $bytes;

            fn write_to<B: BufMut>(self, buf: &mut B) {
                buf.put_slice(&self.to_le_bytes());
            }

            fn read_from(raw: &[u8]) -> Self {
                <$ty>::from_le_bytes(raw[..$bytes].try_into().expect("enough bytes"))
            }
        }
    };
}

int_sync_value!(u32, 4);
int_sync_value!(u64, 8);
int_sync_value!(i32, 4);
int_sync_value!(i64, 8);
int_sync_value!(f32, 4);
int_sync_value!(f64, 8);

/// Pairs encode as the concatenation of their parts (used e.g. for
/// argmin-style reductions carrying `(value, node)` tuples).
impl<A: SyncValue, B: SyncValue> SyncValue for (A, B) {
    const WIRE_BYTES: usize = A::WIRE_BYTES + B::WIRE_BYTES;

    fn write_to<Buf: BufMut>(self, buf: &mut Buf) {
        self.0.write_to(buf);
        self.1.write_to(buf);
    }

    fn read_from(raw: &[u8]) -> Self {
        (A::read_from(raw), B::read_from(&raw[A::WIRE_BYTES..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn round_trip<V: SyncValue>(v: V) {
        let mut buf = BytesMut::new();
        v.write_to(&mut buf);
        assert_eq!(buf.len(), V::WIRE_BYTES);
        assert_eq!(V::read_from(&buf), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u32);
        round_trip(u32::MAX);
        round_trip(u64::MAX - 1);
        round_trip(-5i32);
        round_trip(i64::MIN);
        round_trip(1.25f32);
        round_trip(-0.85f64);
    }

    #[test]
    fn pairs_round_trip() {
        round_trip((7u32, 9u64));
        round_trip((0.5f64, u32::MAX));
    }

    #[test]
    fn values_pack_back_to_back() {
        let mut buf = BytesMut::new();
        1u32.write_to(&mut buf);
        2u32.write_to(&mut buf);
        assert_eq!(u32::read_from(&buf[4..]), 2);
    }
}
