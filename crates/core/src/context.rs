//! The per-host Gluon runtime: setup, the sync call, and termination
//! detection.

use crate::arena::{FieldArena, PeerScratch, SyncArena, SLOT_RING_CAP};
use crate::bitset::DenseBitset;
use crate::checkpoint::{CheckpointSnapshot, CheckpointStore};
use crate::comm_tags::{sync_tag, SYNC_TAG_WINDOW};
use crate::encode::{
    decode_gid_values, decode_memoized_scratch, encode_gid_values_into, encode_memoized_into,
    DecodeError, DecodeScratch, EncodeScratch, WireMode,
};
use crate::field::FieldSync;
use crate::memo::{FlagFilter, MemoTable};
use crate::opts::OptLevel;
use crate::stats::{PhaseStats, SyncStats};
use crate::value::SyncValue;
use bytes::Bytes;
use gluon_exec::Pool;
use gluon_graph::{Gid, HostId, Lid};
use gluon_metrics::{HostMetrics, PeerTable, SyncMetrics, NUM_ROUND_STAGES};
use gluon_net::{Communicator, NetError, Transport};
use gluon_partition::LocalGraph;
use gluon_trace::{Stage, Tracer, SETUP_PHASE};
use std::time::Instant;

/// Phase-record headroom reserved at setup so steady-state rounds never
/// grow the phase log (one entry per sync or collective call; growth past
/// this is still correct, merely no longer allocation-free).
const PHASE_RESERVE: usize = 1024;

/// Why a [`GluonContext::try_sync`] call failed.
///
/// Network failure (a peer declared dead by the reliability layer) and
/// decode failure (a received payload that does not parse — a corrupted
/// frame on an unprotected transport, or a peer speaking a different wire
/// format) both leave the field partially reconciled: the error is
/// terminal for the run, not retryable, but it *is* survivable — the host
/// thread gets the error instead of aborting, and every decode failure is
/// counted in [`crate::SyncStats::decode_errors`], in
/// `gluon_net::NetStats`, and as a `decode_error` trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncError {
    /// A peer became unreachable mid-sync.
    Net(NetError),
    /// A received payload failed to decode.
    Decode {
        /// The peer whose payload was malformed.
        peer: usize,
        /// What was wrong with the bytes.
        error: DecodeError,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Net(e) => write!(f, "{e}"),
            SyncError::Decode { peer, error } => {
                write!(f, "undecodable sync payload from host {peer}: {error}")
            }
        }
    }
}

impl std::error::Error for SyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyncError::Net(e) => Some(e),
            SyncError::Decode { error, .. } => Some(error),
        }
    }
}

impl From<NetError> for SyncError {
    fn from(e: NetError) -> Self {
        SyncError::Net(e)
    }
}

/// Where the operator *writes* the synchronized field, relative to edge
/// direction (the paper's `WriteAtSource` / `WriteAtDestination` tags).
///
/// Gluon derives the reduce pattern from this: only mirror proxies that can
/// have been written need their partial values shipped to the master.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WriteLocation {
    /// Written at edge sources (reverse/backward operators).
    Source,
    /// Written at edge destinations (push operators writing out-neighbors,
    /// pull operators writing the active node).
    Destination,
    /// No exploitable structure: any proxy may have been written.
    Any,
}

/// Where the operator *reads* the synchronized field in the next round
/// (the paper's `ReadAtSource` / `ReadAtDestination` tags).
///
/// Gluon derives the broadcast pattern from this: only mirror proxies that
/// will be read need the master's canonical value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReadLocation {
    /// Read at edge sources (push operators reading the active node, pull
    /// operators reading in-neighbors).
    Source,
    /// Read at edge destinations.
    Destination,
    /// No exploitable structure: any proxy may be read.
    Any,
}

impl WriteLocation {
    /// Mirror subset that may have been written and therefore must reduce.
    fn filter(self, structural: bool) -> FlagFilter {
        if !structural {
            return FlagFilter::All;
        }
        match self {
            // Written at destinations => only mirrors with local incoming
            // edges can hold partial values.
            WriteLocation::Destination => FlagFilter::MirrorHasIn,
            WriteLocation::Source => FlagFilter::MirrorHasOut,
            WriteLocation::Any => FlagFilter::All,
        }
    }
}

impl ReadLocation {
    /// Mirror subset that will be read and therefore must hear a broadcast.
    fn filter(self, structural: bool) -> FlagFilter {
        if !structural {
            return FlagFilter::All;
        }
        match self {
            // Read at sources => only mirrors with local outgoing edges
            // will be consulted.
            ReadLocation::Source => FlagFilter::MirrorHasOut,
            ReadLocation::Destination => FlagFilter::MirrorHasIn,
            ReadLocation::Any => FlagFilter::All,
        }
    }
}

fn filter_index(f: FlagFilter) -> usize {
    match f {
        FlagFilter::All => 0,
        FlagFilter::MirrorHasIn => 1,
        FlagFilter::MirrorHasOut => 2,
    }
}

/// A synchronization specification: *where* the operator wrote the field,
/// *where* the next round reads it, and optional field metadata — the
/// bundle every [`GluonContext::sync`] call needs.
///
/// A spec with both locations set runs reduce then broadcast; a
/// reduce-only or broadcast-only spec runs a single pattern. Construct
/// specs once (they are `const`) and reuse them across rounds:
///
/// ```
/// use gluon::{ReadLocation, SyncSpec, WriteLocation};
///
/// // The push min-relaxation pattern of bfs/sssp/cc.
/// const PUSH: SyncSpec =
///     SyncSpec::full(WriteLocation::Destination, ReadLocation::Source).named("dist");
/// assert_eq!(PUSH.write, Some(WriteLocation::Destination));
///
/// // Partial sums consumed at the master: reduce only.
/// const PARTIALS: SyncSpec = SyncSpec::reduce(WriteLocation::Destination);
/// assert_eq!(PARTIALS.read, None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyncSpec {
    /// Where the operator writes the field (None: skip the reduce
    /// pattern).
    pub write: Option<WriteLocation>,
    /// Where the field is read next round (None: skip the broadcast
    /// pattern).
    pub read: Option<ReadLocation>,
    /// Field name used in trace output (wire-mode histograms); defaults to
    /// the [`FieldSync`] implementor's type name.
    pub name: Option<&'static str>,
}

impl SyncSpec {
    /// Reduce then broadcast — the full sync of the paper's Figure 4.
    pub const fn full(write: WriteLocation, read: ReadLocation) -> SyncSpec {
        SyncSpec {
            write: Some(write),
            read: Some(read),
            name: None,
        }
    }

    /// Reduce only (mirrors → masters): for fields consumed at the master
    /// and never read back at mirrors.
    pub const fn reduce(write: WriteLocation) -> SyncSpec {
        SyncSpec {
            write: Some(write),
            read: None,
            name: None,
        }
    }

    /// Broadcast only (masters → mirrors): for fields written only at
    /// masters and read at mirrors next round.
    pub const fn broadcast(read: ReadLocation) -> SyncSpec {
        SyncSpec {
            write: None,
            read: Some(read),
            name: None,
        }
    }

    /// Attaches a field name for trace output.
    pub const fn named(mut self, name: &'static str) -> SyncSpec {
        self.name = Some(name);
        self
    }
}

/// The per-host Gluon runtime handle.
///
/// Create one per host after partitioning (the constructor runs the
/// memoization handshake of §4.1), then alternate between local compute —
/// using any shared-memory engine — and [`GluonContext::sync`] calls.
///
/// # Examples
///
/// See the crate-level docs for a complete distributed BFS.
pub struct GluonContext<'a, T: Transport + ?Sized> {
    graph: &'a LocalGraph,
    comm: &'a Communicator<'a, T>,
    opts: OptLevel,
    memo: MemoTable,
    /// `[filter][remote] -> agreed mirror-side list`, precomputed.
    mirror_lists: [Vec<Vec<Lid>>; 3],
    /// `[filter][remote] -> agreed master-side list`, precomputed.
    master_lists: [Vec<Vec<Lid>>; 3],
    stats: SyncStats,
    tracer: Tracer,
    seq: u32,
    mark: Instant,
    pending_work: u64,
    pending_crit_work: u64,
    pool: Pool,
    arena: SyncArena,
    ckpt: Option<CheckpointCfg>,
    metrics: SyncMetrics,
}

/// Checkpoint/recovery configuration attached to a context (absent in the
/// default, allocation-free steady state).
struct CheckpointCfg {
    store: CheckpointStore,
    /// Snapshot every `every` algorithm rounds.
    every: u64,
    /// Epoch (= round) to restore from before computing, when recovering.
    restore_epoch: Option<u64>,
    /// Restore and produce output without running further rounds (the
    /// `ContinueStale` degradation policy).
    finalize_only: bool,
}

/// Splits one sync call into contiguous timed segments, each emitted as a
/// child span. Exactly one segment is open at any moment between `begin`
/// and `finish`, so the segment durations partition the whole interval —
/// which is what lets the runtime *define* a traced phase's `comm_secs` as
/// their sum and keep the "children sum to the parent" invariant exact
/// (up to float accumulation).
///
/// The segment clock is shared by two consumers: the tracer (per-segment
/// child spans) and the metrics layer (per-stage duration totals plus
/// per-peer send/recv-wait attribution). It runs when *either* is enabled;
/// with both disabled every method is a no-op behind one `Option` check.
struct Segmenter {
    inner: Option<SegState>,
}

struct SegState {
    tracer: Tracer,
    peers: PeerTable,
    host: usize,
    phase: u32,
    start_ns: u64,
    last_wall: Instant,
    last_ns: u64,
    cur: (Stage, Option<usize>),
    stage_totals: [u64; NUM_ROUND_STAGES],
}

/// What a finished segment clock measured: the covered interval and its
/// decomposition into the eight per-round micro-stages.
struct SegTotals {
    total_ns: u64,
    stage_ns: [u64; NUM_ROUND_STAGES],
}

/// The metrics index of a trace stage: the first [`NUM_ROUND_STAGES`]
/// `Stage` discriminants coincide with `gluon_metrics::ROUND_STAGE_NAMES`
/// (asserted in this module's tests); later stages (collective, parents)
/// are not per-round micro-stages.
fn round_stage_index(stage: Stage) -> Option<usize> {
    let i = stage as usize;
    (i < NUM_ROUND_STAGES).then_some(i)
}

impl Segmenter {
    /// Starts segmenting with an initial open stage (so even a phase that
    /// never switches stages gets one covering child span).
    fn begin(
        tracer: &Tracer,
        metrics: &SyncMetrics,
        host: usize,
        phase: u32,
        first: Stage,
    ) -> Segmenter {
        Segmenter {
            inner: (tracer.is_enabled() || metrics.is_enabled()).then(|| {
                // now_ns() is 0 for a disabled tracer; segment durations
                // come from Instant arithmetic either way, so the metrics
                // totals are exact even without a trace epoch.
                let start_ns = tracer.now_ns();
                SegState {
                    tracer: tracer.clone(),
                    peers: metrics.peers().clone(),
                    host,
                    phase,
                    start_ns,
                    last_wall: Instant::now(),
                    last_ns: start_ns,
                    cur: (first, None),
                    stage_totals: [0; NUM_ROUND_STAGES],
                }
            }),
        }
    }

    fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Closes the open segment and opens the next one.
    #[inline]
    fn stage(&mut self, stage: Stage, peer: Option<usize>) {
        let Some(st) = &mut self.inner else { return };
        st.cut();
        st.cur = (stage, peer);
    }

    /// Closes the final segment and emits the parent span; returns the
    /// totals covered (None when both consumers are disabled).
    fn finish(self) -> Option<SegTotals> {
        let mut st = self.inner?;
        st.cut();
        let total = st.last_ns - st.start_ns;
        st.tracer
            .record_span(st.host, st.phase, Stage::Sync, None, st.start_ns, total);
        Some(SegTotals {
            total_ns: total,
            stage_ns: st.stage_totals,
        })
    }
}

impl SegState {
    fn cut(&mut self) {
        let now = Instant::now();
        let now_ns = self.last_ns + now.duration_since(self.last_wall).as_nanos() as u64;
        let (stage, peer) = self.cur;
        let dur = now_ns - self.last_ns;
        self.tracer
            .record_span(self.host, self.phase, stage, peer, self.last_ns, dur);
        if let Some(i) = round_stage_index(stage) {
            self.stage_totals[i] += dur;
        }
        if let Some(p) = peer {
            // Send and recv_wait keep their peer in both the sequential
            // and the parallel paths, so this attribution works at every
            // thread count.
            match stage {
                Stage::Send => self.peers.add_send_ns(p, dur),
                Stage::RecvWait => self.peers.add_recv_wait_ns(p, dur),
                _ => {}
            }
        }
        self.last_wall = now;
        self.last_ns = now_ns;
    }
}

impl<'a, T: Transport + ?Sized> GluonContext<'a, T> {
    /// Sets up the runtime: exchanges memoization metadata with every other
    /// host and precomputes the agreed proxy lists.
    ///
    /// All hosts must call this collectively.
    pub fn new(graph: &'a LocalGraph, comm: &'a Communicator<'a, T>, opts: OptLevel) -> Self {
        let tracer = comm.tracer().clone();
        let memo_start_ns = tracer.now_ns();
        let start = Instant::now();
        let bytes_before = comm.transport().stats().snapshot();
        let memo = MemoTable::exchange(graph, comm);
        let n = comm.world_size();
        let mut mirror_lists: [Vec<Vec<Lid>>; 3] = Default::default();
        let mut master_lists: [Vec<Vec<Lid>>; 3] = Default::default();
        for f in [
            FlagFilter::All,
            FlagFilter::MirrorHasIn,
            FlagFilter::MirrorHasOut,
        ] {
            let fi = filter_index(f);
            mirror_lists[fi] = (0..n).map(|h| memo.mirror_list(h, f)).collect();
            master_lists[fi] = (0..n).map(|h| memo.master_list(h, f)).collect();
        }
        let memo_secs = start.elapsed().as_secs_f64();
        let rank = comm.rank();
        let snap = comm.transport().stats().snapshot();
        let memo_bytes: u64 = (0..n)
            .map(|dst| snap.bytes_between(rank, dst) - bytes_before.bytes_between(rank, dst))
            .sum();
        // Everyone finishes setup before any compute begins, like the real
        // system's graph-construction barrier.
        comm.barrier();
        tracer.record_span(
            rank,
            SETUP_PHASE,
            Stage::Memo,
            None,
            memo_start_ns,
            (memo_secs * 1e9) as u64,
        );
        GluonContext {
            graph,
            comm,
            opts,
            memo,
            mirror_lists,
            master_lists,
            stats: SyncStats {
                memo_secs,
                memo_bytes,
                phases: Vec::with_capacity(PHASE_RESERVE),
                ..Default::default()
            },
            tracer,
            seq: 0,
            mark: Instant::now(),
            pending_work: 0,
            pending_crit_work: 0,
            pool: Pool::sequential(),
            arena: SyncArena::new(true),
            ckpt: None,
            metrics: SyncMetrics::disabled(),
        }
    }

    /// Attaches this host's metrics bundle (builder style): the context
    /// then publishes wire-mode traffic, pool hit/miss, decode errors,
    /// per-stage times, and one [`gluon_metrics::RoundSample`] row per
    /// sync round. Registration happens here, once — every steady-state
    /// publication afterwards is a plain atomic op.
    ///
    /// Metrics count *payload* bytes handed to the transport's send path,
    /// which is deterministic across runs; `NetStats` (and
    /// [`crate::PhaseStats::bytes_sent`]) count wire frames, which include
    /// reliability-layer framing and timing-dependent heartbeats when a
    /// failure detector is configured.
    #[must_use]
    pub fn with_metrics(mut self, host: HostMetrics) -> Self {
        self.metrics = SyncMetrics::register(&host);
        self
    }

    /// The metrics bundle this context publishes into (disabled unless
    /// [`GluonContext::with_metrics`] was called).
    pub fn metrics(&self) -> &SyncMetrics {
        &self.metrics
    }

    /// Enables epoch checkpointing: every `every` algorithm rounds the
    /// engine snapshots its owned state into `store` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_checkpoints(mut self, store: CheckpointStore, every: u64) -> Self {
        assert!(every >= 1, "checkpoint interval must be at least 1 round");
        self.ckpt = Some(CheckpointCfg {
            store,
            every,
            restore_epoch: None,
            finalize_only: false,
        });
        self
    }

    /// Selects the checkpoint epoch to restore from before computing
    /// (no-op without [`GluonContext::with_checkpoints`]; `None` starts
    /// from scratch).
    #[must_use]
    pub fn with_restore_epoch(mut self, epoch: Option<u64>) -> Self {
        if let Some(c) = &mut self.ckpt {
            c.restore_epoch = epoch;
        }
        self
    }

    /// Puts the context in finalize-only mode: engines restore the chosen
    /// epoch and produce output without running further rounds (the
    /// `ContinueStale` degradation policy).
    #[must_use]
    pub fn with_finalize_only(mut self, finalize_only: bool) -> Self {
        if let Some(c) = &mut self.ckpt {
            c.finalize_only = finalize_only;
        }
        self
    }

    /// Whether engines should skip computation and only finalize restored
    /// state.
    pub fn finalize_only(&self) -> bool {
        self.ckpt.as_ref().is_some_and(|c| c.finalize_only)
    }

    /// Whether the engine should snapshot after completing `round`
    /// (1-based). Always false when checkpointing is off, keeping the
    /// steady state allocation-free.
    pub fn checkpoint_due(&self, round: u64) -> bool {
        self.ckpt
            .as_ref()
            .is_some_and(|c| round >= 1 && round.is_multiple_of(c.every))
    }

    /// Loads this host's snapshot at the configured restore epoch, if
    /// recovery selected one.
    pub fn restore_snapshot(&self) -> Option<CheckpointSnapshot> {
        let c = self.ckpt.as_ref()?;
        c.store.load(self.rank(), c.restore_epoch?)
    }

    /// Saves `snap` as this host's state at epoch `snap.round()` and
    /// records a `checkpoint` trace event. No-op when checkpointing is
    /// off.
    ///
    /// # Panics
    ///
    /// Panics if a file-backed store fails to write (an operator-level
    /// storage fault, not a recoverable cluster event).
    pub fn save_checkpoint(&mut self, snap: CheckpointSnapshot) {
        let Some(c) = &self.ckpt else { return };
        let round = snap.round();
        let bytes = snap.payload_bytes();
        c.store
            .save(self.rank(), round, snap)
            .unwrap_or_else(|e| panic!("checkpoint write for round {round} failed: {e}"));
        self.tracer
            .record_event(self.rank(), "checkpoint", self.rank(), bytes);
        self.metrics.on_checkpoint();
    }

    /// Installs an intra-host worker pool (builder style). The pool drives
    /// the sync hot path's extract/encode/decode stages and is what engines
    /// obtain through [`GluonContext::pool`]; the default is sequential.
    #[must_use]
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Replaces the intra-host worker pool.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// The intra-host worker pool (clone it to hand to an engine; clones
    /// share the work meter).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Enables or disables the cross-round sync buffer arena (builder
    /// style; enabled by default). Disabling changes no result — every
    /// sync call runs the identical code path over fresh buffers instead
    /// of pooled ones — only the allocation profile.
    #[must_use]
    pub fn with_arena(mut self, enabled: bool) -> Self {
        self.arena = SyncArena::new(enabled);
        self
    }

    /// The sync buffer arena (for inspection and tests).
    pub fn arena(&self) -> &SyncArena {
        &self.arena
    }

    /// The local partition this context synchronizes.
    pub fn graph(&self) -> &'a LocalGraph {
        self.graph
    }

    /// This host's rank.
    pub fn rank(&self) -> HostId {
        self.comm.rank()
    }

    /// Number of hosts.
    pub fn world_size(&self) -> usize {
        self.comm.world_size()
    }

    /// The optimization level in force.
    pub fn opts(&self) -> OptLevel {
        self.opts
    }

    /// The memoization table (for inspection and tests).
    pub fn memo(&self) -> &MemoTable {
        &self.memo
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// The tracer this context records spans into (adopted from the
    /// communicator; disabled unless the communicator was built with
    /// [`Communicator::with_tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Consumes the context, returning its statistics.
    pub fn into_stats(self) -> SyncStats {
        self.stats
    }

    /// Restarts the compute clock; call when timed work begins (e.g. after
    /// untimed initialization).
    pub fn reset_timer(&mut self) {
        self.mark = Instant::now();
    }

    /// Reports abstract compute work (edges traversed) done since the last
    /// phase. Engines call this so that compute time can be *modeled* even
    /// though the simulated hosts share physical cores; the amount is
    /// attributed to the next phase's [`crate::PhaseStats::work_units`].
    pub fn add_work(&mut self, units: u64) {
        self.add_work_split(units, units);
    }

    /// Reports pre-measured parallel work: `seq` units of total work whose
    /// critical path under the current pool was `crit` units. Sequential
    /// kernels have `crit == seq`; [`GluonContext::add_work`] is that
    /// shorthand. Work metered by the context's own [`Pool`] is absorbed
    /// automatically at each phase boundary and must not be re-reported.
    pub fn add_work_split(&mut self, seq: u64, crit: u64) {
        self.pending_work += seq;
        self.pending_crit_work += crit;
    }

    /// Drains pending work (explicit reports plus the pool's meter) for
    /// attribution to the phase being recorded.
    fn take_pending_work(&mut self) -> (u64, u64) {
        let w = self.pool.drain_work();
        (
            std::mem::take(&mut self.pending_work) + w.seq,
            std::mem::take(&mut self.pending_crit_work) + w.crit,
        )
    }

    /// The blocking synchronization call (§3.3): reconciles the proxies of
    /// every node whose bit is set in `updated`, running the reduce pattern
    /// and then the broadcast pattern as the write/read locations and the
    /// partitioning policy's structural invariants require.
    ///
    /// `updated` is the field-specific dirty set maintained by the compute
    /// engine ("LocalFrontier" in the paper's Figure 4). On return it holds
    /// the proxies that are *active* for the next round: bits of mirrors
    /// whose values were shipped and reset are cleared; bits of masters
    /// changed by an incoming reduction and of mirrors rewritten by a
    /// broadcast are set.
    ///
    /// # Panics
    ///
    /// Panics if `updated` is not sized to the proxy count, or on network
    /// or decode failure ([`GluonContext::try_sync`] surfaces those as
    /// errors instead).
    pub fn sync<F: FieldSync>(
        &mut self,
        spec: &SyncSpec,
        field: &mut F,
        updated: &mut DenseBitset,
    ) {
        self.try_sync(spec, field, updated)
            .unwrap_or_else(|e| panic!("sync failed: {e}"));
    }

    /// As [`GluonContext::sync`], surfacing network and decode failure as
    /// an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::Net`] if a peer becomes unreachable mid-sync,
    /// and [`SyncError::Decode`] if a received payload does not parse (a
    /// corrupted frame on an unprotected transport — the reliability
    /// layer's checksum normally drops those first). Either error is
    /// terminal for the run: local field state may have been partially
    /// reconciled, so the caller should abandon the computation (or
    /// restart it), not retry the call. Decode failures are additionally
    /// counted in [`crate::SyncStats::decode_errors`], in the transport's
    /// `NetStats`, and as a `decode_error` trace event.
    pub fn try_sync<F: FieldSync>(
        &mut self,
        spec: &SyncSpec,
        field: &mut F,
        updated: &mut DenseBitset,
    ) -> Result<(), SyncError> {
        assert_eq!(
            updated.capacity(),
            self.graph.num_proxies(),
            "dirty set must cover every proxy"
        );
        let compute_secs = self.mark.elapsed().as_secs_f64();
        let start = Instant::now();
        let before = self.host_sent();

        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        // Report the 1-based sync-phase index to the transport: fault
        // plans key injected crashes on it, and peer-failure errors carry
        // it back so a supervisor knows when the failure happened.
        self.comm.transport().note_round(u64::from(seq) + 1);
        const { assert!(SYNC_TAG_WINDOW > 2, "tag window") };
        let structural = self.opts.structural;
        let field_name = spec.name.unwrap_or_else(std::any::type_name::<F>);

        let phase_idx = self.stats.phases.len() as u32;
        let mut seg = Segmenter::begin(
            &self.tracer,
            &self.metrics,
            self.rank(),
            phase_idx,
            Stage::Extract,
        );
        let round_mark = self.metrics.round_begin();

        // Check the field's pooled buffers out for the duration of the two
        // patterns (a move, not an allocation); check them back in before
        // surfacing any error so one failed round cannot leak the pool.
        let mut fa = self.arena.checkout::<F::Value>(field_name);
        fa.ensure_peers(self.world_size());
        #[cfg(feature = "alloc-meter")]
        let metering = (fa.rounds >= crate::arena::ARENA_WARMUP_ROUNDS).then(gluon_meter::snapshot);
        let res = self.run_sync_patterns(
            spec, seq, structural, field_name, field, updated, &mut seg, &mut fa,
        );
        #[cfg(feature = "alloc-meter")]
        if let Some(alloc_before) = metering {
            self.stats.steady_state_allocs += gluon_meter::snapshot().allocs_since(&alloc_before);
        }
        fa.rounds += 1;
        self.comm
            .transport()
            .stats()
            .record_pool_high_water(fa.footprint_bytes() as u64);
        self.arena.checkin(field_name, fa);
        res?;

        // When the segment clock ran (tracing or metrics), the phase's
        // comm time is *defined* as its span, so child spans sum to it
        // exactly; otherwise keep the plain wall-clock measurement.
        let totals = seg.finish();
        let after = self.host_sent();
        let (work_units, crit_work_units) = self.take_pending_work();
        self.stats.phases.push(PhaseStats {
            compute_secs,
            comm_secs: match &totals {
                Some(t) => t.total_ns as f64 / 1e9,
                None => start.elapsed().as_secs_f64(),
            },
            bytes_sent: after.0 - before.0,
            messages_sent: after.1 - before.1,
            work_units,
            crit_work_units,
        });
        if let Some(t) = totals {
            self.metrics
                .round_end(round_mark, u64::from(seq), t.stage_ns);
        }
        self.mark = Instant::now();
        Ok(())
    }

    /// Distributed termination detection: true iff `local_active` is true on
    /// any host. Timed as communication.
    pub fn any_globally(&mut self, local_active: bool) -> bool {
        self.try_any_globally(local_active)
            .unwrap_or_else(|e| panic!("termination detection failed: {e}"))
    }

    /// As [`GluonContext::any_globally`], surfacing network failure as an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_any_globally(&mut self, local_active: bool) -> Result<bool, NetError> {
        let compute_secs = self.mark.elapsed().as_secs_f64();
        let start = Instant::now();
        let phase_idx = self.stats.phases.len() as u32;
        let seg = Segmenter::begin(
            &self.tracer,
            &self.metrics,
            self.rank(),
            phase_idx,
            Stage::Collective,
        );
        let any = self.comm.try_any(local_active)?;
        self.metrics.on_collective();
        let traced_ns = seg.finish().map(|t| t.total_ns);
        let (work_units, crit_work_units) = self.take_pending_work();
        self.stats.phases.push(PhaseStats {
            compute_secs,
            comm_secs: match traced_ns {
                Some(ns) => ns as f64 / 1e9,
                None => start.elapsed().as_secs_f64(),
            },
            bytes_sent: 0,
            messages_sent: 0,
            work_units,
            crit_work_units,
        });
        self.mark = Instant::now();
        Ok(any)
    }

    /// Global sum over hosts (e.g. pagerank residual norms). Timed as
    /// communication.
    pub fn sum_globally(&mut self, local: f64) -> f64 {
        self.try_sum_globally(local)
            .unwrap_or_else(|e| panic!("global sum failed: {e}"))
    }

    /// As [`GluonContext::sum_globally`], surfacing network failure as an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_sum_globally(&mut self, local: f64) -> Result<f64, NetError> {
        let compute_secs = self.mark.elapsed().as_secs_f64();
        let start = Instant::now();
        let phase_idx = self.stats.phases.len() as u32;
        let seg = Segmenter::begin(
            &self.tracer,
            &self.metrics,
            self.rank(),
            phase_idx,
            Stage::Collective,
        );
        let sum = self.comm.try_all_reduce_f64(local, |a, b| a + b)?;
        self.metrics.on_collective();
        let traced_ns = seg.finish().map(|t| t.total_ns);
        let (work_units, crit_work_units) = self.take_pending_work();
        self.stats.phases.push(PhaseStats {
            compute_secs,
            comm_secs: match traced_ns {
                Some(ns) => ns as f64 / 1e9,
                None => start.elapsed().as_secs_f64(),
            },
            bytes_sent: 0,
            messages_sent: 0,
            work_units,
            crit_work_units,
        });
        self.mark = Instant::now();
        Ok(sum)
    }

    /// Books one undecodable payload from `peer` into every counter that
    /// tracks it (per-host stats, transport-level `NetStats`, trace event
    /// stream) and builds the terminal [`SyncError::Decode`].
    fn decode_failed(&mut self, peer: usize, payload_len: usize, error: DecodeError) -> SyncError {
        self.stats.decode_errors += 1;
        self.comm.transport().stats().record_decode_error();
        self.metrics.on_decode_error();
        self.tracer
            .record_event(self.rank(), "decode_error", peer, payload_len as u64);
        SyncError::Decode { peer, error }
    }

    /// The reduce-then-broadcast body of one sync call, operating on the
    /// field's checked-out arena ([`GluonContext::try_sync`] owns the
    /// checkout/checkin bracket around this).
    #[allow(clippy::too_many_arguments)]
    fn run_sync_patterns<F: FieldSync>(
        &mut self,
        spec: &SyncSpec,
        seq: u32,
        structural: bool,
        field_name: &'static str,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
        fa: &mut FieldArena<F::Value>,
    ) -> Result<(), SyncError> {
        if let Some(w) = spec.write {
            let fr = filter_index(w.filter(structural));
            self.send_pattern(
                seq,
                0,
                PatternRole::MirrorToMaster,
                fr,
                field_name,
                field,
                updated,
                seg,
                fa,
            )?;
            self.recv_pattern(
                seq,
                0,
                PatternRole::MirrorToMaster,
                fr,
                field,
                updated,
                seg,
                fa,
            )?;
        }
        if let Some(r) = spec.read {
            let fb = filter_index(r.filter(structural));
            self.send_pattern(
                seq,
                1,
                PatternRole::MasterToMirror,
                fb,
                field_name,
                field,
                updated,
                seg,
                fa,
            )?;
            self.recv_pattern(
                seq,
                1,
                PatternRole::MasterToMirror,
                fb,
                field,
                updated,
                seg,
                fa,
            )?;
        }
        Ok(())
    }

    /// Bytes and messages this host has sent so far, straight off the
    /// transport's atomic counters (allocation-free; called twice per
    /// sync round).
    fn host_sent(&self) -> (u64, u64) {
        self.comm.transport().stats().host_sent(self.rank())
    }

    /// The sequential per-peer tail of the send side — pool accounting,
    /// trace records, the mirror reset, and the send itself — shared
    /// verbatim by the sequential and parallel paths so both produce the
    /// same counters and stage sequence in rank order.
    #[allow(clippy::too_many_arguments)]
    fn finish_send_peer<F: FieldSync>(
        &self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        field_name: &'static str,
        temporal: bool,
        h: usize,
        list: &[Lid],
        ps: &mut PeerScratch<F::Value>,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
    ) -> Result<(), SyncError> {
        let payload = ps.payload.take().expect("peer payload was prepared");
        let stats = self.comm.transport().stats();
        if ps.recycled {
            stats.record_pool_hit();
            self.metrics.pool_hit();
        } else {
            stats.record_pool_miss();
            self.metrics.pool_miss();
            if self.tracer.is_enabled() {
                self.tracer
                    .record_event(self.rank(), "arena_miss", h, payload.len() as u64);
            }
        }
        self.tracer
            .record_wire_mode(field_name, payload[0], payload.len() as u64);
        self.tracer.record_message_size(payload.len());
        self.metrics.on_payload(payload[0], payload.len() as u64);
        if role == PatternRole::MirrorToMaster {
            // The shipped values now live at the master; reset the
            // local copies to the reduction identity and deactivate.
            // Dense mode ships *every* list entry, so reset them all.
            seg.stage(Stage::Reset, Some(h));
            if temporal && WireMode::of(&payload) == WireMode::Dense {
                for &lid in list {
                    field.reset(lid);
                    updated.clear(lid);
                }
            } else {
                for &p in &ps.updated_pos {
                    field.reset(list[p as usize]);
                    updated.clear(list[p as usize]);
                }
            }
        }
        seg.stage(Stage::Send, Some(h));
        self.comm
            .transport()
            .try_send(h, sync_tag(seq, pat), payload)?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn send_pattern<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field_name: &'static str,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
        fa: &mut FieldArena<F::Value>,
    ) -> Result<(), SyncError> {
        if self.pool.is_parallel() {
            return self.send_pattern_par(
                seq, pat, role, filter_idx, field_name, field, updated, seg, fa,
            );
        }
        let rank = self.rank();
        let temporal = self.opts.temporal;
        let compress = self.opts.compress;
        let graph = self.graph;
        let prewarm = self.arena.enabled() && fa.rounds < crate::arena::ARENA_WARMUP_ROUNDS;
        for h in 0..self.world_size() {
            if h == rank {
                continue;
            }
            let list: &[Lid] = match role {
                PatternRole::MirrorToMaster => &self.mirror_lists[filter_idx][h],
                PatternRole::MasterToMirror => &self.master_lists[filter_idx][h],
            };
            if list.is_empty() {
                continue;
            }
            prepare_send_peer::<F>(
                graph,
                temporal,
                compress,
                pat,
                list,
                field,
                updated,
                &mut fa.peers[h],
                prewarm,
                &mut |st| seg.stage(st, Some(h)),
            );
            self.finish_send_peer::<F>(
                seq,
                pat,
                role,
                field_name,
                temporal,
                h,
                list,
                &mut fa.peers[h],
                field,
                updated,
                seg,
            )?;
        }
        Ok(())
    }

    /// Parallel send side: per-peer dirty-set scans, extraction, and
    /// encoding are independent reads of the field and the proxy lists, so
    /// each peer's payload is built on a pool worker directly into that
    /// peer's arena scratch; the mutating tail (pool accounting, trace,
    /// reset, send) then runs sequentially in rank order, producing
    /// byte-for-byte the payloads and counters of the sequential path.
    #[allow(clippy::too_many_arguments)]
    fn send_pattern_par<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field_name: &'static str,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
        fa: &mut FieldArena<F::Value>,
    ) -> Result<(), SyncError> {
        let rank = self.rank();
        let temporal = self.opts.temporal;
        let compress = self.opts.compress;
        let lists = match role {
            PatternRole::MirrorToMaster => &self.mirror_lists[filter_idx],
            PatternRole::MasterToMirror => &self.master_lists[filter_idx],
        };
        // One Extract segment covers the whole concurrent extract+encode
        // region: per-peer wall-clock attribution is meaningless when the
        // peers' payloads are built at the same time (stage switching
        // inside the workers is likewise suppressed).
        seg.stage(Stage::Extract, None);
        let graph = self.graph;
        let field_ref: &F = field;
        let updated_ref: &DenseBitset = updated;
        let prewarm = self.arena.enabled() && fa.rounds < crate::arena::ARENA_WARMUP_ROUNDS;
        self.pool.for_each_scratch(&mut fa.peers, |h, ps| {
            if h == rank {
                return;
            }
            let list: &[Lid] = &lists[h];
            if list.is_empty() {
                return;
            }
            prepare_send_peer::<F>(
                graph,
                temporal,
                compress,
                pat,
                list,
                field_ref,
                updated_ref,
                ps,
                prewarm,
                &mut |_| {},
            );
        });
        for (h, list) in lists.iter().enumerate() {
            if h == rank || list.is_empty() {
                continue;
            }
            self.finish_send_peer::<F>(
                seq,
                pat,
                role,
                field_name,
                temporal,
                h,
                list,
                &mut fa.peers[h],
                field,
                updated,
                seg,
            )?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn recv_pattern<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
        fa: &mut FieldArena<F::Value>,
    ) -> Result<(), SyncError> {
        if self.pool.is_parallel() {
            return self.recv_pattern_par(seq, pat, role, filter_idx, field, updated, seg, fa);
        }
        let rank = self.rank();
        let temporal = self.opts.temporal;
        let graph = self.graph;
        for h in 0..self.world_size() {
            if h == rank {
                continue;
            }
            // I receive exactly when the sender's list toward me is
            // non-empty; by the memoization agreement that is my master (or
            // mirror) list for `h` under the same filter.
            let list: &[Lid] = match role {
                PatternRole::MirrorToMaster => &self.master_lists[filter_idx][h],
                PatternRole::MasterToMirror => &self.mirror_lists[filter_idx][h],
            };
            if list.is_empty() {
                continue;
            }
            seg.stage(Stage::RecvWait, Some(h));
            let payload = self.comm.transport().try_recv(h, sync_tag(seq, pat))?;
            let PeerScratch { dec, entries, .. } = &mut fa.peers[h];
            if seg.enabled() {
                // Traced path: decode into the peer's staging list first so
                // the decode and apply stages get separate spans; the
                // untraced path below fuses them into one pass.
                seg.stage(Stage::Decode, Some(h));
                if let Err(e) =
                    decode_into_entries::<F::Value>(temporal, graph, &payload, list, dec, entries)
                {
                    return Err(self.decode_failed(h, payload.len(), e));
                }
                seg.stage(Stage::Apply, Some(h));
                match role {
                    PatternRole::MirrorToMaster => {
                        for &(lid, v) in entries.iter() {
                            if field.reduce(lid, v) {
                                updated.set(lid);
                            }
                        }
                    }
                    PatternRole::MasterToMirror => {
                        for &(lid, v) in entries.iter() {
                            field.set(lid, v);
                            updated.set(lid);
                        }
                    }
                }
                entries.clear();
                continue;
            }
            // Untraced path: fuse decode and apply to keep the hot loop
            // allocation-free. A mid-payload decode error can leave some
            // entries already applied — acceptable because every decode
            // error is terminal for the run. Unknown-GID lookups cannot
            // early-return from inside the closure, so they latch into
            // `bad_gid` and surface right after.
            let mut bad_gid: Option<Gid> = None;
            let res = match role {
                PatternRole::MirrorToMaster => {
                    // I am the master side: combine partial values.
                    if temporal {
                        decode_memoized_scratch::<F::Value>(
                            &payload,
                            list.len(),
                            dec,
                            &mut |pos, v| {
                                let lid = list[pos];
                                if field.reduce(lid, v) {
                                    updated.set(lid);
                                }
                            },
                        )
                    } else {
                        decode_gid_values::<F::Value>(&payload, &mut |gid, v| {
                            if bad_gid.is_some() {
                                return;
                            }
                            match graph.lid(gid) {
                                Some(lid) => {
                                    if field.reduce(lid, v) {
                                        updated.set(lid);
                                    }
                                }
                                None => bad_gid = Some(gid),
                            }
                        })
                    }
                }
                PatternRole::MasterToMirror => {
                    // I am the mirror side: adopt canonical values. The bit
                    // is set even when the value is unchanged: under
                    // general vertex-cuts a mirror with outgoing edges may
                    // have *originated* this update — its dirty bit was
                    // cleared when the reduce shipped it, but its local
                    // out-edges still have to see the value, so the
                    // broadcast must re-activate it.
                    if temporal {
                        decode_memoized_scratch::<F::Value>(
                            &payload,
                            list.len(),
                            dec,
                            &mut |pos, v| {
                                let lid = list[pos];
                                field.set(lid, v);
                                updated.set(lid);
                            },
                        )
                    } else {
                        decode_gid_values::<F::Value>(&payload, &mut |gid, v| {
                            if bad_gid.is_some() {
                                return;
                            }
                            match graph.lid(gid) {
                                Some(lid) => {
                                    field.set(lid, v);
                                    updated.set(lid);
                                }
                                None => bad_gid = Some(gid),
                            }
                        })
                    }
                }
            };
            let res = res.and(match bad_gid {
                Some(g) => Err(DecodeError::UnknownGid(g.0)),
                None => Ok(()),
            });
            if let Err(e) = res {
                return Err(self.decode_failed(h, payload.len(), e));
            }
        }
        Ok(())
    }

    /// Parallel receive side: payloads are collected from peers in rank
    /// order (receive order is fixed by the protocol, not by the pool),
    /// decoded concurrently into the per-peer `(lid, value)` staging of
    /// the field's arena, then applied sequentially in rank order — the
    /// same combination order as the sequential path, so reductions over
    /// non-associative values (floats) stay bit-identical at any thread
    /// count.
    #[allow(clippy::too_many_arguments)]
    fn recv_pattern_par<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
        fa: &mut FieldArena<F::Value>,
    ) -> Result<(), SyncError> {
        let rank = self.rank();
        let n = self.world_size();
        let temporal = self.opts.temporal;
        let lists = match role {
            PatternRole::MirrorToMaster => &self.master_lists[filter_idx],
            PatternRole::MasterToMirror => &self.mirror_lists[filter_idx],
        };
        for (h, list) in lists.iter().enumerate().take(n) {
            if h == rank || list.is_empty() {
                continue;
            }
            seg.stage(Stage::RecvWait, Some(h));
            fa.peers[h].payload = Some(self.comm.transport().try_recv(h, sync_tag(seq, pat))?);
        }
        seg.stage(Stage::Decode, None);
        let graph = self.graph;
        self.pool.for_each_scratch(&mut fa.peers, |h, ps| {
            let PeerScratch {
                payload,
                dec,
                entries,
                decode_err,
                ..
            } = ps;
            *decode_err = None;
            let Some(payload) = payload.as_ref() else {
                return;
            };
            *decode_err =
                decode_into_entries::<F::Value>(temporal, graph, payload, &lists[h], dec, entries)
                    .err();
        });
        seg.stage(Stage::Apply, None);
        // Apply in rank order; the first malformed payload in rank order
        // wins, so the surfaced error does not depend on worker scheduling.
        for h in 0..n {
            let ps = &mut fa.peers[h];
            if let Some(e) = ps.decode_err.take() {
                let len = ps.payload.as_ref().map_or(0, |p| p.len());
                return Err(self.decode_failed(h, len, e));
            }
            if ps.payload.is_none() {
                continue;
            }
            match role {
                PatternRole::MirrorToMaster => {
                    for &(lid, v) in ps.entries.iter() {
                        if field.reduce(lid, v) {
                            updated.set(lid);
                        }
                    }
                }
                PatternRole::MasterToMirror => {
                    for &(lid, v) in ps.entries.iter() {
                        field.set(lid, v);
                        updated.set(lid);
                    }
                }
            }
            ps.entries.clear();
            // Dropping our handle is what lets the sender's slot recycle
            // this buffer next round.
            ps.payload = None;
        }
        Ok(())
    }
}

/// Scans the dirty set and builds one peer's wire payload into that
/// peer's arena scratch, recycling any buffer in the pattern's send-slot
/// ring to which this host holds the only remaining handle. Leaves the
/// finished payload in `ps.payload` (with a retained twin in the ring)
/// and records hit/miss in `ps.recycled`.
///
/// Free function (not a method) so the parallel path can run it from pool
/// workers while `self` stays immutably shared; `stage` is the segmenter
/// hook — a no-op closure in workers, where per-peer wall-clock
/// attribution would be meaningless.
#[allow(clippy::too_many_arguments)]
fn prepare_send_peer<F: FieldSync>(
    graph: &LocalGraph,
    temporal: bool,
    compress: bool,
    pat: u32,
    list: &[Lid],
    field: &F,
    updated: &DenseBitset,
    ps: &mut PeerScratch<F::Value>,
    prewarm: bool,
    stage: &mut impl FnMut(Stage),
) {
    let PeerScratch {
        updated_pos,
        enc,
        gid_pairs,
        send_slots,
        payload,
        recycled,
        ..
    } = ps;
    stage(Stage::Extract);
    updated_pos.clear();
    for (i, &lid) in list.iter().enumerate() {
        if updated.test(lid) {
            updated_pos.push(i as u32);
        }
    }
    let ring = &mut send_slots[pat as usize];
    let reuse = ring
        .iter_mut()
        .position(|b| b.try_unique_vec().is_some())
        .map(|i| ring.swap_remove(i));
    *recycled = reuse.is_some();
    let bytes = match reuse {
        Some(mut bytes) => {
            let out = bytes
                .try_unique_vec()
                .expect("buffer uniqueness cannot be lost while we hold the sole handle");
            fill_payload::<F>(
                graph,
                temporal,
                compress,
                list,
                field,
                updated_pos,
                enc,
                gid_pairs,
                out,
                stage,
            );
            bytes
        }
        None => {
            // Every pooled buffer is still held by a consumer (a lagging
            // peer, a history log) — or the ring is empty (warm-up).
            // Build into a fresh buffer and let the ring deepen to the
            // observed in-flight depth. Same bytes either way.
            let mut out = Vec::new();
            fill_payload::<F>(
                graph,
                temporal,
                compress,
                list,
                field,
                updated_pos,
                enc,
                gid_pairs,
                &mut out,
                stage,
            );
            if prewarm {
                // Consumers can drift deeper only after warm-up, when an
                // allocation would break the steady-state contract — so
                // the depth is paid now: fill the ring to cap with
                // standby buffers at the payload's capacity.
                while ring.len() < SLOT_RING_CAP - 1 {
                    ring.push(Bytes::from(Vec::with_capacity(out.capacity())));
                }
            } else if ring.len() == SLOT_RING_CAP {
                ring.remove(0);
            }
            Bytes::from(out)
        }
    };
    ring.push(bytes.clone());
    *payload = Some(bytes);
}

/// Encodes one peer's update batch into `out` (cleared first): the
/// memoized positional encoding under temporal invariance, the explicit
/// global-ID encoding otherwise — the cost §4.1 memoizes away.
#[allow(clippy::too_many_arguments)]
fn fill_payload<F: FieldSync>(
    graph: &LocalGraph,
    temporal: bool,
    compress: bool,
    list: &[Lid],
    field: &F,
    updated_pos: &[u32],
    enc: &mut EncodeScratch,
    gid_pairs: &mut Vec<(Gid, F::Value)>,
    out: &mut Vec<u8>,
    stage: &mut impl FnMut(Stage),
) {
    if temporal {
        stage(Stage::Encode);
        encode_memoized_into(
            list.len(),
            updated_pos,
            |p| field.extract(list[p]),
            compress,
            enc,
            out,
        );
    } else {
        stage(Stage::MemoTranslate);
        gid_pairs.clear();
        gid_pairs.extend(updated_pos.iter().map(|&p| {
            let lid = list[p as usize];
            (graph.gid(lid), field.extract(lid))
        }));
        stage(Stage::Encode);
        encode_gid_values_into(gid_pairs, out);
    }
}

/// Decodes one peer's payload into `(lid, value)` staging entries
/// (cleared first), translating memoized positions — or, without temporal
/// invariance, global IDs — to local IDs. Shared by the traced sequential
/// path and the parallel decode workers so both surface identical errors.
fn decode_into_entries<V: SyncValue>(
    temporal: bool,
    graph: &LocalGraph,
    payload: &[u8],
    list: &[Lid],
    dec: &mut DecodeScratch,
    entries: &mut Vec<(Lid, V)>,
) -> Result<(), DecodeError> {
    entries.clear();
    if temporal {
        decode_memoized_scratch::<V>(payload, list.len(), dec, &mut |pos, v| {
            entries.push((list[pos], v));
        })
    } else {
        let mut bad_gid: Option<Gid> = None;
        decode_gid_values::<V>(payload, &mut |gid, v| {
            if bad_gid.is_some() {
                return;
            }
            match graph.lid(gid) {
                Some(lid) => entries.push((lid, v)),
                None => bad_gid = Some(gid),
            }
        })?;
        match bad_gid {
            Some(g) => Err(DecodeError::UnknownGid(g.0)),
            None => Ok(()),
        }
    }
}

impl<T: Transport + ?Sized> std::fmt::Debug for GluonContext<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GluonContext")
            .field("rank", &self.rank())
            .field("world_size", &self.world_size())
            .field("opts", &self.opts)
            .field("phases", &self.stats.num_phases())
            .finish()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PatternRole {
    MirrorToMaster,
    MasterToMirror,
}

#[cfg(test)]
mod seg_tests {
    use super::*;

    /// The segment clock indexes `gluon_metrics` stage totals directly by
    /// the trace `Stage` discriminant (see [`round_stage_index`]); this
    /// pins the alignment the two crates maintain independently.
    #[test]
    fn round_stage_indices_match_trace_discriminants() {
        for (i, name) in gluon_metrics::ROUND_STAGE_NAMES.iter().enumerate() {
            let stage = Stage::ALL[i];
            assert_eq!(stage as usize, i);
            assert_eq!(round_stage_index(stage), Some(i));
            assert_eq!(stage.name(), *name, "stage {i}");
        }
        assert_eq!(round_stage_index(Stage::Collective), None);
        assert_eq!(round_stage_index(Stage::Sync), None);
        assert_eq!(round_stage_index(Stage::Memo), None);
    }

    #[test]
    fn wire_mode_tables_agree() {
        assert_eq!(gluon_metrics::NUM_WIRE_MODES, gluon_trace::NUM_WIRE_MODES);
        for (a, b) in gluon_metrics::WIRE_MODE_NAMES
            .iter()
            .zip(gluon_trace::MODE_NAMES)
        {
            assert_eq!(*a, b);
        }
    }
}
