//! The per-host Gluon runtime: setup, the sync call, and termination
//! detection.

use crate::bitset::DenseBitset;
use crate::comm_tags::{sync_tag, SYNC_TAG_WINDOW};
use crate::encode::{
    decode_gid_values, decode_memoized, encode_gid_values, encode_memoized_with, DecodeError,
    WireMode,
};
use crate::field::FieldSync;
use crate::memo::{FlagFilter, MemoTable};
use crate::opts::OptLevel;
use crate::stats::{PhaseStats, SyncStats};
use gluon_exec::Pool;
use gluon_graph::{Gid, HostId, Lid};
use gluon_net::{Communicator, NetError, Transport};
use gluon_partition::LocalGraph;
use gluon_trace::{Stage, Tracer, SETUP_PHASE};
use std::time::Instant;

/// One peer's decoded update batch: the `(local id, value)` entries its
/// payload carried, or the decode failure to surface for that peer.
type DecodedBatch<V> = Result<Vec<(Lid, V)>, DecodeError>;

/// Why a [`GluonContext::try_sync`] call failed.
///
/// Network failure (a peer declared dead by the reliability layer) and
/// decode failure (a received payload that does not parse — a corrupted
/// frame on an unprotected transport, or a peer speaking a different wire
/// format) both leave the field partially reconciled: the error is
/// terminal for the run, not retryable, but it *is* survivable — the host
/// thread gets the error instead of aborting, and every decode failure is
/// counted in [`crate::SyncStats::decode_errors`], in
/// `gluon_net::NetStats`, and as a `decode_error` trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncError {
    /// A peer became unreachable mid-sync.
    Net(NetError),
    /// A received payload failed to decode.
    Decode {
        /// The peer whose payload was malformed.
        peer: usize,
        /// What was wrong with the bytes.
        error: DecodeError,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Net(e) => write!(f, "{e}"),
            SyncError::Decode { peer, error } => {
                write!(f, "undecodable sync payload from host {peer}: {error}")
            }
        }
    }
}

impl std::error::Error for SyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyncError::Net(e) => Some(e),
            SyncError::Decode { error, .. } => Some(error),
        }
    }
}

impl From<NetError> for SyncError {
    fn from(e: NetError) -> Self {
        SyncError::Net(e)
    }
}

/// Where the operator *writes* the synchronized field, relative to edge
/// direction (the paper's `WriteAtSource` / `WriteAtDestination` tags).
///
/// Gluon derives the reduce pattern from this: only mirror proxies that can
/// have been written need their partial values shipped to the master.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WriteLocation {
    /// Written at edge sources (reverse/backward operators).
    Source,
    /// Written at edge destinations (push operators writing out-neighbors,
    /// pull operators writing the active node).
    Destination,
    /// No exploitable structure: any proxy may have been written.
    Any,
}

/// Where the operator *reads* the synchronized field in the next round
/// (the paper's `ReadAtSource` / `ReadAtDestination` tags).
///
/// Gluon derives the broadcast pattern from this: only mirror proxies that
/// will be read need the master's canonical value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReadLocation {
    /// Read at edge sources (push operators reading the active node, pull
    /// operators reading in-neighbors).
    Source,
    /// Read at edge destinations.
    Destination,
    /// No exploitable structure: any proxy may be read.
    Any,
}

impl WriteLocation {
    /// Mirror subset that may have been written and therefore must reduce.
    fn filter(self, structural: bool) -> FlagFilter {
        if !structural {
            return FlagFilter::All;
        }
        match self {
            // Written at destinations => only mirrors with local incoming
            // edges can hold partial values.
            WriteLocation::Destination => FlagFilter::MirrorHasIn,
            WriteLocation::Source => FlagFilter::MirrorHasOut,
            WriteLocation::Any => FlagFilter::All,
        }
    }
}

impl ReadLocation {
    /// Mirror subset that will be read and therefore must hear a broadcast.
    fn filter(self, structural: bool) -> FlagFilter {
        if !structural {
            return FlagFilter::All;
        }
        match self {
            // Read at sources => only mirrors with local outgoing edges
            // will be consulted.
            ReadLocation::Source => FlagFilter::MirrorHasOut,
            ReadLocation::Destination => FlagFilter::MirrorHasIn,
            ReadLocation::Any => FlagFilter::All,
        }
    }
}

fn filter_index(f: FlagFilter) -> usize {
    match f {
        FlagFilter::All => 0,
        FlagFilter::MirrorHasIn => 1,
        FlagFilter::MirrorHasOut => 2,
    }
}

/// A synchronization specification: *where* the operator wrote the field,
/// *where* the next round reads it, and optional field metadata — the
/// bundle every [`GluonContext::sync`] call needs.
///
/// A spec with both locations set runs reduce then broadcast; a
/// reduce-only or broadcast-only spec runs a single pattern. Construct
/// specs once (they are `const`) and reuse them across rounds:
///
/// ```
/// use gluon::{ReadLocation, SyncSpec, WriteLocation};
///
/// // The push min-relaxation pattern of bfs/sssp/cc.
/// const PUSH: SyncSpec =
///     SyncSpec::full(WriteLocation::Destination, ReadLocation::Source).named("dist");
/// assert_eq!(PUSH.write, Some(WriteLocation::Destination));
///
/// // Partial sums consumed at the master: reduce only.
/// const PARTIALS: SyncSpec = SyncSpec::reduce(WriteLocation::Destination);
/// assert_eq!(PARTIALS.read, None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyncSpec {
    /// Where the operator writes the field (None: skip the reduce
    /// pattern).
    pub write: Option<WriteLocation>,
    /// Where the field is read next round (None: skip the broadcast
    /// pattern).
    pub read: Option<ReadLocation>,
    /// Field name used in trace output (wire-mode histograms); defaults to
    /// the [`FieldSync`] implementor's type name.
    pub name: Option<&'static str>,
}

impl SyncSpec {
    /// Reduce then broadcast — the full sync of the paper's Figure 4.
    pub const fn full(write: WriteLocation, read: ReadLocation) -> SyncSpec {
        SyncSpec {
            write: Some(write),
            read: Some(read),
            name: None,
        }
    }

    /// Reduce only (mirrors → masters): for fields consumed at the master
    /// and never read back at mirrors.
    pub const fn reduce(write: WriteLocation) -> SyncSpec {
        SyncSpec {
            write: Some(write),
            read: None,
            name: None,
        }
    }

    /// Broadcast only (masters → mirrors): for fields written only at
    /// masters and read at mirrors next round.
    pub const fn broadcast(read: ReadLocation) -> SyncSpec {
        SyncSpec {
            write: None,
            read: Some(read),
            name: None,
        }
    }

    /// Attaches a field name for trace output.
    pub const fn named(mut self, name: &'static str) -> SyncSpec {
        self.name = Some(name);
        self
    }
}

/// The per-host Gluon runtime handle.
///
/// Create one per host after partitioning (the constructor runs the
/// memoization handshake of §4.1), then alternate between local compute —
/// using any shared-memory engine — and [`GluonContext::sync`] calls.
///
/// # Examples
///
/// See the crate-level docs for a complete distributed BFS.
pub struct GluonContext<'a, T: Transport + ?Sized> {
    graph: &'a LocalGraph,
    comm: &'a Communicator<'a, T>,
    opts: OptLevel,
    memo: MemoTable,
    /// `[filter][remote] -> agreed mirror-side list`, precomputed.
    mirror_lists: [Vec<Vec<Lid>>; 3],
    /// `[filter][remote] -> agreed master-side list`, precomputed.
    master_lists: [Vec<Vec<Lid>>; 3],
    stats: SyncStats,
    tracer: Tracer,
    seq: u32,
    mark: Instant,
    pending_work: u64,
    pending_crit_work: u64,
    pool: Pool,
}

/// Splits one sync call into contiguous timed segments, each emitted as a
/// child span. Exactly one segment is open at any moment between `begin`
/// and `finish`, so the segment durations partition the whole interval —
/// which is what lets the runtime *define* a traced phase's `comm_secs` as
/// their sum and keep the "children sum to the parent" invariant exact
/// (up to float accumulation).
///
/// Disabled tracers make every method a no-op behind one `Option` check.
struct Segmenter {
    inner: Option<SegState>,
}

struct SegState {
    tracer: Tracer,
    host: usize,
    phase: u32,
    start_ns: u64,
    last_wall: Instant,
    last_ns: u64,
    cur: (Stage, Option<usize>),
}

impl Segmenter {
    /// Starts segmenting with an initial open stage (so even a phase that
    /// never switches stages gets one covering child span).
    fn begin(tracer: &Tracer, host: usize, phase: u32, first: Stage) -> Segmenter {
        Segmenter {
            inner: tracer.is_enabled().then(|| {
                let start_ns = tracer.now_ns();
                SegState {
                    tracer: tracer.clone(),
                    host,
                    phase,
                    start_ns,
                    last_wall: Instant::now(),
                    last_ns: start_ns,
                    cur: (first, None),
                }
            }),
        }
    }

    fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Closes the open segment and opens the next one.
    #[inline]
    fn stage(&mut self, stage: Stage, peer: Option<usize>) {
        let Some(st) = &mut self.inner else { return };
        st.cut();
        st.cur = (stage, peer);
    }

    /// Closes the final segment and emits the parent span; returns the
    /// total nanoseconds covered (None when tracing is disabled).
    fn finish(self) -> Option<u64> {
        let mut st = self.inner?;
        st.cut();
        let total = st.last_ns - st.start_ns;
        st.tracer
            .record_span(st.host, st.phase, Stage::Sync, None, st.start_ns, total);
        Some(total)
    }
}

impl SegState {
    fn cut(&mut self) {
        let now = Instant::now();
        let now_ns = self.last_ns + now.duration_since(self.last_wall).as_nanos() as u64;
        let (stage, peer) = self.cur;
        self.tracer.record_span(
            self.host,
            self.phase,
            stage,
            peer,
            self.last_ns,
            now_ns - self.last_ns,
        );
        self.last_wall = now;
        self.last_ns = now_ns;
    }
}

impl<'a, T: Transport + ?Sized> GluonContext<'a, T> {
    /// Sets up the runtime: exchanges memoization metadata with every other
    /// host and precomputes the agreed proxy lists.
    ///
    /// All hosts must call this collectively.
    pub fn new(graph: &'a LocalGraph, comm: &'a Communicator<'a, T>, opts: OptLevel) -> Self {
        let tracer = comm.tracer().clone();
        let memo_start_ns = tracer.now_ns();
        let start = Instant::now();
        let bytes_before = comm.transport().stats().snapshot();
        let memo = MemoTable::exchange(graph, comm);
        let n = comm.world_size();
        let mut mirror_lists: [Vec<Vec<Lid>>; 3] = Default::default();
        let mut master_lists: [Vec<Vec<Lid>>; 3] = Default::default();
        for f in [
            FlagFilter::All,
            FlagFilter::MirrorHasIn,
            FlagFilter::MirrorHasOut,
        ] {
            let fi = filter_index(f);
            mirror_lists[fi] = (0..n).map(|h| memo.mirror_list(h, f)).collect();
            master_lists[fi] = (0..n).map(|h| memo.master_list(h, f)).collect();
        }
        let memo_secs = start.elapsed().as_secs_f64();
        let rank = comm.rank();
        let snap = comm.transport().stats().snapshot();
        let memo_bytes: u64 = (0..n)
            .map(|dst| snap.bytes_between(rank, dst) - bytes_before.bytes_between(rank, dst))
            .sum();
        // Everyone finishes setup before any compute begins, like the real
        // system's graph-construction barrier.
        comm.barrier();
        tracer.record_span(
            rank,
            SETUP_PHASE,
            Stage::Memo,
            None,
            memo_start_ns,
            (memo_secs * 1e9) as u64,
        );
        GluonContext {
            graph,
            comm,
            opts,
            memo,
            mirror_lists,
            master_lists,
            stats: SyncStats {
                memo_secs,
                memo_bytes,
                ..Default::default()
            },
            tracer,
            seq: 0,
            mark: Instant::now(),
            pending_work: 0,
            pending_crit_work: 0,
            pool: Pool::sequential(),
        }
    }

    /// Installs an intra-host worker pool (builder style). The pool drives
    /// the sync hot path's extract/encode/decode stages and is what engines
    /// obtain through [`GluonContext::pool`]; the default is sequential.
    #[must_use]
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Replaces the intra-host worker pool.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// The intra-host worker pool (clone it to hand to an engine; clones
    /// share the work meter).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The local partition this context synchronizes.
    pub fn graph(&self) -> &'a LocalGraph {
        self.graph
    }

    /// This host's rank.
    pub fn rank(&self) -> HostId {
        self.comm.rank()
    }

    /// Number of hosts.
    pub fn world_size(&self) -> usize {
        self.comm.world_size()
    }

    /// The optimization level in force.
    pub fn opts(&self) -> OptLevel {
        self.opts
    }

    /// The memoization table (for inspection and tests).
    pub fn memo(&self) -> &MemoTable {
        &self.memo
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// The tracer this context records spans into (adopted from the
    /// communicator; disabled unless the communicator was built with
    /// [`Communicator::with_tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Consumes the context, returning its statistics.
    pub fn into_stats(self) -> SyncStats {
        self.stats
    }

    /// Restarts the compute clock; call when timed work begins (e.g. after
    /// untimed initialization).
    pub fn reset_timer(&mut self) {
        self.mark = Instant::now();
    }

    /// Reports abstract compute work (edges traversed) done since the last
    /// phase. Engines call this so that compute time can be *modeled* even
    /// though the simulated hosts share physical cores; the amount is
    /// attributed to the next phase's [`crate::PhaseStats::work_units`].
    pub fn add_work(&mut self, units: u64) {
        self.add_work_split(units, units);
    }

    /// Reports pre-measured parallel work: `seq` units of total work whose
    /// critical path under the current pool was `crit` units. Sequential
    /// kernels have `crit == seq`; [`GluonContext::add_work`] is that
    /// shorthand. Work metered by the context's own [`Pool`] is absorbed
    /// automatically at each phase boundary and must not be re-reported.
    pub fn add_work_split(&mut self, seq: u64, crit: u64) {
        self.pending_work += seq;
        self.pending_crit_work += crit;
    }

    /// Drains pending work (explicit reports plus the pool's meter) for
    /// attribution to the phase being recorded.
    fn take_pending_work(&mut self) -> (u64, u64) {
        let w = self.pool.drain_work();
        (
            std::mem::take(&mut self.pending_work) + w.seq,
            std::mem::take(&mut self.pending_crit_work) + w.crit,
        )
    }

    /// The blocking synchronization call (§3.3): reconciles the proxies of
    /// every node whose bit is set in `updated`, running the reduce pattern
    /// and then the broadcast pattern as the write/read locations and the
    /// partitioning policy's structural invariants require.
    ///
    /// `updated` is the field-specific dirty set maintained by the compute
    /// engine ("LocalFrontier" in the paper's Figure 4). On return it holds
    /// the proxies that are *active* for the next round: bits of mirrors
    /// whose values were shipped and reset are cleared; bits of masters
    /// changed by an incoming reduction and of mirrors rewritten by a
    /// broadcast are set.
    ///
    /// # Panics
    ///
    /// Panics if `updated` is not sized to the proxy count, or on network
    /// or decode failure ([`GluonContext::try_sync`] surfaces those as
    /// errors instead).
    pub fn sync<F: FieldSync>(
        &mut self,
        spec: &SyncSpec,
        field: &mut F,
        updated: &mut DenseBitset,
    ) {
        self.try_sync(spec, field, updated)
            .unwrap_or_else(|e| panic!("sync failed: {e}"));
    }

    /// As [`GluonContext::sync`], surfacing network and decode failure as
    /// an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::Net`] if a peer becomes unreachable mid-sync,
    /// and [`SyncError::Decode`] if a received payload does not parse (a
    /// corrupted frame on an unprotected transport — the reliability
    /// layer's checksum normally drops those first). Either error is
    /// terminal for the run: local field state may have been partially
    /// reconciled, so the caller should abandon the computation (or
    /// restart it), not retry the call. Decode failures are additionally
    /// counted in [`crate::SyncStats::decode_errors`], in the transport's
    /// `NetStats`, and as a `decode_error` trace event.
    pub fn try_sync<F: FieldSync>(
        &mut self,
        spec: &SyncSpec,
        field: &mut F,
        updated: &mut DenseBitset,
    ) -> Result<(), SyncError> {
        assert_eq!(
            updated.capacity(),
            self.graph.num_proxies(),
            "dirty set must cover every proxy"
        );
        let compute_secs = self.mark.elapsed().as_secs_f64();
        let start = Instant::now();
        let before = self.host_sent_snapshot();

        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        const { assert!(SYNC_TAG_WINDOW > 2, "tag window") };
        let structural = self.opts.structural;
        let field_name = spec.name.unwrap_or_else(std::any::type_name::<F>);

        let phase_idx = self.stats.phases.len() as u32;
        let mut seg = Segmenter::begin(&self.tracer, self.rank(), phase_idx, Stage::Extract);

        if let Some(w) = spec.write {
            let fr = filter_index(w.filter(structural));
            self.send_pattern(
                seq,
                0,
                PatternRole::MirrorToMaster,
                fr,
                field_name,
                field,
                updated,
                &mut seg,
            )?;
            self.recv_pattern(
                seq,
                0,
                PatternRole::MirrorToMaster,
                fr,
                field,
                updated,
                &mut seg,
            )?;
        }
        if let Some(r) = spec.read {
            let fb = filter_index(r.filter(structural));
            self.send_pattern(
                seq,
                1,
                PatternRole::MasterToMirror,
                fb,
                field_name,
                field,
                updated,
                &mut seg,
            )?;
            self.recv_pattern(
                seq,
                1,
                PatternRole::MasterToMirror,
                fb,
                field,
                updated,
                &mut seg,
            )?;
        }

        // When traced, the phase's comm time is *defined* as the span of
        // the segment clock, so child spans sum to it exactly; untraced
        // phases keep the plain wall-clock measurement.
        let traced_ns = seg.finish();
        let after = self.host_sent_snapshot();
        let (work_units, crit_work_units) = self.take_pending_work();
        self.stats.phases.push(PhaseStats {
            compute_secs,
            comm_secs: match traced_ns {
                Some(ns) => ns as f64 / 1e9,
                None => start.elapsed().as_secs_f64(),
            },
            bytes_sent: after.0 - before.0,
            messages_sent: after.1 - before.1,
            work_units,
            crit_work_units,
        });
        self.mark = Instant::now();
        Ok(())
    }

    /// Distributed termination detection: true iff `local_active` is true on
    /// any host. Timed as communication.
    pub fn any_globally(&mut self, local_active: bool) -> bool {
        self.try_any_globally(local_active)
            .unwrap_or_else(|e| panic!("termination detection failed: {e}"))
    }

    /// As [`GluonContext::any_globally`], surfacing network failure as an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_any_globally(&mut self, local_active: bool) -> Result<bool, NetError> {
        let compute_secs = self.mark.elapsed().as_secs_f64();
        let start = Instant::now();
        let phase_idx = self.stats.phases.len() as u32;
        let seg = Segmenter::begin(&self.tracer, self.rank(), phase_idx, Stage::Collective);
        let any = self.comm.try_any(local_active)?;
        let traced_ns = seg.finish();
        let (work_units, crit_work_units) = self.take_pending_work();
        self.stats.phases.push(PhaseStats {
            compute_secs,
            comm_secs: match traced_ns {
                Some(ns) => ns as f64 / 1e9,
                None => start.elapsed().as_secs_f64(),
            },
            bytes_sent: 0,
            messages_sent: 0,
            work_units,
            crit_work_units,
        });
        self.mark = Instant::now();
        Ok(any)
    }

    /// Global sum over hosts (e.g. pagerank residual norms). Timed as
    /// communication.
    pub fn sum_globally(&mut self, local: f64) -> f64 {
        self.try_sum_globally(local)
            .unwrap_or_else(|e| panic!("global sum failed: {e}"))
    }

    /// As [`GluonContext::sum_globally`], surfacing network failure as an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if a peer becomes unreachable.
    pub fn try_sum_globally(&mut self, local: f64) -> Result<f64, NetError> {
        let compute_secs = self.mark.elapsed().as_secs_f64();
        let start = Instant::now();
        let phase_idx = self.stats.phases.len() as u32;
        let seg = Segmenter::begin(&self.tracer, self.rank(), phase_idx, Stage::Collective);
        let sum = self.comm.try_all_reduce_f64(local, |a, b| a + b)?;
        let traced_ns = seg.finish();
        let (work_units, crit_work_units) = self.take_pending_work();
        self.stats.phases.push(PhaseStats {
            compute_secs,
            comm_secs: match traced_ns {
                Some(ns) => ns as f64 / 1e9,
                None => start.elapsed().as_secs_f64(),
            },
            bytes_sent: 0,
            messages_sent: 0,
            work_units,
            crit_work_units,
        });
        self.mark = Instant::now();
        Ok(sum)
    }

    /// Books one undecodable payload from `peer` into every counter that
    /// tracks it (per-host stats, transport-level `NetStats`, trace event
    /// stream) and builds the terminal [`SyncError::Decode`].
    fn decode_failed(&mut self, peer: usize, payload_len: usize, error: DecodeError) -> SyncError {
        self.stats.decode_errors += 1;
        self.comm.transport().stats().record_decode_error();
        self.tracer
            .record_event(self.rank(), "decode_error", peer, payload_len as u64);
        SyncError::Decode { peer, error }
    }

    fn host_sent_snapshot(&self) -> (u64, u64) {
        let snap = self.comm.transport().stats().snapshot();
        let rank = self.rank();
        let n = self.world_size();
        let bytes = (0..n).map(|d| snap.bytes_between(rank, d)).sum();
        let msgs = (0..n).map(|d| snap.messages[rank * n + d]).sum();
        (bytes, msgs)
    }

    #[allow(clippy::too_many_arguments)]
    fn send_pattern<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field_name: &'static str,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
    ) -> Result<(), SyncError> {
        if self.pool.is_parallel() {
            return self
                .send_pattern_par(seq, pat, role, filter_idx, field_name, field, updated, seg);
        }
        let rank = self.rank();
        let temporal = self.opts.temporal;
        let compress = self.opts.compress;
        for h in 0..self.world_size() {
            if h == rank {
                continue;
            }
            let list: &[Lid] = match role {
                PatternRole::MirrorToMaster => &self.mirror_lists[filter_idx][h],
                PatternRole::MasterToMirror => &self.master_lists[filter_idx][h],
            };
            if list.is_empty() {
                continue;
            }
            seg.stage(Stage::Extract, Some(h));
            let mut updated_pos: Vec<u32> = Vec::new();
            for (i, &lid) in list.iter().enumerate() {
                if updated.test(lid) {
                    updated_pos.push(i as u32);
                }
            }
            let payload = if temporal {
                seg.stage(Stage::Encode, Some(h));
                encode_memoized_with(
                    list.len(),
                    &updated_pos,
                    |p| field.extract(list[p]),
                    compress,
                )
            } else {
                // Without temporal invariance every update must be
                // re-translated to global IDs — the cost §4.1 memoizes away.
                seg.stage(Stage::MemoTranslate, Some(h));
                let pairs: Vec<(Gid, F::Value)> = updated_pos
                    .iter()
                    .map(|&p| {
                        let lid = list[p as usize];
                        (self.graph.gid(lid), field.extract(lid))
                    })
                    .collect();
                seg.stage(Stage::Encode, Some(h));
                encode_gid_values(&pairs)
            };
            self.tracer
                .record_wire_mode(field_name, payload[0], payload.len() as u64);
            self.tracer.record_message_size(payload.len());
            if role == PatternRole::MirrorToMaster {
                // The shipped values now live at the master; reset the
                // local copies to the reduction identity and deactivate.
                // Dense mode ships *every* list entry, so reset them all.
                seg.stage(Stage::Reset, Some(h));
                if temporal && WireMode::of(&payload) == WireMode::Dense {
                    for &lid in list {
                        field.reset(lid);
                        updated.clear(lid);
                    }
                } else {
                    for &p in &updated_pos {
                        field.reset(list[p as usize]);
                        updated.clear(list[p as usize]);
                    }
                }
            }
            seg.stage(Stage::Send, Some(h));
            self.comm
                .transport()
                .try_send(h, sync_tag(seq, pat), payload)?;
        }
        Ok(())
    }

    /// Parallel send side: per-peer dirty-set scans, extraction, and
    /// encoding are independent reads of the field and the proxy lists, so
    /// each peer's payload is built on a pool worker; the mutating tail
    /// (reset, trace, send) then runs sequentially in rank order, producing
    /// byte-for-byte the payloads and counters of the sequential path.
    #[allow(clippy::too_many_arguments)]
    fn send_pattern_par<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field_name: &'static str,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
    ) -> Result<(), SyncError> {
        let rank = self.rank();
        let temporal = self.opts.temporal;
        let compress = self.opts.compress;
        let lists = match role {
            PatternRole::MirrorToMaster => &self.mirror_lists[filter_idx],
            PatternRole::MasterToMirror => &self.master_lists[filter_idx],
        };
        // One Extract segment covers the whole concurrent extract+encode
        // region: per-peer wall-clock attribution is meaningless when the
        // peers' payloads are built at the same time.
        seg.stage(Stage::Extract, None);
        let graph = self.graph;
        let field_ref: &F = field;
        let updated_ref: &DenseBitset = updated;
        let prepared = self.pool.map_per(self.comm.world_size(), |h| {
            if h == rank {
                return None;
            }
            let list: &[Lid] = &lists[h];
            if list.is_empty() {
                return None;
            }
            let mut updated_pos: Vec<u32> = Vec::new();
            for (i, &lid) in list.iter().enumerate() {
                if updated_ref.test(lid) {
                    updated_pos.push(i as u32);
                }
            }
            let payload = if temporal {
                encode_memoized_with(
                    list.len(),
                    &updated_pos,
                    |p| field_ref.extract(list[p]),
                    compress,
                )
            } else {
                let pairs: Vec<(Gid, F::Value)> = updated_pos
                    .iter()
                    .map(|&p| {
                        let lid = list[p as usize];
                        (graph.gid(lid), field_ref.extract(lid))
                    })
                    .collect();
                encode_gid_values(&pairs)
            };
            Some((updated_pos, payload))
        });
        for (h, prep) in prepared.into_iter().enumerate() {
            let Some((updated_pos, payload)) = prep else {
                continue;
            };
            self.tracer
                .record_wire_mode(field_name, payload[0], payload.len() as u64);
            self.tracer.record_message_size(payload.len());
            if role == PatternRole::MirrorToMaster {
                seg.stage(Stage::Reset, Some(h));
                let list: &[Lid] = &lists[h];
                if temporal && WireMode::of(&payload) == WireMode::Dense {
                    for &lid in list {
                        field.reset(lid);
                        updated.clear(lid);
                    }
                } else {
                    for &p in &updated_pos {
                        field.reset(list[p as usize]);
                        updated.clear(list[p as usize]);
                    }
                }
            }
            seg.stage(Stage::Send, Some(h));
            self.comm
                .transport()
                .try_send(h, sync_tag(seq, pat), payload)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn recv_pattern<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
    ) -> Result<(), SyncError> {
        if self.pool.is_parallel() {
            return self.recv_pattern_par(seq, pat, role, filter_idx, field, updated, seg);
        }
        let rank = self.rank();
        let temporal = self.opts.temporal;
        let graph = self.graph;
        for h in 0..self.world_size() {
            if h == rank {
                continue;
            }
            // I receive exactly when the sender's list toward me is
            // non-empty; by the memoization agreement that is my master (or
            // mirror) list for `h` under the same filter.
            let list: &[Lid] = match role {
                PatternRole::MirrorToMaster => &self.master_lists[filter_idx][h],
                PatternRole::MasterToMirror => &self.mirror_lists[filter_idx][h],
            };
            if list.is_empty() {
                continue;
            }
            seg.stage(Stage::RecvWait, Some(h));
            let payload = self.comm.transport().try_recv(h, sync_tag(seq, pat))?;
            if seg.enabled() {
                // Traced path: decode into a scratch list first so the
                // decode and apply stages get separate spans; the untraced
                // path below fuses them to keep the hot loop allocation-free.
                seg.stage(Stage::Decode, Some(h));
                match role {
                    PatternRole::MirrorToMaster => {
                        if temporal {
                            let mut entries: Vec<(usize, F::Value)> = Vec::new();
                            let res =
                                decode_memoized::<F::Value>(&payload, list.len(), &mut |pos, v| {
                                    entries.push((pos, v));
                                });
                            if let Err(e) = res {
                                return Err(self.decode_failed(h, payload.len(), e));
                            }
                            seg.stage(Stage::Apply, Some(h));
                            for (pos, v) in entries {
                                let lid = list[pos];
                                if field.reduce(lid, v) {
                                    updated.set(lid);
                                }
                            }
                        } else {
                            let mut entries: Vec<(Gid, F::Value)> = Vec::new();
                            let res = decode_gid_values::<F::Value>(&payload, &mut |gid, v| {
                                entries.push((gid, v));
                            });
                            if let Err(e) = res {
                                return Err(self.decode_failed(h, payload.len(), e));
                            }
                            seg.stage(Stage::Apply, Some(h));
                            for (gid, v) in entries {
                                let Some(lid) = graph.lid(gid) else {
                                    return Err(self.decode_failed(
                                        h,
                                        payload.len(),
                                        DecodeError::UnknownGid(gid.0),
                                    ));
                                };
                                if field.reduce(lid, v) {
                                    updated.set(lid);
                                }
                            }
                        }
                    }
                    PatternRole::MasterToMirror => {
                        if temporal {
                            let mut entries: Vec<(usize, F::Value)> = Vec::new();
                            let res =
                                decode_memoized::<F::Value>(&payload, list.len(), &mut |pos, v| {
                                    entries.push((pos, v));
                                });
                            if let Err(e) = res {
                                return Err(self.decode_failed(h, payload.len(), e));
                            }
                            seg.stage(Stage::Apply, Some(h));
                            for (pos, v) in entries {
                                let lid = list[pos];
                                field.set(lid, v);
                                updated.set(lid);
                            }
                        } else {
                            let mut entries: Vec<(Gid, F::Value)> = Vec::new();
                            let res = decode_gid_values::<F::Value>(&payload, &mut |gid, v| {
                                entries.push((gid, v));
                            });
                            if let Err(e) = res {
                                return Err(self.decode_failed(h, payload.len(), e));
                            }
                            seg.stage(Stage::Apply, Some(h));
                            for (gid, v) in entries {
                                let Some(lid) = graph.lid(gid) else {
                                    return Err(self.decode_failed(
                                        h,
                                        payload.len(),
                                        DecodeError::UnknownGid(gid.0),
                                    ));
                                };
                                field.set(lid, v);
                                updated.set(lid);
                            }
                        }
                    }
                }
                continue;
            }
            // Untraced path: fuse decode and apply to keep the hot loop
            // allocation-free. A mid-payload decode error can leave some
            // entries already applied — acceptable because every decode
            // error is terminal for the run. Unknown-GID lookups cannot
            // early-return from inside the closure, so they latch into
            // `bad_gid` and surface right after.
            let mut bad_gid: Option<Gid> = None;
            let res = match role {
                PatternRole::MirrorToMaster => {
                    // I am the master side: combine partial values.
                    if temporal {
                        decode_memoized::<F::Value>(&payload, list.len(), &mut |pos, v| {
                            let lid = list[pos];
                            if field.reduce(lid, v) {
                                updated.set(lid);
                            }
                        })
                    } else {
                        decode_gid_values::<F::Value>(&payload, &mut |gid, v| {
                            if bad_gid.is_some() {
                                return;
                            }
                            match graph.lid(gid) {
                                Some(lid) => {
                                    if field.reduce(lid, v) {
                                        updated.set(lid);
                                    }
                                }
                                None => bad_gid = Some(gid),
                            }
                        })
                    }
                }
                PatternRole::MasterToMirror => {
                    // I am the mirror side: adopt canonical values. The bit
                    // is set even when the value is unchanged: under
                    // general vertex-cuts a mirror with outgoing edges may
                    // have *originated* this update — its dirty bit was
                    // cleared when the reduce shipped it, but its local
                    // out-edges still have to see the value, so the
                    // broadcast must re-activate it.
                    if temporal {
                        decode_memoized::<F::Value>(&payload, list.len(), &mut |pos, v| {
                            let lid = list[pos];
                            field.set(lid, v);
                            updated.set(lid);
                        })
                    } else {
                        decode_gid_values::<F::Value>(&payload, &mut |gid, v| {
                            if bad_gid.is_some() {
                                return;
                            }
                            match graph.lid(gid) {
                                Some(lid) => {
                                    field.set(lid, v);
                                    updated.set(lid);
                                }
                                None => bad_gid = Some(gid),
                            }
                        })
                    }
                }
            };
            let res = res.and(match bad_gid {
                Some(g) => Err(DecodeError::UnknownGid(g.0)),
                None => Ok(()),
            });
            if let Err(e) = res {
                return Err(self.decode_failed(h, payload.len(), e));
            }
        }
        Ok(())
    }

    /// Parallel receive side: payloads are collected from peers in rank
    /// order (receive order is fixed by the protocol, not by the pool),
    /// decoded concurrently into per-peer `(lid, value)` staging buffers,
    /// then applied sequentially in rank order — the same combination
    /// order as the sequential path, so reductions over non-associative
    /// values (floats) stay bit-identical at any thread count.
    #[allow(clippy::too_many_arguments)]
    fn recv_pattern_par<F: FieldSync>(
        &mut self,
        seq: u32,
        pat: u32,
        role: PatternRole,
        filter_idx: usize,
        field: &mut F,
        updated: &mut DenseBitset,
        seg: &mut Segmenter,
    ) -> Result<(), SyncError> {
        let rank = self.rank();
        let n = self.world_size();
        let temporal = self.opts.temporal;
        let lists = match role {
            PatternRole::MirrorToMaster => &self.master_lists[filter_idx],
            PatternRole::MasterToMirror => &self.mirror_lists[filter_idx],
        };
        let mut payloads: Vec<Option<bytes::Bytes>> = vec![None; n];
        for h in 0..n {
            if h == rank || lists[h].is_empty() {
                continue;
            }
            seg.stage(Stage::RecvWait, Some(h));
            payloads[h] = Some(self.comm.transport().try_recv(h, sync_tag(seq, pat))?);
        }
        seg.stage(Stage::Decode, None);
        let graph = self.graph;
        let decoded: Vec<DecodedBatch<F::Value>> = self.pool.map_per(n, |h| {
            let Some(payload) = &payloads[h] else {
                return Ok(Vec::new());
            };
            let list: &[Lid] = &lists[h];
            let mut entries: Vec<(Lid, F::Value)> = Vec::new();
            if temporal {
                decode_memoized::<F::Value>(payload, list.len(), &mut |pos, v| {
                    entries.push((list[pos], v));
                })?;
            } else {
                let mut bad_gid: Option<Gid> = None;
                decode_gid_values::<F::Value>(payload, &mut |gid, v| {
                    if bad_gid.is_some() {
                        return;
                    }
                    match graph.lid(gid) {
                        Some(lid) => entries.push((lid, v)),
                        None => bad_gid = Some(gid),
                    }
                })?;
                if let Some(g) = bad_gid {
                    return Err(DecodeError::UnknownGid(g.0));
                }
            }
            Ok(entries)
        });
        seg.stage(Stage::Apply, None);
        // Apply in rank order; the first malformed payload in rank order
        // wins, so the surfaced error does not depend on worker scheduling.
        for (h, entries) in decoded.into_iter().enumerate() {
            let entries = match entries {
                Ok(entries) => entries,
                Err(e) => {
                    let len = payloads[h].as_ref().map_or(0, |p| p.len());
                    return Err(self.decode_failed(h, len, e));
                }
            };
            match role {
                PatternRole::MirrorToMaster => {
                    for (lid, v) in entries {
                        if field.reduce(lid, v) {
                            updated.set(lid);
                        }
                    }
                }
                PatternRole::MasterToMirror => {
                    for (lid, v) in entries {
                        field.set(lid, v);
                        updated.set(lid);
                    }
                }
            }
        }
        Ok(())
    }
}

impl<T: Transport + ?Sized> std::fmt::Debug for GluonContext<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GluonContext")
            .field("rank", &self.rank())
            .field("world_size", &self.world_size())
            .field("opts", &self.opts)
            .field("phases", &self.stats.num_phases())
            .finish()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PatternRole {
    MirrorToMaster,
    MasterToMirror,
}
