//! Per-(field, peer) reusable buffer pools for allocation-free
//! steady-state sync.
//!
//! The paper's temporal invariance (§4.1) says the partitioning — and
//! therefore every proxy list — never changes after setup. The memory-side
//! consequence is that the *shapes* of all sync buffers are stable too:
//! the dirty-position scan, the encode scratch, the wire payload, the
//! decode staging — all of them reach a high-water size within a couple of
//! rounds and never need to grow again. [`SyncArena`] exploits that by
//! keeping every per-peer buffer alive between `sync` calls, keyed by
//! `(field name, value type)`:
//!
//! * `updated_pos` — the positions of dirty proxies in the agreed list;
//! * [`EncodeScratch`] / [`DecodeScratch`] — codec workspaces;
//! * `entries` / `gid_pairs` — decoded `(lid, value)` staging and the
//!   non-memoized global-ID translation table;
//! * `send_slots` — the *wire payloads themselves*: a small ring of
//!   recyclable [`Bytes`] per (peer, pattern). A payload handed to the
//!   transport is consumed by the peer within a round or two; once the
//!   consumer drops its handle, [`Bytes::try_unique_vec`] can reclaim
//!   the allocation in place. Hosts are only loosely coupled — a peer
//!   that receives from us without sending back can lag a round while
//!   still holding our previous payload — so a single slot per pattern
//!   is not enough: the ring grows (up to [`SLOT_RING_CAP`]) to the
//!   observed in-flight depth, after which every round finds *some*
//!   uniquely-held buffer to reuse. When every pooled buffer is still
//!   held by a consumer the slot misses and a fresh buffer is allocated
//!   — recycling is an optimization, never a correctness assumption.
//!
//! Checkout/checkin moves a whole [`FieldArena`] out of the arena for the
//! duration of one sync call (leaving a cheap empty one in its slot), so
//! the hot path borrows no type-erased storage. Both moves are
//! allocation-free; the only allocations happen during the first
//! [`ARENA_WARMUP_ROUNDS`] calls per field, while buffers grow to their
//! high-water marks.
//!
//! Pooling **cannot** change results: a disabled arena routes every sync
//! call through the *same* code path with a fresh (empty) `FieldArena`,
//! so pooled and unpooled runs produce bit-identical payloads, counters,
//! and labels — the property `tests/alloc_guard.rs` asserts.

use crate::encode::{DecodeError, DecodeScratch, EncodeScratch};
use bytes::Bytes;
use gluon_graph::{Gid, Lid};
use std::any::{Any, TypeId};

/// Number of sync calls per field after which the steady state is
/// expected: every pooled buffer has reached its high-water size, so
/// subsequent rounds perform zero heap allocations (measured by the
/// `alloc-meter` feature and asserted by the allocation guard).
pub const ARENA_WARMUP_ROUNDS: u64 = 2;

/// Maximum depth of one (peer, pattern) send-slot ring: the number of
/// payload buffers kept alive waiting for consumers to release them.
/// In-flight depth is bounded by how far two hosts can drift apart within
/// the BSP structure (one round in practice, so rings saturate at 2); the
/// cap only exists to bound memory if a consumer goes pathological.
pub(crate) const SLOT_RING_CAP: usize = 8;

/// Reusable per-peer scratch of one synchronized field.
///
/// Every buffer is cleared (never shrunk) between uses, so capacities
/// ratchet up to their high-water marks during warm-up and stay there.
pub(crate) struct PeerScratch<V> {
    /// Positions (indices into the agreed proxy list) of dirty proxies.
    pub updated_pos: Vec<u32>,
    /// Encoder workspace (value packing, bitvec, run lengths).
    pub enc: EncodeScratch,
    /// Decoder workspace (position/run validation buffers).
    pub dec: DecodeScratch,
    /// Decoded `(lid, value)` staging for the receive side.
    pub entries: Vec<(Lid, V)>,
    /// Global-ID translation table for the non-memoized send path.
    pub gid_pairs: Vec<(Gid, V)>,
    /// Recyclable wire payloads: one small ring per pattern (0 = reduce,
    /// 1 = broadcast — both can be in flight within a single round, so
    /// they must not share buffers). Each ring holds every payload still
    /// awaiting release by its consumer, capped at [`SLOT_RING_CAP`].
    pub send_slots: [Vec<Bytes>; 2],
    /// Per-call staging: the payload built (send side) or received
    /// (receive side) for this peer. Always `None` between calls.
    pub payload: Option<Bytes>,
    /// Per-call staging: the decode failure of this peer's payload.
    pub decode_err: Option<DecodeError>,
    /// Per-call staging: whether the last built payload reused its slot's
    /// allocation (a pool hit) or had to allocate fresh (a miss).
    pub recycled: bool,
}

impl<V> Default for PeerScratch<V> {
    fn default() -> Self {
        PeerScratch {
            updated_pos: Vec::new(),
            enc: EncodeScratch::default(),
            dec: DecodeScratch::default(),
            entries: Vec::new(),
            gid_pairs: Vec::new(),
            send_slots: [Vec::new(), Vec::new()],
            payload: None,
            decode_err: None,
            recycled: false,
        }
    }
}

impl<V> PeerScratch<V> {
    /// Current pooled footprint of this peer's buffers, in bytes.
    fn footprint_bytes(&self) -> usize {
        self.updated_pos.capacity() * 4
            + self.enc.capacity_bytes()
            + self.dec.capacity_bytes()
            + self.entries.capacity() * std::mem::size_of::<(Lid, V)>()
            + self.gid_pairs.capacity() * std::mem::size_of::<(Gid, V)>()
            + self
                .send_slots
                .iter()
                .flat_map(|ring| ring.iter())
                .map(|b| b.len())
                .sum::<usize>()
    }
}

/// All pooled buffers of one synchronized field: one [`PeerScratch`] per
/// host, plus the field's round counter (which decides when the warm-up
/// grace period ends).
pub(crate) struct FieldArena<V> {
    /// Indexed by peer rank; grown once to the world size.
    pub peers: Vec<PeerScratch<V>>,
    /// Number of sync calls this field has performed.
    pub rounds: u64,
}

impl<V> Default for FieldArena<V> {
    fn default() -> Self {
        FieldArena {
            peers: Vec::new(),
            rounds: 0,
        }
    }
}

impl<V> FieldArena<V> {
    /// Grows the peer table to `n` slots (warm-up only; a no-op after).
    pub fn ensure_peers(&mut self, n: usize) {
        if self.peers.len() < n {
            self.peers.resize_with(n, PeerScratch::default);
        }
    }

    /// Current pooled footprint of every peer's buffers, in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.peers.iter().map(PeerScratch::footprint_bytes).sum()
    }
}

/// Per-field slot storage: the key identifies a field by its trace name
/// and its wire value type (two fields may legitimately share a name, and
/// then they share buffers — harmless, since every buffer is cleared and
/// re-sized per call).
type ArenaKey = (&'static str, TypeId);

/// The per-context pool of per-field buffer arenas (see the module docs).
///
/// Owned by `GluonContext`; enabled by default and toggled with
/// `GluonContext::with_arena`. Disabling does not change any result —
/// every sync call runs the same code over a fresh, empty arena instead
/// of a pooled one.
pub struct SyncArena {
    enabled: bool,
    /// Linear scan keyed by `(name, value type)`: programs sync a handful
    /// of fields, so a map would only add hashing to the hot path.
    slots: Vec<(ArenaKey, Box<dyn Any + Send>)>,
}

impl SyncArena {
    /// Creates an arena; a disabled arena hands out fresh buffers on
    /// every checkout and drops them on checkin.
    pub fn new(enabled: bool) -> Self {
        SyncArena {
            enabled,
            slots: Vec::new(),
        }
    }

    /// Whether buffers are pooled across sync calls.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of distinct `(field, value type)` pools held.
    pub fn num_fields(&self) -> usize {
        self.slots.len()
    }

    /// Takes the pooled buffers of `name` out of the arena for one sync
    /// call, leaving an empty `FieldArena` in the slot (a move, not an
    /// allocation). First use of a field — or any use while disabled —
    /// returns a fresh arena.
    pub(crate) fn checkout<V: Send + 'static>(&mut self, name: &'static str) -> FieldArena<V> {
        if !self.enabled {
            return FieldArena::default();
        }
        let key = (name, TypeId::of::<V>());
        if let Some((_, boxed)) = self.slots.iter_mut().find(|(k, _)| *k == key) {
            if let Some(slot) = boxed.downcast_mut::<FieldArena<V>>() {
                return std::mem::take(slot);
            }
        }
        FieldArena::default()
    }

    /// Returns a field's buffers to the arena after a sync call. Boxes a
    /// new slot on the field's first checkin (warm-up); every later
    /// checkin is a plain move. Dropped immediately when disabled.
    pub(crate) fn checkin<V: Send + 'static>(&mut self, name: &'static str, fa: FieldArena<V>) {
        if !self.enabled {
            return;
        }
        let key = (name, TypeId::of::<V>());
        if let Some((_, boxed)) = self.slots.iter_mut().find(|(k, _)| *k == key) {
            if let Some(slot) = boxed.downcast_mut::<FieldArena<V>>() {
                *slot = fa;
                return;
            }
        }
        self.slots.push((key, Box::new(fa)));
    }
}

impl std::fmt::Debug for SyncArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncArena")
            .field("enabled", &self.enabled)
            .field("fields", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_round_trips_buffers() {
        let mut arena = SyncArena::new(true);
        let mut fa = arena.checkout::<u32>("dist");
        fa.ensure_peers(4);
        fa.peers[2].updated_pos.reserve(1000);
        let cap = fa.peers[2].updated_pos.capacity();
        assert!(cap >= 1000);
        arena.checkin("dist", fa);
        // Same field: the grown buffers come back.
        let fa = arena.checkout::<u32>("dist");
        assert_eq!(fa.peers.len(), 4);
        assert_eq!(fa.peers[2].updated_pos.capacity(), cap);
        arena.checkin("dist", fa);
        assert_eq!(arena.num_fields(), 1);
    }

    #[test]
    fn fields_are_isolated_by_name_and_type() {
        let mut arena = SyncArena::new(true);
        let mut fa = arena.checkout::<u32>("dist");
        fa.ensure_peers(2);
        arena.checkin("dist", fa);
        // Different name: fresh buffers.
        assert_eq!(arena.checkout::<u32>("rank").peers.len(), 0);
        // Same name, different value type: also fresh.
        assert_eq!(arena.checkout::<f64>("dist").peers.len(), 0);
        // The original pool is untouched by the probes above.
        assert_eq!(arena.checkout::<u32>("dist").peers.len(), 2);
    }

    #[test]
    fn disabled_arena_pools_nothing() {
        let mut arena = SyncArena::new(false);
        let mut fa = arena.checkout::<u32>("dist");
        fa.ensure_peers(8);
        arena.checkin("dist", fa);
        assert_eq!(arena.checkout::<u32>("dist").peers.len(), 0);
        assert_eq!(arena.num_fields(), 0);
        assert!(!arena.enabled());
    }

    #[test]
    fn footprint_tracks_held_capacity() {
        let mut fa = FieldArena::<u64>::default();
        fa.ensure_peers(1);
        assert_eq!(fa.footprint_bytes(), 0);
        fa.peers[0].updated_pos.reserve_exact(16);
        assert!(fa.footprint_bytes() >= 64);
    }
}
