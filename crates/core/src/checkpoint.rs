//! Epoch checkpointing for crash recovery.
//!
//! A [`CheckpointStore`] holds per-host snapshots of owned field state,
//! keyed by `(host, epoch)`. Hosts save through the same [`SyncValue`]
//! codec the wire uses, every `checkpoint_every` rounds; a supervisor
//! rolls the whole cluster back to the newest epoch that *every* host
//! completed ([`CheckpointStore::latest_complete_epoch`]) and re-executes
//! forward. Because the runtime is deterministic, re-execution from a
//! consistent cut reproduces the crash-free run bit for bit — no message
//! logging or in-flight-channel capture is needed, which is what makes
//! checkpoints this cheap (see DESIGN.md, "Fault model and reliability").
//!
//! Two backends share one API: an in-memory map (tests, single-process
//! clusters — the default) and a directory of files (survives the
//! process). Corrupt or truncated snapshot files are treated as absent
//! rather than trusted, so a torn write degrades to an older epoch
//! instead of poisoning recovery.

use crate::value::SyncValue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Magic prefix of a serialized snapshot file.
const MAGIC: &[u8; 8] = b"GLUCKPT1";

/// One host's state at one epoch boundary: the algorithm round it
/// completed plus a set of named field payloads.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointSnapshot {
    round: u64,
    fields: Vec<(String, Vec<u8>)>,
}

impl CheckpointSnapshot {
    /// An empty snapshot taken after completing `round`.
    pub fn new(round: u64) -> CheckpointSnapshot {
        CheckpointSnapshot {
            round,
            fields: Vec::new(),
        }
    }

    /// The algorithm round this snapshot was taken after.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Serializes `values` under `name` through the wire codec.
    pub fn put_values<V: SyncValue>(&mut self, name: &str, values: &[V]) {
        let mut buf = Vec::with_capacity(values.len() * V::WIRE_BYTES);
        for &v in values {
            v.write_to(&mut buf);
        }
        self.put_raw(name, buf);
    }

    /// Stores an already-encoded payload under `name`, replacing any
    /// previous payload with the same name.
    pub fn put_raw(&mut self, name: &str, data: Vec<u8>) {
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| n == name) {
            slot.1 = data;
        } else {
            self.fields.push((name.to_owned(), data));
        }
    }

    /// Decodes the payload stored under `name`, or `None` if absent or
    /// not a whole number of values.
    pub fn values<V: SyncValue>(&self, name: &str) -> Option<Vec<V>> {
        let data = self.raw(name)?;
        if !data.len().is_multiple_of(V::WIRE_BYTES) {
            return None;
        }
        Some(data.chunks_exact(V::WIRE_BYTES).map(V::read_from).collect())
    }

    /// The raw payload stored under `name`.
    pub fn raw(&self, name: &str) -> Option<&[u8]> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Total payload bytes across all fields (what a save costs).
    pub fn payload_bytes(&self) -> u64 {
        self.fields.iter().map(|(_, d)| d.len() as u64).sum()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.payload_bytes() as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (name, data) in &self.fields {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Fully fallible decode: any truncation or malformed header yields
    /// `None` (the snapshot is then treated as never written).
    fn decode(buf: &[u8]) -> Option<CheckpointSnapshot> {
        fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if buf.len() < n {
                return None;
            }
            let (head, rest) = buf.split_at(n);
            *buf = rest;
            Some(head)
        }
        let mut b = buf;
        if take(&mut b, MAGIC.len())? != MAGIC {
            return None;
        }
        let round = u64::from_le_bytes(take(&mut b, 8)?.try_into().ok()?);
        let count = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?);
        let mut fields = Vec::new();
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(&mut b, 4)?.try_into().ok()?) as usize;
            let name = std::str::from_utf8(take(&mut b, name_len)?)
                .ok()?
                .to_owned();
            let data_len = u64::from_le_bytes(take(&mut b, 8)?.try_into().ok()?);
            let data = take(&mut b, usize::try_from(data_len).ok()?)?.to_vec();
            fields.push((name, data));
        }
        if !b.is_empty() {
            return None;
        }
        Some(CheckpointSnapshot { round, fields })
    }
}

#[derive(Debug)]
enum Backend {
    Memory(Mutex<HashMap<(usize, u64), CheckpointSnapshot>>),
    Dir(PathBuf),
}

/// Shared store of epoch checkpoints, cloneable across host threads.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    backend: Arc<Backend>,
}

impl CheckpointStore {
    /// An in-memory store (the default for simulated clusters).
    pub fn in_memory() -> CheckpointStore {
        CheckpointStore {
            backend: Arc::new(Backend::Memory(Mutex::new(HashMap::new()))),
        }
    }

    /// A file-backed store rooted at `dir` (created if missing). Each
    /// snapshot is one file, written to a temporary name and renamed so a
    /// crash mid-save leaves the previous epoch intact.
    pub fn on_disk(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            backend: Arc::new(Backend::Dir(dir)),
        })
    }

    fn file_name(host: usize, epoch: u64) -> String {
        format!("ckpt-h{host}-e{epoch}.bin")
    }

    fn parse_file_name(name: &str) -> Option<(usize, u64)> {
        let rest = name.strip_prefix("ckpt-h")?.strip_suffix(".bin")?;
        let (host, epoch) = rest.split_once("-e")?;
        Some((host.parse().ok()?, epoch.parse().ok()?))
    }

    /// Saves `snap` as host `host`'s state at `epoch`, replacing any
    /// previous snapshot at the same key.
    pub fn save(&self, host: usize, epoch: u64, snap: CheckpointSnapshot) -> std::io::Result<()> {
        match &*self.backend {
            Backend::Memory(map) => {
                map.lock().insert((host, epoch), snap);
                Ok(())
            }
            Backend::Dir(dir) => {
                let tmp = dir.join(format!(".{}.tmp", Self::file_name(host, epoch)));
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&snap.encode())?;
                f.sync_all()?;
                drop(f);
                std::fs::rename(&tmp, dir.join(Self::file_name(host, epoch)))
            }
        }
    }

    /// Loads host `host`'s snapshot at `epoch`; `None` if never saved (or,
    /// on disk, unreadable or corrupt).
    pub fn load(&self, host: usize, epoch: u64) -> Option<CheckpointSnapshot> {
        match &*self.backend {
            Backend::Memory(map) => map.lock().get(&(host, epoch)).cloned(),
            Backend::Dir(dir) => {
                let mut buf = Vec::new();
                std::fs::File::open(dir.join(Self::file_name(host, epoch)))
                    .ok()?
                    .read_to_end(&mut buf)
                    .ok()?;
                CheckpointSnapshot::decode(&buf)
            }
        }
    }

    /// Every `(host, epoch)` key present (corrupt disk snapshots excluded).
    fn keys(&self) -> Vec<(usize, u64)> {
        match &*self.backend {
            Backend::Memory(map) => map.lock().keys().copied().collect(),
            Backend::Dir(dir) => std::fs::read_dir(dir)
                .into_iter()
                .flatten()
                .flatten()
                .filter_map(|entry| {
                    let name = entry.file_name();
                    let (host, epoch) = Self::parse_file_name(name.to_str()?)?;
                    // A present-but-corrupt file must not count as saved.
                    self.load(host, epoch).map(|_| (host, epoch))
                })
                .collect(),
        }
    }

    /// The newest epoch that *every* host `0..world_size` has saved — the
    /// consistent cut recovery rolls back to. `None` if no epoch is
    /// complete (recovery must restart from scratch).
    pub fn latest_complete_epoch(&self, world_size: usize) -> Option<u64> {
        let mut per_epoch: HashMap<u64, Vec<bool>> = HashMap::new();
        for (host, epoch) in self.keys() {
            if host < world_size {
                per_epoch
                    .entry(epoch)
                    .or_insert_with(|| vec![false; world_size])[host] = true;
            }
        }
        per_epoch
            .into_iter()
            .filter(|(_, hosts)| hosts.iter().all(|&h| h))
            .map(|(epoch, _)| epoch)
            .max()
    }

    /// Drops every snapshot (a supervisor calls this between unrelated
    /// runs sharing one store).
    pub fn clear(&self) {
        match &*self.backend {
            Backend::Memory(map) => map.lock().clear(),
            Backend::Dir(dir) => {
                for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
                    let name = entry.file_name();
                    if name
                        .to_str()
                        .is_some_and(|n| Self::parse_file_name(n).is_some())
                    {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> CheckpointSnapshot {
        let mut s = CheckpointSnapshot::new(round);
        s.put_values::<u32>("labels", &[1, 2, 3, 4, u32::MAX]);
        s.put_values::<u64>("active_words", &[0b1011, 0]);
        s.put_values::<f64>("rank", &[0.15, 0.425]);
        s
    }

    #[test]
    fn values_round_trip_through_the_codec() {
        let s = sample(9);
        assert_eq!(s.round(), 9);
        assert_eq!(
            s.values::<u32>("labels").unwrap(),
            vec![1, 2, 3, 4, u32::MAX]
        );
        assert_eq!(s.values::<u64>("active_words").unwrap(), vec![0b1011, 0]);
        assert_eq!(s.values::<f64>("rank").unwrap(), vec![0.15, 0.425]);
        assert!(s.values::<u32>("missing").is_none());
        // Wrong-width reads are refused, not mis-sliced.
        assert!(s.values::<u64>("labels").is_none());
    }

    #[test]
    fn put_replaces_by_name() {
        let mut s = CheckpointSnapshot::new(1);
        s.put_values::<u32>("x", &[1]);
        s.put_values::<u32>("x", &[7, 8]);
        assert_eq!(s.values::<u32>("x").unwrap(), vec![7, 8]);
    }

    #[test]
    fn in_memory_store_tracks_complete_epochs() {
        let store = CheckpointStore::in_memory();
        assert_eq!(store.latest_complete_epoch(2), None);
        store.save(0, 1, sample(10)).unwrap();
        assert_eq!(store.latest_complete_epoch(2), None, "host 1 missing");
        store.save(1, 1, sample(10)).unwrap();
        assert_eq!(store.latest_complete_epoch(2), Some(1));
        // A newer but incomplete epoch must not win.
        store.save(0, 2, sample(20)).unwrap();
        assert_eq!(store.latest_complete_epoch(2), Some(1));
        store.save(1, 2, sample(20)).unwrap();
        assert_eq!(store.latest_complete_epoch(2), Some(2));
        assert_eq!(store.load(0, 2).unwrap().round(), 20);
        store.clear();
        assert_eq!(store.latest_complete_epoch(2), None);
    }

    #[test]
    fn disk_store_round_trips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "gluon-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::on_disk(&dir).unwrap();
        store.save(0, 3, sample(30)).unwrap();
        store.save(1, 3, sample(30)).unwrap();
        assert_eq!(store.latest_complete_epoch(2), Some(3));
        // A fresh handle over the same directory sees the same state.
        let reopened = CheckpointStore::on_disk(&dir).unwrap();
        let snap = reopened.load(1, 3).expect("snapshot persisted");
        assert_eq!(snap, sample(30));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_snapshots_are_treated_as_absent() {
        let dir = std::env::temp_dir().join(format!(
            "gluon-ckpt-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::on_disk(&dir).unwrap();
        store.save(0, 1, sample(10)).unwrap();
        store.save(1, 1, sample(10)).unwrap();
        store.save(0, 2, sample(20)).unwrap();
        store.save(1, 2, sample(20)).unwrap();
        // Truncate host 1's epoch-2 file mid-payload: a torn write.
        let victim = dir.join(CheckpointStore::file_name(1, 2));
        let full = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &full[..full.len() / 2]).unwrap();
        assert!(store.load(1, 2).is_none(), "torn snapshot must not decode");
        assert_eq!(
            store.latest_complete_epoch(2),
            Some(1),
            "recovery falls back to the older complete epoch"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CheckpointSnapshot::decode(b"").is_none());
        assert!(CheckpointSnapshot::decode(b"GLUCKPT1").is_none());
        assert!(CheckpointSnapshot::decode(b"NOTMAGIC\0\0\0\0\0\0\0\0\0\0\0\0").is_none());
        let good = sample(4).encode();
        assert_eq!(CheckpointSnapshot::decode(&good).unwrap(), sample(4));
        // Trailing junk is rejected too.
        let mut long = good.clone();
        long.push(0);
        assert!(CheckpointSnapshot::decode(&long).is_none());
    }
}
