//! User-tag allocation for Gluon's own traffic.
//!
//! All tags live below [`gluon_net::MAX_USER_TAG`]; collectives use their own
//! reserved range above it.

/// Memoization handshake messages (one per host pair at startup).
pub const MEMO_TAG: u32 = 1;

/// First tag of the sync-phase window; see [`sync_tag`].
pub const SYNC_TAG_BASE: u32 = 16;

/// Number of distinguishable in-flight sync phases. BSP lock-step plus FIFO
/// channels only strictly need 2, but a wider window catches mismatched
/// SPMD programs early instead of silently mispairing messages.
pub const SYNC_TAG_WINDOW: u32 = 1024;

/// Tag for sync phase number `seq`, pattern `pat` (0 = reduce,
/// 1 = broadcast).
pub fn sync_tag(seq: u32, pat: u32) -> u32 {
    debug_assert!(pat < 2);
    let tag = SYNC_TAG_BASE + (seq % SYNC_TAG_WINDOW) * 2 + pat;
    // Every tag Gluon itself uses must stay in the user range; the space
    // above it belongs to collectives and the reliability layer.
    gluon_net::assert_user_tag(tag);
    tag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_stay_in_user_range() {
        for seq in [0, 1, 5_000_000] {
            for pat in 0..2 {
                let t = sync_tag(seq, pat);
                assert!(t >= SYNC_TAG_BASE);
                assert!(t < gluon_net::MAX_USER_TAG);
            }
        }
    }

    #[test]
    fn reduce_and_broadcast_tags_differ() {
        assert_ne!(sync_tag(7, 0), sync_tag(7, 1));
    }
}
