//! Field synchronization structures — the paper's Figure 5 API.
//!
//! A [`FieldSync`] describes how Gluon accesses one node field: how to
//! *extract* a proxy's value, how a master *reduces* partial values received
//! from mirrors, how a mirror *resets* after its value has been shipped, and
//! how a mirror *sets* the canonical value received in a broadcast.
//!
//! Ready-made structures cover the reductions the benchmarks use:
//! [`MinField`] (bfs / sssp / cc), [`MaxField`], [`SumField`] (push-style
//! pagerank residuals), and [`PairMinField`] for lexicographic argmin
//! reductions.
//!
//! # The sum-field contract
//!
//! For reductions whose identity differs from "keep the current value"
//! (e.g. addition), the application must initialize *mirror* proxies to the
//! identity and let only masters carry initial mass; Gluon resets mirrors to
//! the identity after every reduce so that dense-mode retransmissions never
//! double-count. [`init_field`] encodes this convention.

use crate::value::SyncValue;
use gluon_graph::Lid;
use gluon_partition::LocalGraph;

/// How Gluon reads and writes one synchronized node field.
///
/// The four methods correspond one-to-one to the `extract` / `reduce` /
/// `reset` / `set` functions of the paper's reduce and broadcast structures
/// (Figure 5).
///
/// Fields are `Sync` so the runtime's parallel sync path may call
/// [`FieldSync::extract`] from several worker threads at once (the
/// mutating methods are only ever called from the sequential apply phase).
/// Slice-backed fields satisfy this automatically.
pub trait FieldSync: Sync {
    /// The label type on the wire.
    type Value: SyncValue;

    /// Reads the field of proxy `lid` (used by both reduce and broadcast
    /// senders).
    fn extract(&self, lid: Lid) -> Self::Value;

    /// Combines `value` into proxy `lid` (called at masters). Returns
    /// whether the stored value changed — Gluon uses this to keep the
    /// dirty set precise.
    fn reduce(&mut self, lid: Lid, value: Self::Value) -> bool;

    /// Resets proxy `lid` to the reduction identity (called at mirrors
    /// after their value has been communicated).
    fn reset(&mut self, lid: Lid);

    /// Overwrites proxy `lid` with the canonical value (called at mirrors
    /// during broadcast).
    fn set(&mut self, lid: Lid, value: Self::Value);

    // --- Bulk variants (the paper: "there are also bulk-variants for
    // GPUs"). Device-backed fields override these with one staged
    // device↔host transfer; the defaults loop over the scalar methods. ---

    /// Extracts the values of many proxies at once into `out`.
    fn extract_batch(&self, lids: &[Lid], out: &mut Vec<Self::Value>) {
        out.clear();
        out.extend(lids.iter().map(|&l| self.extract(l)));
    }

    /// Reduces one value into each listed proxy; returns how many changed.
    fn reduce_batch(&mut self, lids: &[Lid], values: &[Self::Value]) -> usize {
        assert_eq!(lids.len(), values.len(), "one value per lid");
        lids.iter()
            .zip(values)
            .filter(|&(&l, &v)| self.reduce(l, v))
            .count()
    }

    /// Overwrites each listed proxy with its value.
    fn set_batch(&mut self, lids: &[Lid], values: &[Self::Value]) {
        assert_eq!(lids.len(), values.len(), "one value per lid");
        for (&l, &v) in lids.iter().zip(values) {
            self.set(l, v);
        }
    }

    /// Resets many proxies to the reduction identity.
    fn reset_batch(&mut self, lids: &[Lid]) {
        for &l in lids {
            self.reset(l);
        }
    }
}

/// Minimum reduction over a label slice. Reset keeps the current value
/// (re-reducing a stale minimum is idempotent), matching the paper's note
/// that for sssp "keeping labels of mirror nodes unchanged is sufficient".
#[derive(Debug)]
pub struct MinField<'a, T> {
    data: &'a mut [T],
}

impl<'a, T> MinField<'a, T> {
    /// Wraps the label slice (one entry per proxy).
    pub fn new(data: &'a mut [T]) -> Self {
        MinField { data }
    }
}

impl<T: SyncValue + PartialOrd> FieldSync for MinField<'_, T> {
    type Value = T;

    fn extract(&self, lid: Lid) -> T {
        self.data[lid.index()]
    }

    fn reduce(&mut self, lid: Lid, value: T) -> bool {
        if value < self.data[lid.index()] {
            self.data[lid.index()] = value;
            true
        } else {
            false
        }
    }

    fn reset(&mut self, _lid: Lid) {}

    fn set(&mut self, lid: Lid, value: T) {
        self.data[lid.index()] = value;
    }
}

/// Maximum reduction over a label slice; reset keeps the current value.
#[derive(Debug)]
pub struct MaxField<'a, T> {
    data: &'a mut [T],
}

impl<'a, T> MaxField<'a, T> {
    /// Wraps the label slice (one entry per proxy).
    pub fn new(data: &'a mut [T]) -> Self {
        MaxField { data }
    }
}

impl<T: SyncValue + PartialOrd> FieldSync for MaxField<'_, T> {
    type Value = T;

    fn extract(&self, lid: Lid) -> T {
        self.data[lid.index()]
    }

    fn reduce(&mut self, lid: Lid, value: T) -> bool {
        if value > self.data[lid.index()] {
            self.data[lid.index()] = value;
            true
        } else {
            false
        }
    }

    fn reset(&mut self, _lid: Lid) {}

    fn set(&mut self, lid: Lid, value: T) {
        self.data[lid.index()] = value;
    }
}

/// Numeric zero, for sum identities.
pub trait Zero {
    /// The additive identity.
    const ZERO: Self;
}

macro_rules! zero_impl {
    ($($ty:ty),*) => {$(
        impl Zero for $ty {
            const ZERO: Self = 0 as $ty;
        }
    )*};
}

zero_impl!(u32, u64, i32, i64, f32, f64);

/// Addition reduction: masters accumulate, mirrors reset to zero after
/// sending (push-style pagerank residuals).
#[derive(Debug)]
pub struct SumField<'a, T> {
    data: &'a mut [T],
}

impl<'a, T> SumField<'a, T> {
    /// Wraps the label slice (one entry per proxy).
    pub fn new(data: &'a mut [T]) -> Self {
        SumField { data }
    }
}

impl<T> FieldSync for SumField<'_, T>
where
    T: SyncValue + Zero + std::ops::AddAssign,
{
    type Value = T;

    fn extract(&self, lid: Lid) -> T {
        self.data[lid.index()]
    }

    fn reduce(&mut self, lid: Lid, value: T) -> bool {
        if value == T::ZERO {
            return false;
        }
        self.data[lid.index()] += value;
        true
    }

    fn reset(&mut self, lid: Lid) {
        self.data[lid.index()] = T::ZERO;
    }

    fn set(&mut self, lid: Lid, value: T) {
        self.data[lid.index()] = value;
    }
}

/// Lexicographic minimum over `(T, U)` pairs (argmin-style reductions).
#[derive(Debug)]
pub struct PairMinField<'a, T, U> {
    data: &'a mut [(T, U)],
}

impl<'a, T, U> PairMinField<'a, T, U> {
    /// Wraps the pair slice (one entry per proxy).
    pub fn new(data: &'a mut [(T, U)]) -> Self {
        PairMinField { data }
    }
}

impl<T, U> FieldSync for PairMinField<'_, T, U>
where
    T: SyncValue + PartialOrd,
    U: SyncValue + PartialOrd,
{
    type Value = (T, U);

    fn extract(&self, lid: Lid) -> (T, U) {
        self.data[lid.index()]
    }

    fn reduce(&mut self, lid: Lid, value: (T, U)) -> bool {
        let cur = &mut self.data[lid.index()];
        let smaller = value.0 < cur.0 || (value.0 == cur.0 && value.1 < cur.1);
        if smaller {
            *cur = value;
            true
        } else {
            false
        }
    }

    fn reset(&mut self, _lid: Lid) {}

    fn set(&mut self, lid: Lid, value: (T, U)) {
        self.data[lid.index()] = value;
    }
}

/// Initializes a per-proxy field: masters get `master_value`, mirrors get
/// `mirror_value`.
///
/// Use `mirror_value = identity` for sum-style fields (see the module docs)
/// and `mirror_value = master_value` for min/max-style fields.
///
/// # Panics
///
/// Panics if `data` is not one entry per proxy.
pub fn init_field<T: Copy>(graph: &LocalGraph, data: &mut [T], master_value: T, mirror_value: T) {
    assert_eq!(
        data.len(),
        graph.num_proxies() as usize,
        "field must have one entry per proxy"
    );
    for m in graph.masters() {
        data[m.index()] = master_value;
    }
    for m in graph.mirrors() {
        data[m.index()] = mirror_value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_field_reduces_downward_only() {
        let mut data = vec![10u32, 20];
        let mut f = MinField::new(&mut data);
        assert!(f.reduce(Lid(0), 5));
        assert!(!f.reduce(Lid(0), 7));
        assert_eq!(f.extract(Lid(0)), 5);
        f.reset(Lid(0));
        assert_eq!(f.extract(Lid(0)), 5, "min reset keeps value");
    }

    #[test]
    fn max_field_reduces_upward_only() {
        let mut data = vec![10u32];
        let mut f = MaxField::new(&mut data);
        assert!(!f.reduce(Lid(0), 5));
        assert!(f.reduce(Lid(0), 15));
        assert_eq!(f.extract(Lid(0)), 15);
    }

    #[test]
    fn sum_field_accumulates_and_resets_to_zero() {
        let mut data = vec![1.0f64];
        let mut f = SumField::new(&mut data);
        assert!(f.reduce(Lid(0), 0.5));
        assert!(!f.reduce(Lid(0), 0.0), "adding zero is not a change");
        assert!((f.extract(Lid(0)) - 1.5).abs() < 1e-12);
        f.reset(Lid(0));
        assert_eq!(f.extract(Lid(0)), 0.0);
    }

    #[test]
    fn pair_min_orders_lexicographically() {
        let mut data = vec![(5u32, 9u32)];
        let mut f = PairMinField::new(&mut data);
        assert!(!f.reduce(Lid(0), (5, 10)));
        assert!(f.reduce(Lid(0), (5, 3)));
        assert!(f.reduce(Lid(0), (4, 100)));
        assert_eq!(f.extract(Lid(0)), (4, 100));
    }

    #[test]
    fn bulk_variants_match_scalar_behavior() {
        let mut data = vec![10u32, 20, 30, 40];
        let mut f = MinField::new(&mut data);
        let lids = [Lid(0), Lid(2), Lid(3)];
        let mut out = Vec::new();
        f.extract_batch(&lids, &mut out);
        assert_eq!(out, vec![10, 30, 40]);
        let changed = f.reduce_batch(&lids, &[5, 100, 40]);
        assert_eq!(changed, 1, "only lid 0 improved");
        assert_eq!(f.extract(Lid(0)), 5);
        f.set_batch(&[Lid(1)], &[7]);
        assert_eq!(f.extract(Lid(1)), 7);
        f.reset_batch(&lids); // min reset keeps values
        assert_eq!(f.extract(Lid(0)), 5);
    }

    #[test]
    fn sum_reset_batch_zeroes() {
        let mut data = vec![1.5f64, 2.5];
        let mut f = SumField::new(&mut data);
        f.reset_batch(&[Lid(0), Lid(1)]);
        assert_eq!(data, vec![0.0, 0.0]);
    }

    #[test]
    fn set_overwrites_unconditionally() {
        let mut data = vec![1u32];
        let mut f = MinField::new(&mut data);
        f.set(Lid(0), 100);
        assert_eq!(f.extract(Lid(0)), 100);
    }

    #[test]
    fn init_field_distinguishes_masters_and_mirrors() {
        use gluon_graph::gen;
        use gluon_partition::{partition_all, Policy};

        let g = gen::rmat(5, 4, Default::default(), 2);
        let parts = partition_all(&g, 2, Policy::Oec);
        let lg = &parts[0];
        let mut data = vec![0.0f64; lg.num_proxies() as usize];
        init_field(lg, &mut data, 0.15, 0.0);
        for m in lg.masters() {
            assert_eq!(data[m.index()], 0.15);
        }
        for m in lg.mirrors() {
            assert_eq!(data[m.index()], 0.0);
        }
    }
}
