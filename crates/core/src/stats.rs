//! Per-host execution statistics gathered by the Gluon runtime.
//!
//! The paper's evaluation methodology (§5.6): measure per-round compute
//! time, take the maximum across hosts per round, sum over rounds; report
//! the rest of execution as (non-overlapping) communication, together with
//! the total communication volume. [`SyncStats`] records exactly the
//! per-host inputs of that computation; the bench harness aggregates.

use serde::{Deserialize, Serialize};

/// Default modeled CSR-traversal throughput of one host (edges per
/// second), used when projecting compute time from work units. Roughly a
/// modern server core streaming a CSR; override per call as needed.
pub const DEFAULT_EDGES_PER_SEC: f64 = 4.0e8;

/// Statistics of one sync phase (one `sync` call on one host).
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Compute time since the previous phase ended (seconds).
    pub compute_secs: f64,
    /// Time spent inside the sync call (seconds).
    pub comm_secs: f64,
    /// Payload bytes this host sent during the phase.
    pub bytes_sent: u64,
    /// Messages this host sent during the phase.
    pub messages_sent: u64,
    /// Abstract compute work performed since the previous phase (edges
    /// traversed, reported by the engine via `GluonContext::add_work`).
    /// Used to *model* compute time when wall-clock is meaningless (the
    /// simulated hosts share cores).
    pub work_units: u64,
    /// Critical-path work units of the phase under the host's worker pool:
    /// the largest per-worker share of `work_units` given the pool's
    /// deterministic chunk assignment. Equals `work_units` for sequential
    /// phases; the ratio `work_units / crit_work_units` is the *measured*
    /// intra-host speedup of the phase.
    pub crit_work_units: u64,
}

/// Accumulated per-host statistics for a whole run.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct SyncStats {
    /// One entry per sync phase, in order. SPMD programs call sync in
    /// lock-step, so phase `i` aligns across hosts.
    pub phases: Vec<PhaseStats>,
    /// Setup cost of the memoization handshake (seconds).
    pub memo_secs: f64,
    /// Bytes sent during the memoization handshake.
    pub memo_bytes: u64,
    /// Received sync payloads that failed to decode on this host. Each
    /// incident also surfaced as a `SyncError::Decode` from the sync call
    /// that hit it.
    pub decode_errors: u64,
    /// Heap allocations observed inside sync rounds after the arena
    /// warm-up. Stays 0 unless the `alloc-meter` feature is enabled *and*
    /// the process installed `gluon_meter::CountingAlloc` as its global
    /// allocator; the counters are process-wide, so the number is only
    /// attributable to this host's sync path when nothing else allocates
    /// concurrently. Zero is the steady-state contract the allocation
    /// guard test asserts.
    pub steady_state_allocs: u64,
}

impl SyncStats {
    /// Number of sync phases executed.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Total compute seconds on this host.
    pub fn compute_secs(&self) -> f64 {
        self.phases.iter().map(|p| p.compute_secs).sum()
    }

    /// Total communication seconds on this host.
    pub fn comm_secs(&self) -> f64 {
        self.phases.iter().map(|p| p.comm_secs).sum()
    }

    /// Total payload bytes sent from this host during sync phases.
    pub fn bytes_sent(&self) -> u64 {
        self.phases.iter().map(|p| p.bytes_sent).sum()
    }

    /// Total messages sent from this host during sync phases.
    pub fn messages_sent(&self) -> u64 {
        self.phases.iter().map(|p| p.messages_sent).sum()
    }

    /// Total work units performed on this host.
    pub fn work_units(&self) -> u64 {
        self.phases.iter().map(|p| p.work_units).sum()
    }

    /// Total critical-path work units on this host (see
    /// [`PhaseStats::crit_work_units`]).
    pub fn crit_work_units(&self) -> u64 {
        self.phases.iter().map(|p| p.crit_work_units).sum()
    }
}

/// Cluster-level aggregation of per-host [`SyncStats`], following the
/// paper's methodology.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Sum over phases of the per-phase *maximum* compute time across
    /// hosts (load imbalance shows up here).
    pub max_compute_secs: f64,
    /// Sum over phases of the per-phase *mean* compute time across hosts.
    pub mean_compute_secs: f64,
    /// Largest per-host total communication time.
    pub comm_secs: f64,
    /// Total bytes sent by all hosts in sync phases.
    pub total_bytes: u64,
    /// Total sync messages sent by all hosts.
    pub total_messages: u64,
    /// Largest per-host total of sent bytes — the communication bottleneck
    /// host's load, which bounds BSP progress when traffic is skewed.
    pub max_host_bytes: u64,
    /// Largest per-host total of sent messages.
    pub max_host_messages: u64,
    /// Number of aligned sync phases.
    pub phases: usize,
    /// Sum over phases of the per-phase *maximum* work across hosts — the
    /// BSP critical path in work units (load imbalance included).
    pub max_work_units: u64,
    /// Total work across all hosts.
    pub total_work_units: u64,
    /// Sum over phases of the per-phase maximum *critical-path* work
    /// across hosts: the BSP critical path when every host uses its worker
    /// pool. `max_work_units / max_crit_work_units` is the run's measured
    /// intra-host speedup.
    pub max_crit_work_units: u64,
}

impl RunStats {
    /// Aggregates the per-host statistics of one SPMD run.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty or phase counts disagree (a broken SPMD
    /// program).
    pub fn aggregate(hosts: &[SyncStats]) -> RunStats {
        assert!(!hosts.is_empty(), "no host stats");
        let phases = hosts[0].num_phases();
        assert!(
            hosts.iter().all(|h| h.num_phases() == phases),
            "hosts disagree on phase count: {:?}",
            hosts.iter().map(SyncStats::num_phases).collect::<Vec<_>>()
        );
        let mut max_compute = 0.0;
        let mut mean_compute = 0.0;
        let mut max_work = 0u64;
        let mut max_crit = 0u64;
        for i in 0..phases {
            let times = hosts.iter().map(|h| h.phases[i].compute_secs);
            max_compute += times.clone().fold(0.0f64, f64::max);
            mean_compute += times.sum::<f64>() / hosts.len() as f64;
            max_work += hosts
                .iter()
                .map(|h| h.phases[i].work_units)
                .max()
                .unwrap_or(0);
            max_crit += hosts
                .iter()
                .map(|h| h.phases[i].crit_work_units)
                .max()
                .unwrap_or(0);
        }
        RunStats {
            max_compute_secs: max_compute,
            mean_compute_secs: mean_compute,
            comm_secs: hosts
                .iter()
                .map(SyncStats::comm_secs)
                .fold(0.0f64, f64::max),
            total_bytes: hosts.iter().map(SyncStats::bytes_sent).sum(),
            total_messages: hosts.iter().map(SyncStats::messages_sent).sum(),
            max_host_bytes: hosts.iter().map(SyncStats::bytes_sent).max().unwrap_or(0),
            max_host_messages: hosts
                .iter()
                .map(SyncStats::messages_sent)
                .max()
                .unwrap_or(0),
            phases,
            max_work_units: max_work,
            total_work_units: hosts.iter().map(SyncStats::work_units).sum(),
            max_crit_work_units: max_crit,
        }
    }

    /// Projects the end-to-end time of this run on a real cluster: the BSP
    /// compute critical path (work units at `edges_per_sec` per host) plus
    /// the communication charged by the network cost model.
    ///
    /// Communication is charged at the *bottleneck* host — the one that
    /// sent the most bytes/messages — because BSP rounds cannot complete
    /// until the busiest host drains its send queue. Dividing cluster
    /// totals evenly would average a hot host's traffic away and
    /// underestimate skewed runs.
    pub fn projected_secs(&self, model: &gluon_net::CostModel, edges_per_sec: f64) -> f64 {
        let compute = self.max_work_units as f64 / edges_per_sec;
        compute
            + self.max_host_messages as f64 * model.alpha_secs
            + self.max_host_bytes as f64 * model.beta_secs_per_byte
    }

    /// As [`RunStats::projected_secs`], with `cores_per_host` physical
    /// cores available to each host's worker pool.
    ///
    /// Compute is charged as the larger of two lower bounds: the *measured*
    /// critical path of the run's chunked kernels (which already reflects
    /// per-phase parallel efficiency — chunk imbalance shows up here, not
    /// an assumed ideal speedup) and the total work divided by the core
    /// count (no machine can beat perfect scaling). With `cores_per_host
    /// = 1` this degenerates to [`RunStats::projected_secs`].
    pub fn projected_secs_with_cores(
        &self,
        model: &gluon_net::CostModel,
        edges_per_sec: f64,
        cores_per_host: usize,
    ) -> f64 {
        let cores = cores_per_host.max(1) as f64;
        let crit = if self.max_crit_work_units > 0 {
            self.max_crit_work_units as f64
        } else {
            // Runs recorded before pools existed: fall back to sequential.
            self.max_work_units as f64
        };
        let compute = crit.max(self.max_work_units as f64 / cores) / edges_per_sec;
        compute
            + self.max_host_messages as f64 * model.alpha_secs
            + self.max_host_bytes as f64 * model.beta_secs_per_byte
    }

    /// Measured intra-host parallel speedup of the run's compute critical
    /// path: sequential work over pooled critical-path work (1.0 when no
    /// critical-path data was recorded).
    pub fn parallel_speedup(&self) -> f64 {
        if self.max_crit_work_units == 0 {
            1.0
        } else {
            self.max_work_units as f64 / self.max_crit_work_units as f64
        }
    }

    /// The paper's load-imbalance estimate: max compute / mean compute.
    pub fn imbalance(&self) -> f64 {
        if self.mean_compute_secs > 0.0 {
            self.max_compute_secs / self.mean_compute_secs
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(phases: &[(f64, f64, u64)]) -> SyncStats {
        SyncStats {
            phases: phases
                .iter()
                .map(|&(c, m, b)| PhaseStats {
                    compute_secs: c,
                    comm_secs: m,
                    bytes_sent: b,
                    messages_sent: 1,
                    work_units: b,
                    crit_work_units: b,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_takes_per_phase_maximum() {
        let a = host(&[(1.0, 0.1, 10), (2.0, 0.1, 10)]);
        let b = host(&[(3.0, 0.2, 20), (1.0, 0.3, 20)]);
        let run = RunStats::aggregate(&[a, b]);
        assert!((run.max_compute_secs - 5.0).abs() < 1e-12); // max(1,3)+max(2,1)
        assert!((run.mean_compute_secs - 3.5).abs() < 1e-12); // 2 + 1.5
        assert_eq!(run.total_bytes, 60);
        assert_eq!(run.phases, 2);
    }

    #[test]
    fn imbalance_ratio() {
        let a = host(&[(4.0, 0.0, 0)]);
        let b = host(&[(1.0, 0.0, 0)]);
        let run = RunStats::aggregate(&[a, b]);
        assert!((run.imbalance() - 4.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "disagree on phase count")]
    fn mismatched_phases_panic() {
        let _ = RunStats::aggregate(&[host(&[(1.0, 0.0, 0)]), host(&[])]);
    }

    #[test]
    fn cores_projection_uses_the_measured_critical_path() {
        // One phase: 1000 work units, measured critical path 400 (so the
        // pool achieved 2.5x, not the ideal 4x).
        let h = SyncStats {
            phases: vec![PhaseStats {
                work_units: 1000,
                crit_work_units: 400,
                ..Default::default()
            }],
            ..Default::default()
        };
        let run = RunStats::aggregate(&[h]);
        assert!((run.parallel_speedup() - 2.5).abs() < 1e-12);
        let model = gluon_net::CostModel {
            alpha_secs: 0.0,
            beta_secs_per_byte: 0.0,
        };
        // 4 cores: charged at the measured 400, not the assumed 250.
        let t4 = run.projected_secs_with_cores(&model, 1.0, 4);
        assert!((t4 - 400.0).abs() < 1e-12);
        // 2 cores: perfect scaling (500) beats the measured path, so the
        // work/cores lower bound dominates.
        let t2 = run.projected_secs_with_cores(&model, 1.0, 2);
        assert!((t2 - 500.0).abs() < 1e-12);
        // 1 core degenerates to the sequential projection.
        let t1 = run.projected_secs_with_cores(&model, 1.0, 1);
        assert!((t1 - run.projected_secs(&model, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn projection_charges_the_bottleneck_host() {
        // Skewed traffic: host a sends 1 MB, three silent peers send
        // nothing. The projection must charge the full 1 MB — the BSP
        // round cannot finish before the hot host drains its queue — not
        // the 256 KB an even split across 4 hosts would pretend.
        let hot = 1_000_000u64;
        let a = host(&[(0.0, 0.0, hot)]);
        let quiet = host(&[(0.0, 0.0, 0)]);
        let run = RunStats::aggregate(&[a, quiet.clone(), quiet.clone(), quiet]);
        assert_eq!(run.total_bytes, hot);
        assert_eq!(run.max_host_bytes, hot);
        assert_eq!(run.max_host_messages, 1);

        let model = gluon_net::CostModel {
            alpha_secs: 0.0,
            beta_secs_per_byte: 1e-9,
        };
        let projected = run.projected_secs(&model, f64::INFINITY);
        // Bottleneck charge: 1 MB * 1 ns/byte = 1 ms, not 0.25 ms.
        assert!((projected - hot as f64 * 1e-9).abs() < 1e-15);

        // Uniform traffic is unchanged by the fix: max == total / hosts.
        let even = RunStats::aggregate(&[
            host(&[(0.0, 0.0, 100)]),
            host(&[(0.0, 0.0, 100)]),
            host(&[(0.0, 0.0, 100)]),
            host(&[(0.0, 0.0, 100)]),
        ]);
        assert_eq!(even.max_host_bytes * 4, even.total_bytes);
    }
}
