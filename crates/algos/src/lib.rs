//! Distributed graph analytics applications on the Gluon substrate.
//!
//! The four benchmarks of the paper — [`Algorithm::Bfs`], [`Algorithm::Cc`],
//! [`Algorithm::Pagerank`] (pull-style), and [`Algorithm::Sssp`]
//! (push-style, data-driven) — each runnable with any of the three compute
//! engines (Ligra, Galois, IrGL styles), any partitioning policy, any
//! optimization level, and any simulated host count. Single-host
//! [`mod@reference`] oracles validate every configuration.
//!
//! # Examples
//!
//! ```
//! use gluon_algos::{reference, Algorithm, Run};
//! use gluon_graph::{gen, max_out_degree_node};
//!
//! let g = gen::rmat(7, 8, Default::default(), 1);
//! let out = Run::new(&g, Algorithm::Bfs).hosts(4).launch();
//! let oracle = reference::bfs(&g, max_out_degree_node(&g));
//! assert_eq!(out.int_labels, oracle);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod driver;
pub mod launcher;
mod minrelax;
pub mod reference;
pub mod report;

pub use apps::{CopyField, PagerankConfig};
pub use driver::{run_heterogeneous_bfs, DistConfig, DistOutcome, FailurePolicy, Run, RunError};
pub use launcher::{
    gluon_host_main, spawn_local_cluster, ClusterOutcome, ClusterSpec, LaunchError,
};
pub use report::{phase_residuals, PhaseResidual, RunReport, REPORT_SCHEMA_VERSION};

/// The shared-memory engine computing each host's partition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EngineKind {
    /// Frontier edgeMap/vertexMap with direction optimization (D-Ligra).
    Ligra,
    /// Asynchronous within-round worklists (D-Galois).
    Galois,
    /// Bulk-synchronous GPU-style kernels (D-IrGL).
    Irgl,
}

impl EngineKind {
    /// All engines, for sweeps.
    pub const ALL: [EngineKind; 3] = [EngineKind::Ligra, EngineKind::Galois, EngineKind::Irgl];

    /// Distributed-system name the paper uses (`d-ligra`, `d-galois`,
    /// `d-irgl`).
    pub fn system_name(self) -> &'static str {
        match self {
            EngineKind::Ligra => "d-ligra",
            EngineKind::Galois => "d-galois",
            EngineKind::Irgl => "d-irgl",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.system_name())
    }
}

/// The benchmark applications of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// Breadth-first search (push, data-driven).
    Bfs,
    /// Connected components (label propagation on the symmetrized graph).
    Cc,
    /// Pagerank (pull-style, damping 0.85).
    Pagerank,
    /// Single-source shortest paths (push, data-driven).
    Sssp,
}

impl Algorithm {
    /// All benchmarks in the paper's order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Bfs,
        Algorithm::Cc,
        Algorithm::Pagerank,
        Algorithm::Sssp,
    ];

    /// Short name (`bfs`, `cc`, `pr`, `sssp`).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bfs => "bfs",
            Algorithm::Cc => "cc",
            Algorithm::Pagerank => "pr",
            Algorithm::Sssp => "sssp",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon::OptLevel;
    use gluon_graph::{gen, max_out_degree_node};
    use gluon_partition::Policy;

    fn check_bfs(cfg: &DistConfig, g: &gluon_graph::Csr) {
        let out = Run::new(g, Algorithm::Bfs).config(cfg).launch();
        let oracle = reference::bfs(g, max_out_degree_node(g));
        assert_eq!(out.int_labels, oracle, "{cfg:?}");
    }

    #[test]
    fn bfs_matches_oracle_across_engines() {
        let g = gen::rmat(7, 6, Default::default(), 5);
        for engine in EngineKind::ALL {
            check_bfs(
                &DistConfig {
                    hosts: 3,
                    policy: Policy::Oec,
                    opts: OptLevel::OSTI,
                    engine,
                },
                &g,
            );
        }
    }

    #[test]
    fn bfs_matches_oracle_across_policies() {
        let g = gen::rmat(7, 6, Default::default(), 6);
        for policy in Policy::ALL {
            check_bfs(
                &DistConfig {
                    hosts: 4,
                    policy,
                    opts: OptLevel::OSTI,
                    engine: EngineKind::Galois,
                },
                &g,
            );
        }
    }

    #[test]
    fn bfs_matches_oracle_across_opt_levels() {
        let g = gen::rmat(7, 6, Default::default(), 7);
        for opts in OptLevel::ALL {
            check_bfs(
                &DistConfig {
                    hosts: 3,
                    policy: Policy::Cvc,
                    opts,
                    engine: EngineKind::Ligra,
                },
                &g,
            );
        }
    }

    #[test]
    fn sssp_matches_oracle() {
        let g = gluon_graph::with_random_weights(&gen::rmat(7, 6, Default::default(), 8), 7, 2);
        let out = Run::new(&g, Algorithm::Sssp).hosts(4).launch();
        let oracle = reference::sssp(&g, max_out_degree_node(&g));
        assert_eq!(out.int_labels, oracle);
    }

    #[test]
    fn cc_matches_oracle() {
        let g = gen::rmat(7, 4, Default::default(), 9);
        let out = Run::new(&g, Algorithm::Cc).hosts(4).launch();
        assert_eq!(out.int_labels, reference::cc(&g));
    }

    #[test]
    fn pagerank_matches_oracle_within_tolerance() {
        let g = gen::rmat(7, 6, Default::default(), 10);
        let out = Run::new(&g, Algorithm::Pagerank).hosts(3).launch();
        let (oracle, _) = reference::pagerank(&g, 0.85, 1e-6, 100);
        for (got, want) in out.ranks.iter().zip(&oracle) {
            assert!((got - want).abs() < 1e-6, "rank mismatch: {got} vs {want}");
        }
    }

    #[test]
    fn galois_uses_fewer_rounds_than_ligra() {
        // The §5.4 observation: asynchronous within-round propagation needs
        // fewer global rounds than level-synchronous execution.
        let g = gen::path(64); // worst case for level-synchronous engines
        let mk = |engine| DistConfig {
            hosts: 2,
            policy: Policy::Oec,
            opts: OptLevel::OSTI,
            engine,
        };
        let ligra = Run::new(&g, Algorithm::Bfs)
            .config(&mk(EngineKind::Ligra))
            .launch();
        let galois = Run::new(&g, Algorithm::Bfs)
            .config(&mk(EngineKind::Galois))
            .launch();
        assert!(
            galois.rounds < ligra.rounds / 4,
            "galois {} vs ligra {}",
            galois.rounds,
            ligra.rounds
        );
    }
}
