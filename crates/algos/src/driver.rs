//! End-to-end drivers: partition, run, gather, aggregate.
//!
//! [`run`] executes one benchmark configuration — algorithm × engine ×
//! partitioning policy × optimization level × host count — on the simulated
//! cluster and returns globally assembled labels plus the statistics the
//! paper's tables and figures report.
//!
//! Every driver also has a `*_wrapped` variant that first passes each
//! host's endpoint through a caller-supplied transport wrapper, so the
//! full algorithm suite can run over jittered, faulty, or reliable
//! transport stacks (e.g.
//! `ReliableTransport::over(FaultyTransport::new(..))` for chaos testing).

use crate::apps::{self, PagerankConfig};
use crate::reference::symmetrize;
use crate::{Algorithm, EngineKind};
use gluon::{GluonContext, OptLevel, RunStats, SyncStats};
use gluon_graph::{max_out_degree_node, Csr, Gid};
use gluon_net::{
    run_cluster_wrapped, Communicator, CostModel, MemoryTransport, NetStats, StatsSnapshot,
    Transport,
};
use gluon_partition::{partition_on_host, LocalGraph, PartitionStats, Policy};
use gluon_trace::Tracer;
use std::time::Instant;

/// One benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Number of simulated hosts.
    pub hosts: usize,
    /// Partitioning policy.
    pub policy: Policy,
    /// Communication optimization level.
    pub opts: OptLevel,
    /// Shared-memory compute engine.
    pub engine: EngineKind,
}

impl DistConfig {
    /// A sensible default: 4 hosts, CVC (the paper's at-scale choice),
    /// full Gluon, the Galois engine.
    pub fn new(hosts: usize) -> DistConfig {
        DistConfig {
            hosts,
            policy: Policy::Cvc,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        }
    }
}

/// Everything one run produces.
#[derive(Clone, Debug)]
pub struct DistOutcome {
    /// Per-global-node integer labels (bfs/sssp distances, cc labels);
    /// empty for pagerank.
    pub int_labels: Vec<u32>,
    /// Per-global-node ranks (pagerank only).
    pub ranks: Vec<f64>,
    /// BSP rounds (or pagerank iterations) executed.
    pub rounds: u32,
    /// Aggregated compute/communication statistics.
    pub run: RunStats,
    /// Per-host raw statistics (phase-aligned).
    pub host_stats: Vec<SyncStats>,
    /// Maximum per-host wall-clock of the algorithm proper (seconds),
    /// excluding partitioning.
    pub algo_secs: f64,
    /// Maximum per-host wall-clock of partitioning + graph construction.
    pub partition_secs: f64,
    /// Partition quality of the configuration.
    pub partition: PartitionStats,
    /// Whole-cluster traffic snapshot at the end of the run.
    pub net: StatsSnapshot,
}

impl DistOutcome {
    /// Total sync-phase communication volume in bytes.
    pub fn comm_bytes(&self) -> u64 {
        self.run.total_bytes
    }

    /// Projected end-to-end time on a real cluster: the BSP compute
    /// critical path (modeled from work units — the simulated hosts share
    /// physical cores, so wall-clock compute cannot show scaling) plus the
    /// communication charged by the network cost model.
    pub fn projected_secs(&self, model: &CostModel) -> f64 {
        self.run.projected_secs(model, gluon::DEFAULT_EDGES_PER_SEC)
    }
}

/// Runs one configuration of `algo` on `graph`.
///
/// bfs and sssp start from the maximum out-degree node (the paper's §5.1
/// convention); cc symmetrizes the input first; pagerank uses
/// [`PagerankConfig::default`]. See [`run_with`] for control over both.
pub fn run(graph: &Csr, algo: Algorithm, cfg: &DistConfig) -> DistOutcome {
    let source = max_out_degree_node(graph);
    run_with(graph, algo, cfg, source, PagerankConfig::default())
}

/// As [`run`], with an explicit bfs/sssp source and pagerank settings.
pub fn run_with(
    graph: &Csr,
    algo: Algorithm,
    cfg: &DistConfig,
    source: Gid,
    pr: PagerankConfig,
) -> DistOutcome {
    run_with_wrapped(graph, algo, cfg, source, pr, |ep| ep)
}

/// As [`run`], but every host's endpoint is first passed through `wrap`,
/// so the whole run uses the wrapped transport stack.
pub fn run_wrapped<W: Transport>(
    graph: &Csr,
    algo: Algorithm,
    cfg: &DistConfig,
    wrap: impl Fn(MemoryTransport) -> W + Send + Sync,
) -> DistOutcome {
    let source = max_out_degree_node(graph);
    run_with_wrapped(graph, algo, cfg, source, PagerankConfig::default(), wrap)
}

/// As [`run_with`], over a wrapped transport stack.
pub fn run_with_wrapped<W: Transport>(
    graph: &Csr,
    algo: Algorithm,
    cfg: &DistConfig,
    source: Gid,
    pr: PagerankConfig,
    wrap: impl Fn(MemoryTransport) -> W + Send + Sync,
) -> DistOutcome {
    run_with_wrapped_traced(graph, algo, cfg, source, pr, wrap, &Tracer::disabled())
}

/// As [`run`], recording micro-stage spans and sync metrics into `tracer`
/// (size it with `Tracer::new(cfg.hosts)`). After the run, export with
/// `tracer.chrome_trace_json()` or `tracer.summary(..)`.
pub fn run_traced(graph: &Csr, algo: Algorithm, cfg: &DistConfig, tracer: &Tracer) -> DistOutcome {
    let source = max_out_degree_node(graph);
    run_with_wrapped_traced(
        graph,
        algo,
        cfg,
        source,
        PagerankConfig::default(),
        |ep| ep,
        tracer,
    )
}

/// The fully general driver: explicit source and pagerank settings, a
/// wrapped transport stack, and span tracing. All other `run*` entry
/// points funnel here.
#[allow(clippy::too_many_arguments)]
pub fn run_with_wrapped_traced<W: Transport>(
    graph: &Csr,
    algo: Algorithm,
    cfg: &DistConfig,
    source: Gid,
    pr: PagerankConfig,
    wrap: impl Fn(MemoryTransport) -> W + Send + Sync,
    tracer: &Tracer,
) -> DistOutcome {
    let symmetric;
    let input: &Csr = if algo == Algorithm::Cc {
        symmetric = symmetrize(graph);
        &symmetric
    } else {
        graph
    };
    let needs_transpose = algo == Algorithm::Pagerank || cfg.engine == EngineKind::Ligra;
    let (per_host, stats) = run_cluster_wrapped(cfg.hosts, NetStats::new(cfg.hosts), wrap, |net| {
        host_program(
            net,
            input,
            cfg.policy,
            cfg.opts,
            tracer,
            &|_| needs_transpose,
            &|lg, ctx| dispatch(lg, ctx, algo, cfg.engine, source, pr),
        )
    });
    assemble(input.num_nodes() as usize, u32::MAX, per_host, stats)
}

/// Runs distributed k-core membership (see [`apps::kcore`]): `int_labels`
/// holds 1 for nodes in the k-core of the undirected view, else 0.
///
/// The input is symmetrized internally, like cc.
pub fn run_kcore(graph: &Csr, cfg: &DistConfig, k: u32) -> DistOutcome {
    run_kcore_wrapped(graph, cfg, k, |ep| ep)
}

/// As [`run_kcore`], over a wrapped transport stack.
pub fn run_kcore_wrapped<W: Transport>(
    graph: &Csr,
    cfg: &DistConfig,
    k: u32,
    wrap: impl Fn(MemoryTransport) -> W + Send + Sync,
) -> DistOutcome {
    run_kcore_traced(graph, cfg, k, wrap, &Tracer::disabled())
}

/// As [`run_kcore_wrapped`], recording spans into `tracer`.
pub fn run_kcore_traced<W: Transport>(
    graph: &Csr,
    cfg: &DistConfig,
    k: u32,
    wrap: impl Fn(MemoryTransport) -> W + Send + Sync,
    tracer: &Tracer,
) -> DistOutcome {
    let input = symmetrize(graph);
    let (per_host, stats) = run_cluster_wrapped(cfg.hosts, NetStats::new(cfg.hosts), wrap, |net| {
        host_program(
            net,
            &input,
            cfg.policy,
            cfg.opts,
            tracer,
            &|_| false,
            &|lg, ctx| {
                let (alive, rounds) = apps::kcore(lg, ctx, k, cfg.engine);
                (alive, Vec::new(), rounds)
            },
        )
    });
    assemble(input.num_nodes() as usize, 0, per_host, stats)
}

/// Runs distributed single-source betweenness centrality (see
/// [`apps::betweenness_source`]); `ranks` holds the per-node dependency
/// values, `rounds` the number of BFS levels.
pub fn run_betweenness(graph: &Csr, cfg: &DistConfig, source: Gid) -> DistOutcome {
    run_betweenness_wrapped(graph, cfg, source, |ep| ep)
}

/// As [`run_betweenness`], over a wrapped transport stack.
pub fn run_betweenness_wrapped<W: Transport>(
    graph: &Csr,
    cfg: &DistConfig,
    source: Gid,
    wrap: impl Fn(MemoryTransport) -> W + Send + Sync,
) -> DistOutcome {
    run_betweenness_traced(graph, cfg, source, wrap, &Tracer::disabled())
}

/// As [`run_betweenness_wrapped`], recording spans into `tracer`.
pub fn run_betweenness_traced<W: Transport>(
    graph: &Csr,
    cfg: &DistConfig,
    source: Gid,
    wrap: impl Fn(MemoryTransport) -> W + Send + Sync,
    tracer: &Tracer,
) -> DistOutcome {
    let (per_host, stats) = run_cluster_wrapped(cfg.hosts, NetStats::new(cfg.hosts), wrap, |net| {
        host_program(
            net,
            graph,
            cfg.policy,
            cfg.opts,
            tracer,
            &|_| false,
            &|lg, ctx| {
                let (delta, levels) = apps::betweenness_source(lg, ctx, source);
                (Vec::new(), delta, levels)
            },
        )
    });
    assemble(graph.num_nodes() as usize, u32::MAX, per_host, stats)
}

/// Runs BFS on a *heterogeneous* cluster: host `h` computes with
/// `engines[h]` — e.g. CPU hosts running the Galois engine next to emulated
/// GPU hosts running the IrGL engine, the deployment of the paper's
/// Figure 1. The sync substrate is engine-agnostic, so mixing engines needs
/// no special handling: every host still alternates compute and the same
/// collective sync sequence.
///
/// # Panics
///
/// Panics if `engines` is empty.
pub fn run_heterogeneous_bfs(
    graph: &Csr,
    policy: Policy,
    opts: OptLevel,
    engines: &[EngineKind],
    source: Gid,
) -> DistOutcome {
    assert!(!engines.is_empty(), "need at least one host");
    let hosts = engines.len();
    let (per_host, stats) = run_cluster_wrapped(
        hosts,
        NetStats::new(hosts),
        |ep| ep,
        |net| {
            host_program(
                net,
                graph,
                policy,
                opts,
                &Tracer::disabled(),
                &|rank| engines[rank] == EngineKind::Ligra,
                &|lg, ctx| {
                    let (dist, rounds) = apps::bfs(lg, ctx, source, engines[ctx.rank()]);
                    (dist, Vec::new(), rounds)
                },
            )
        },
    );
    assemble(graph.num_nodes() as usize, u32::MAX, per_host, stats)
}

struct HostResult {
    masters_int: Vec<(u32, u32)>,
    masters_f64: Vec<(u32, f64)>,
    rounds: u32,
    stats: SyncStats,
    algo_secs: f64,
    partition_secs: f64,
    partition: LocalGraph,
}

/// What one host's compute body yields: integer labels, float labels
/// (either may be empty), and the number of rounds it ran.
type HostLabels = (Vec<u32>, Vec<f64>, u32);

/// The SPMD body every driver shares: partition, set up the Gluon runtime,
/// run `compute`, and gather this host's master labels.
fn host_program<T: Transport>(
    net: &T,
    input: &Csr,
    policy: Policy,
    opts: OptLevel,
    tracer: &Tracer,
    transpose: &(dyn Fn(usize) -> bool + Sync),
    compute: &(dyn Fn(&LocalGraph, &mut GluonContext<'_, T>) -> HostLabels + Sync),
) -> HostResult {
    let comm = Communicator::with_tracer(net, tracer.clone());
    let part_start = Instant::now();
    let mut lg = partition_on_host(input, policy, &comm);
    if transpose(comm.rank()) {
        lg.build_transpose();
    }
    comm.barrier();
    let partition_secs = part_start.elapsed().as_secs_f64();
    let mut ctx = GluonContext::new(&lg, &comm, opts);
    ctx.reset_timer();
    let algo_start = Instant::now();
    let (ints, floats, rounds) = compute(&lg, &mut ctx);
    let algo_secs = algo_start.elapsed().as_secs_f64();
    let masters_int = gather_masters(&lg, &ints);
    let masters_f64 = gather_masters(&lg, &floats);
    HostResult {
        masters_int,
        masters_f64,
        rounds,
        stats: ctx.into_stats(),
        algo_secs,
        partition_secs,
        partition: lg,
    }
}

/// Stitches per-host master labels into global vectors and aggregates the
/// statistics. `int_default` fills nodes no host reported (only relevant
/// while assembling integer labels).
fn assemble(n: usize, int_default: u32, per_host: Vec<HostResult>, stats: NetStats) -> DistOutcome {
    let mut int_labels = Vec::new();
    if per_host.iter().any(|h| !h.masters_int.is_empty()) {
        int_labels = vec![int_default; n];
        for h in &per_host {
            for &(gid, v) in &h.masters_int {
                int_labels[gid as usize] = v;
            }
        }
    }
    let mut ranks = Vec::new();
    if per_host.iter().any(|h| !h.masters_f64.is_empty()) {
        ranks = vec![0.0; n];
        for h in &per_host {
            for &(gid, v) in &h.masters_f64 {
                ranks[gid as usize] = v;
            }
        }
    }
    let host_stats: Vec<SyncStats> = per_host.iter().map(|h| h.stats.clone()).collect();
    let partitions: Vec<LocalGraph> = per_host.iter().map(|h| h.partition.clone()).collect();
    DistOutcome {
        int_labels,
        ranks,
        rounds: per_host.iter().map(|h| h.rounds).max().unwrap_or(0),
        run: RunStats::aggregate(&host_stats),
        host_stats,
        algo_secs: per_host.iter().map(|h| h.algo_secs).fold(0.0, f64::max),
        partition_secs: per_host
            .iter()
            .map(|h| h.partition_secs)
            .fold(0.0, f64::max),
        partition: PartitionStats::of(&partitions),
        net: stats.snapshot(),
    }
}

fn dispatch<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    algo: Algorithm,
    engine: EngineKind,
    source: Gid,
    pr: PagerankConfig,
) -> HostLabels {
    match algo {
        Algorithm::Bfs => {
            let (d, rounds) = apps::bfs(lg, ctx, source, engine);
            (d, Vec::new(), rounds)
        }
        Algorithm::Sssp => {
            let (d, rounds) = apps::sssp(lg, ctx, source, engine);
            (d, Vec::new(), rounds)
        }
        Algorithm::Cc => {
            let (l, rounds) = apps::cc(lg, ctx, engine);
            (l, Vec::new(), rounds)
        }
        Algorithm::Pagerank => {
            let (r, iters) = apps::pagerank(lg, ctx, pr, engine);
            (Vec::new(), r, iters)
        }
    }
}

fn gather_masters<V: Copy>(lg: &LocalGraph, values: &[V]) -> Vec<(u32, V)> {
    if values.is_empty() {
        return Vec::new();
    }
    lg.masters()
        .map(|m| (lg.gid(m).0, values[m.index()]))
        .collect()
}
