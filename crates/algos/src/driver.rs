//! End-to-end drivers: partition, run, gather, aggregate.
//!
//! [`Run`] is the single entry point: a builder that executes one
//! benchmark configuration — algorithm × engine × partitioning policy ×
//! optimization level × host count × intra-host thread count — on the
//! simulated cluster and returns globally assembled labels plus the
//! statistics the paper's tables and figures report.
//!
//! ```ignore
//! let out = Run::new(&graph, Algorithm::Bfs)
//!     .hosts(4)
//!     .policy(Policy::Cvc)
//!     .opt_level(OptLevel::OSTI)
//!     .threads(4)
//!     .launch();
//! ```
//!
//! `.transport(|ep| …)` threads every host's endpoint through a wrapper,
//! so the full suite can run over jittered, faulty, or reliable transport
//! stacks (e.g. `ReliableTransport::over(FaultyTransport::new(..))` for
//! chaos testing); `.tracer(&t)` records micro-stage spans; `.arena(false)`
//! disables the sync buffer arena (results are identical either way).

use crate::apps::{self, PagerankConfig};
use crate::reference::symmetrize;
use crate::{Algorithm, EngineKind};
use gluon::{CheckpointStore, GluonContext, OptLevel, Pool, RunStats, SyncError, SyncStats};
use gluon_graph::{max_out_degree_node, Csr, Gid};
use gluon_metrics::{ExecMetrics, MetricsHub, NetMetrics};
use gluon_net::{
    run_cluster_fallible, run_cluster_wrapped, CancelToken, Communicator, CostModel,
    MemoryTransport, NetError, NetStats, ReliableConfig, ReliableTransport, SocketFactory,
    SocketKind, SocketTransport, StatsSnapshot, Transport,
};
use gluon_partition::{partition_on_host, LocalGraph, PartitionStats, Policy};
use gluon_trace::Tracer;
use std::time::Instant;

/// What the supervisor behind [`Run::try_launch`] does once a host failure
/// is detected mid-computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailurePolicy {
    /// Tear the cluster down, restore every host from the latest complete
    /// checkpoint epoch (from scratch when none exists), and replay
    /// forward — up to [`Run::max_recoveries`] times. Deterministic
    /// execution makes the replay bit-identical to a crash-free run.
    #[default]
    Recover,
    /// Return a typed error as soon as the cluster has stopped; never
    /// restart.
    AbortClean,
    /// Restore the latest complete checkpoint and surface its (stale)
    /// labels as a degraded outcome, without recomputing anything.
    ContinueStale,
}

/// Why a supervised run ([`Run::try_launch`]) could not produce a result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunError {
    /// A host hit a failure that no restart can fix: deterministic replay
    /// of the same rounds would fail identically (e.g. an undecodable
    /// payload on an unprotected transport).
    Host {
        /// The host that reported the failure.
        host: usize,
        /// What it reported.
        error: SyncError,
    },
    /// Every allowed attempt failed (or `ContinueStale` found no complete
    /// checkpoint epoch to fall back to).
    Unrecoverable {
        /// How many attempts were made.
        attempts: u32,
        /// The failure that ended the last attempt.
        last: SyncError,
    },
    /// [`FailurePolicy::AbortClean`] stopped the run at the first
    /// detected failure.
    Aborted {
        /// The host whose failure aborted the run.
        host: usize,
        /// What it reported.
        error: SyncError,
    },
    /// The workload has no fallible/checkpointable path yet (k-core,
    /// betweenness); use [`Run::launch`].
    Unsupported(&'static str),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Host { host, error } => {
                write!(f, "host {host} failed unrecoverably: {error}")
            }
            RunError::Unrecoverable { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            RunError::Aborted { host, error } => {
                write!(f, "aborted on first failure (host {host}): {error}")
            }
            RunError::Unsupported(what) => {
                write!(f, "workload {what} has no supervised execution path")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Host { error, .. }
            | RunError::Aborted { error, .. }
            | RunError::Unrecoverable { last: error, .. } => Some(error),
            RunError::Unsupported(_) => None,
        }
    }
}

/// One benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Number of simulated hosts.
    pub hosts: usize,
    /// Partitioning policy.
    pub policy: Policy,
    /// Communication optimization level.
    pub opts: OptLevel,
    /// Shared-memory compute engine.
    pub engine: EngineKind,
}

impl DistConfig {
    /// A sensible default: 4 hosts, CVC (the paper's at-scale choice),
    /// full Gluon, the Galois engine.
    pub fn new(hosts: usize) -> DistConfig {
        DistConfig {
            hosts,
            policy: Policy::Cvc,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        }
    }
}

/// Everything one run produces.
#[derive(Clone, Debug)]
pub struct DistOutcome {
    /// Per-global-node integer labels (bfs/sssp distances, cc labels);
    /// empty for pagerank.
    pub int_labels: Vec<u32>,
    /// Per-global-node ranks (pagerank only).
    pub ranks: Vec<f64>,
    /// BSP rounds (or pagerank iterations) executed.
    pub rounds: u32,
    /// Aggregated compute/communication statistics.
    pub run: RunStats,
    /// Per-host raw statistics (phase-aligned).
    pub host_stats: Vec<SyncStats>,
    /// Maximum per-host wall-clock of the algorithm proper (seconds),
    /// excluding partitioning.
    pub algo_secs: f64,
    /// Maximum per-host wall-clock of partitioning + graph construction.
    pub partition_secs: f64,
    /// Partition quality of the configuration.
    pub partition: PartitionStats,
    /// Whole-cluster traffic snapshot at the end of the run.
    pub net: StatsSnapshot,
    /// Supervised restarts it took to produce this result (0 for a
    /// crash-free run, and always 0 from [`Run::launch`]).
    pub recoveries: u32,
    /// True when [`FailurePolicy::ContinueStale`] surfaced the last
    /// checkpoint instead of a completed computation.
    pub degraded: bool,
}

impl DistOutcome {
    /// Total sync-phase communication volume in bytes.
    pub fn comm_bytes(&self) -> u64 {
        self.run.total_bytes
    }

    /// Projected end-to-end time on a real cluster: the BSP compute
    /// critical path (modeled from work units — the simulated hosts share
    /// physical cores, so wall-clock compute cannot show scaling) plus the
    /// communication charged by the network cost model.
    pub fn projected_secs(&self, model: &CostModel) -> f64 {
        self.run.projected_secs(model, gluon::DEFAULT_EDGES_PER_SEC)
    }

    /// As [`projected_secs`](Self::projected_secs), with each host's
    /// compute spread over `cores` cores (bounded by the measured
    /// critical path of its parallel phases).
    pub fn projected_secs_with_cores(&self, model: &CostModel, cores: usize) -> f64 {
        self.run
            .projected_secs_with_cores(model, gluon::DEFAULT_EDGES_PER_SEC, cores)
    }
}

/// What a [`Run`] computes.
#[derive(Clone, Copy, Debug)]
enum Workload {
    /// One of the four paper benchmarks.
    Algo(Algorithm),
    /// k-core membership with the given k (input symmetrized internally).
    Kcore(u32),
    /// Single-source betweenness centrality.
    Betweenness,
}

/// The identity transport wrapper the builder starts with. Wrappers are
/// attempt-aware: the supervisor passes the 0-based attempt number so
/// chaos tests can arm fault plans per attempt
/// (`FaultPlan::for_attempt`).
fn identity(ep: MemoryTransport, _attempt: u32) -> MemoryTransport {
    ep
}

/// Builder for one distributed run. Construct with [`Run::new`],
/// [`Run::kcore`], or [`Run::betweenness`]; chain settings; finish with
/// [`launch`](Run::launch).
#[derive(Debug)]
pub struct Run<'g, W = MemoryTransport, F = fn(MemoryTransport, u32) -> MemoryTransport>
where
    W: Transport,
    F: Fn(MemoryTransport, u32) -> W + Send + Sync,
{
    graph: &'g Csr,
    workload: Workload,
    hosts: usize,
    policy: Policy,
    opts: OptLevel,
    engine: EngineKind,
    source: Option<Gid>,
    pr: PagerankConfig,
    threads: usize,
    tracer: Tracer,
    metrics: MetricsHub,
    arena: bool,
    ckpt_every: Option<u64>,
    ckpt_store: Option<CheckpointStore>,
    on_failure: FailurePolicy,
    max_recoveries: u32,
    reliable: Option<ReliableConfig>,
    wrap: F,
}

impl<'g> Run<'g> {
    /// A run of one of the four paper benchmarks with the defaults of
    /// [`DistConfig::new`]: 4 hosts, CVC, OSTI, the Galois engine, one
    /// compute thread per host. bfs/sssp default to the maximum
    /// out-degree source (the paper's §5.1 convention); cc symmetrizes
    /// the input internally.
    pub fn new(graph: &'g Csr, algo: Algorithm) -> Run<'g> {
        Run::with_workload(graph, Workload::Algo(algo))
    }

    /// A k-core membership run (see [`apps::kcore`]): `int_labels` holds
    /// 1 for nodes in the k-core of the undirected view, else 0. The
    /// input is symmetrized internally, like cc.
    pub fn kcore(graph: &'g Csr, k: u32) -> Run<'g> {
        Run::with_workload(graph, Workload::Kcore(k))
    }

    /// A single-source betweenness-centrality run (see
    /// [`apps::betweenness_source`]): `ranks` holds the per-node
    /// dependency values, `rounds` the number of BFS levels.
    pub fn betweenness(graph: &'g Csr, source: Gid) -> Run<'g> {
        let mut run = Run::with_workload(graph, Workload::Betweenness);
        run.source = Some(source);
        run
    }

    fn with_workload(graph: &'g Csr, workload: Workload) -> Run<'g> {
        let defaults = DistConfig::new(4);
        Run {
            graph,
            workload,
            hosts: defaults.hosts,
            policy: defaults.policy,
            opts: defaults.opts,
            engine: defaults.engine,
            source: None,
            pr: PagerankConfig::default(),
            threads: 1,
            tracer: Tracer::disabled(),
            metrics: MetricsHub::disabled(),
            arena: true,
            ckpt_every: None,
            ckpt_store: None,
            on_failure: FailurePolicy::Recover,
            max_recoveries: 2,
            reliable: None,
            wrap: identity,
        }
    }
}

impl<'g, W, F> Run<'g, W, F>
where
    W: Transport,
    F: Fn(MemoryTransport, u32) -> W + Send + Sync,
{
    /// Number of simulated hosts.
    #[must_use]
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Partitioning policy.
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Communication optimization level.
    #[must_use]
    pub fn opt_level(mut self, opts: OptLevel) -> Self {
        self.opts = opts;
        self
    }

    /// Shared-memory compute engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets hosts, policy, optimization level, and engine at once.
    #[must_use]
    pub fn config(mut self, cfg: &DistConfig) -> Self {
        self.hosts = cfg.hosts;
        self.policy = cfg.policy;
        self.opts = cfg.opts;
        self.engine = cfg.engine;
        self
    }

    /// Source node for bfs/sssp/betweenness (default: the maximum
    /// out-degree node).
    #[must_use]
    pub fn source(mut self, source: Gid) -> Self {
        self.source = Some(source);
        self
    }

    /// Pagerank settings (damping, tolerance, iteration cap).
    #[must_use]
    pub fn pagerank(mut self, pr: PagerankConfig) -> Self {
        self.pr = pr;
        self
    }

    /// Number of intra-host compute threads. Results are bit-identical
    /// at any value — the deterministic pool chunks work on fixed
    /// boundaries and combines per-chunk results in order.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the per-field sync buffer arena (default: on).
    /// The arena recycles encode/decode buffers across rounds so the
    /// steady state allocates nothing; results are bit-identical either
    /// way — disabling it only changes where buffers come from.
    #[must_use]
    pub fn arena(mut self, enabled: bool) -> Self {
        self.arena = enabled;
        self
    }

    /// Records micro-stage spans and sync metrics into `tracer` (size it
    /// with `Tracer::new(hosts)`). After the run, export with
    /// `tracer.chrome_trace_json()` or `tracer.summary(..)`.
    #[must_use]
    pub fn tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Publishes typed metrics into `hub` (size it with
    /// `MetricsHub::new(hosts)`): per-host counters/gauges/histograms, the
    /// per-round time series, and per-peer communication attribution.
    /// After the run, build a [`crate::RunReport`] with
    /// [`DistOutcome::report`], or scrape [`MetricsHub::prometheus`]
    /// directly. Each supervised attempt rebaselines the hub
    /// ([`MetricsHub::begin_attempt`]), so post-run reads always describe
    /// the final attempt.
    ///
    /// Unlike [`DistOutcome::net`] (frame-level traffic including
    /// reliability overhead and timing-dependent heartbeats), the hub's
    /// `bytes_sent`/`messages_sent` count raw sync payloads, which are
    /// deterministic for a given configuration.
    #[must_use]
    pub fn metrics(mut self, hub: &MetricsHub) -> Self {
        self.metrics = hub.clone();
        self
    }

    /// Enables epoch checkpointing: every `rounds` completed sync rounds
    /// (pagerank: iterations) each host snapshots its owned field state
    /// into the checkpoint store ([`Run::checkpoint_store`], in-memory by
    /// default). Only [`Run::try_launch`] consumes checkpoints; the
    /// steady state stays allocation-free when this is off.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    #[must_use]
    pub fn checkpoint_every(mut self, rounds: u64) -> Self {
        assert!(rounds >= 1, "checkpoint interval must be at least 1 round");
        self.ckpt_every = Some(rounds);
        self
    }

    /// Where checkpoints live (default: a fresh in-memory store per
    /// launch). Pass a [`CheckpointStore::on_disk`] store to survive
    /// process restarts.
    #[must_use]
    pub fn checkpoint_store(mut self, store: CheckpointStore) -> Self {
        self.ckpt_store = Some(store);
        self
    }

    /// What [`Run::try_launch`]'s supervisor does when a host failure is
    /// detected (default: [`FailurePolicy::Recover`]).
    #[must_use]
    pub fn on_failure(mut self, policy: FailurePolicy) -> Self {
        self.on_failure = policy;
        self
    }

    /// Restart budget for [`FailurePolicy::Recover`] (default: 2). The
    /// supervisor makes at most `1 + max_recoveries` attempts.
    #[must_use]
    pub fn max_recoveries(mut self, max_recoveries: u32) -> Self {
        self.max_recoveries = max_recoveries;
        self
    }

    /// Layers [`ReliableTransport`] (go-back-N retransmission, CRC frame
    /// checks, and — when `config.detector` is set — heartbeat failure
    /// detection) over whatever transport stack the builder produces.
    /// Retransmit exhaustion and detected peer death surface as typed
    /// [`NetError`]s carrying the offending sync round.
    #[must_use]
    pub fn reliable(mut self, config: ReliableConfig) -> Self {
        self.reliable = Some(config);
        self
    }

    /// Threads every host's endpoint through `wrap`, so the whole run
    /// uses the wrapped transport stack.
    #[must_use]
    pub fn transport<W2, F2>(
        self,
        wrap: F2,
    ) -> Run<'g, W2, impl Fn(MemoryTransport, u32) -> W2 + Send + Sync>
    where
        W2: Transport,
        F2: Fn(MemoryTransport) -> W2 + Send + Sync,
    {
        self.transport_per_attempt(move |ep, _attempt| wrap(ep))
    }

    /// Replaces every host's in-memory endpoint with a real
    /// [`SocketTransport`] bootstrapped in-process through a
    /// [`SocketFactory`]: the run's hosts still live on threads, but all
    /// payload traffic crosses actual TCP-loopback or Unix-domain
    /// sockets. Payload accounting is identical to the memory backend
    /// (the parity contract the socket tests assert); the wire mechanics
    /// land in the `net_socket_*` counters.
    ///
    /// The supervisor's attempt number selects a fresh rendezvous per
    /// attempt, so recovery relaunches rebuild the mesh from scratch.
    ///
    /// # Panics
    ///
    /// A host panics (tearing down the run) if its socket bootstrap
    /// fails.
    #[must_use]
    pub fn transport_sockets(
        self,
        kind: SocketKind,
    ) -> Run<'g, SocketTransport, impl Fn(MemoryTransport, u32) -> SocketTransport + Send + Sync>
    {
        let factory = SocketFactory::new(kind);
        self.transport_per_attempt(move |ep, attempt| {
            factory
                .endpoint(ep.rank(), ep.world_size(), ep.stats().clone(), attempt)
                .expect("socket bootstrap")
        })
    }

    /// As [`Run::transport`], with the supervisor's 0-based attempt
    /// number passed alongside each endpoint — chaos tests use it to arm
    /// fault plans for specific attempts (`FaultPlan::for_attempt`).
    #[must_use]
    pub fn transport_per_attempt<W2, F2>(self, wrap: F2) -> Run<'g, W2, F2>
    where
        W2: Transport,
        F2: Fn(MemoryTransport, u32) -> W2 + Send + Sync,
    {
        Run {
            graph: self.graph,
            workload: self.workload,
            hosts: self.hosts,
            policy: self.policy,
            opts: self.opts,
            engine: self.engine,
            source: self.source,
            pr: self.pr,
            threads: self.threads,
            tracer: self.tracer,
            metrics: self.metrics,
            arena: self.arena,
            ckpt_every: self.ckpt_every,
            ckpt_store: self.ckpt_store,
            on_failure: self.on_failure,
            max_recoveries: self.max_recoveries,
            reliable: self.reliable,
            wrap,
        }
    }

    /// Splits the builder into its non-generic settings, the transport
    /// wrapper, and the optional reliability layer.
    fn into_parts(self) -> (Setup<'g>, F, Option<ReliableConfig>) {
        let Run {
            graph,
            workload,
            hosts,
            policy,
            opts,
            engine,
            source,
            pr,
            threads,
            tracer,
            metrics,
            arena,
            ckpt_every,
            ckpt_store,
            on_failure,
            max_recoveries,
            reliable,
            wrap,
        } = self;
        (
            Setup {
                graph,
                workload,
                hosts,
                policy,
                opts,
                engine,
                source,
                pr,
                threads,
                tracer,
                metrics,
                arena,
                ckpt_every,
                ckpt_store,
                on_failure,
                max_recoveries,
            },
            wrap,
            reliable,
        )
    }

    /// Executes the run on the simulated cluster. Sync failures panic
    /// inside the host threads ([`Run::try_launch`] surfaces them as
    /// typed errors and can recover from crashes).
    pub fn launch(self) -> DistOutcome {
        let (setup, wrap, reliable) = self.into_parts();
        let tracer = setup.tracer.clone();
        let hub = setup.metrics.clone();
        match reliable {
            Some(cfg) => launch_infallible(&setup, |ep| {
                let net_metrics = NetMetrics::register(&hub.host_registry(ep.rank()));
                ReliableTransport::with_config(wrap(ep, 0), cfg)
                    .with_tracer(tracer.clone())
                    .with_metrics(net_metrics)
            }),
            None => launch_infallible(&setup, |ep| wrap(ep, 0)),
        }
    }

    /// Executes the run under the crash supervisor: host failures surface
    /// as typed [`RunError`]s instead of panics, and — per
    /// [`Run::on_failure`] — the cluster is restarted from the latest
    /// complete checkpoint epoch and replayed forward. Deterministic
    /// execution makes a recovered run bit-identical to a crash-free one.
    ///
    /// # Errors
    ///
    /// [`RunError::Unsupported`] for k-core/betweenness workloads;
    /// [`RunError::Host`] for deterministic failures (decode errors);
    /// [`RunError::Aborted`]/[`RunError::Unrecoverable`] per the failure
    /// policy.
    pub fn try_launch(self) -> Result<DistOutcome, RunError> {
        let (setup, wrap, reliable) = self.into_parts();
        let algo = match setup.workload {
            Workload::Algo(algo) => algo,
            Workload::Kcore(_) => return Err(RunError::Unsupported("kcore")),
            Workload::Betweenness => return Err(RunError::Unsupported("betweenness")),
        };
        let tracer = setup.tracer.clone();
        let hub = setup.metrics.clone();
        match reliable {
            Some(cfg) => supervise(&setup, algo, &move |ep, attempt| {
                let net_metrics = NetMetrics::register(&hub.host_registry(ep.rank()));
                ReliableTransport::with_config(wrap(ep, attempt), cfg)
                    .with_tracer(tracer.clone())
                    .with_metrics(net_metrics)
            }),
            None => supervise(&setup, algo, &wrap),
        }
    }
}

/// The non-generic half of a [`Run`]: everything but the transport stack.
struct Setup<'g> {
    graph: &'g Csr,
    workload: Workload,
    hosts: usize,
    policy: Policy,
    opts: OptLevel,
    engine: EngineKind,
    source: Option<Gid>,
    pr: PagerankConfig,
    threads: usize,
    tracer: Tracer,
    metrics: MetricsHub,
    arena: bool,
    ckpt_every: Option<u64>,
    ckpt_store: Option<CheckpointStore>,
    on_failure: FailurePolicy,
    max_recoveries: u32,
}

/// The panicking launch path shared by both `reliable` arms of
/// [`Run::launch`].
fn launch_infallible<W, F>(setup: &Setup<'_>, wrap: F) -> DistOutcome
where
    W: Transport,
    F: Fn(MemoryTransport) -> W + Send + Sync,
{
    let workload = setup.workload;
    let engine = setup.engine;
    let pr = setup.pr;
    let source = setup
        .source
        .unwrap_or_else(|| max_out_degree_node(setup.graph));
    let symmetric;
    let (input, int_default): (&Csr, u32) = match workload {
        Workload::Algo(Algorithm::Cc) | Workload::Kcore(_) => {
            symmetric = symmetrize(setup.graph);
            (
                &symmetric,
                if matches!(workload, Workload::Kcore(_)) {
                    0
                } else {
                    u32::MAX
                },
            )
        }
        _ => (setup.graph, u32::MAX),
    };
    let needs_transpose = match workload {
        Workload::Algo(algo) => algo == Algorithm::Pagerank || engine == EngineKind::Ligra,
        Workload::Kcore(_) | Workload::Betweenness => false,
    };
    let compute = |lg: &LocalGraph, ctx: &mut GluonContext<'_, W>| -> HostLabels {
        match workload {
            Workload::Algo(algo) => dispatch(lg, ctx, algo, engine, source, pr),
            Workload::Kcore(k) => {
                let (alive, rounds) = apps::kcore(lg, ctx, k, engine);
                (alive, Vec::new(), rounds)
            }
            Workload::Betweenness => {
                let (delta, levels) = apps::betweenness_source(lg, ctx, source);
                (Vec::new(), delta, levels)
            }
        }
    };
    setup.metrics.begin_attempt();
    let (per_host, stats) =
        run_cluster_wrapped(setup.hosts, NetStats::new(setup.hosts), wrap, |net| {
            host_program(
                net,
                input,
                setup.policy,
                setup.opts,
                setup.threads,
                setup.arena,
                &setup.tracer,
                &setup.metrics,
                &|_| needs_transpose,
                &compute,
            )
        });
    publish_socket_counters(&setup.metrics, &stats);
    assemble(input.num_nodes() as usize, int_default, per_host, stats)
}

/// Publishes the socket backend's wire-mechanics counters into the hub's
/// cluster registry (Prometheus `gluon_net_socket_*`). Memory-backend
/// runs never increment them, so publication is skipped when all five
/// are zero; either way the names are fingerprint-dropped, keeping the
/// socket-vs-memory parity contract intact. Under a supervisor this runs
/// per attempt and the hub rebaselines between attempts, so the exported
/// values describe the final attempt.
pub(crate) fn publish_socket_counters(hub: &MetricsHub, stats: &NetStats) {
    if !hub.is_enabled() {
        return;
    }
    let pairs = [
        ("net_socket_connects", stats.socket_connects()),
        (
            "net_socket_reconnect_attempts",
            stats.socket_reconnect_attempts(),
        ),
        ("net_socket_frames_sent", stats.socket_frames_sent()),
        ("net_socket_frames_received", stats.socket_frames_received()),
        ("net_socket_short_reads", stats.socket_short_reads()),
    ];
    if pairs.iter().all(|(_, v)| *v == 0) {
        return;
    }
    let cluster = hub.cluster();
    for (name, v) in pairs {
        cluster.counter(name).add(v);
    }
}

/// Picks the failure to blame an attempt on: the first *peer* failure
/// (crash, detected death, retransmit exhaustion) if any host saw one,
/// else the first error — siblings that merely aborted on the shared
/// cancellation token report [`NetError::Cancelled`], which is a symptom,
/// not a cause.
fn blame(failures: &[(usize, SyncError)]) -> (usize, SyncError) {
    failures
        .iter()
        .copied()
        .find(|(_, e)| matches!(e, SyncError::Net(ne) if ne.is_peer_failure()))
        .unwrap_or(failures[0])
}

/// The supervisor: run attempts, classify failures, restore + replay per
/// the failure policy.
fn supervise<W, F>(setup: &Setup<'_>, algo: Algorithm, wrap: &F) -> Result<DistOutcome, RunError>
where
    W: Transport,
    F: Fn(MemoryTransport, u32) -> W + Send + Sync,
{
    let source = setup
        .source
        .unwrap_or_else(|| max_out_degree_node(setup.graph));
    let symmetric;
    let input: &Csr = match algo {
        Algorithm::Cc => {
            symmetric = symmetrize(setup.graph);
            &symmetric
        }
        _ => setup.graph,
    };
    let needs_transpose = algo == Algorithm::Pagerank || setup.engine == EngineKind::Ligra;
    let store = setup
        .ckpt_store
        .clone()
        .unwrap_or_else(CheckpointStore::in_memory);
    let attempts_allowed = setup.max_recoveries.saturating_add(1);
    let mut recoveries = 0u32;
    let mut last_error: Option<SyncError> = None;
    for attempt in 0..attempts_allowed {
        // Coordinated rollback: every host restores the newest epoch that
        // *all* hosts saved (a host that crashed mid-save leaves that
        // epoch incomplete, so the previous one wins).
        let restore = if attempt == 0 {
            None
        } else {
            store.latest_complete_epoch(setup.hosts)
        };
        let failures = match attempt_once(
            setup,
            algo,
            input,
            source,
            needs_transpose,
            wrap,
            attempt,
            &store,
            restore,
            false,
        ) {
            Ok(mut out) => {
                out.recoveries = recoveries;
                publish_supervisor_counters(&setup.metrics, attempt + 1, recoveries, false);
                return Ok(out);
            }
            Err(failures) => failures,
        };
        // A decode failure is deterministic — replaying the same rounds
        // reproduces it — so no restart can help, whatever the policy.
        if let Some(&(host, error)) = failures
            .iter()
            .find(|(_, e)| matches!(e, SyncError::Decode { .. }))
        {
            return Err(RunError::Host { host, error });
        }
        let (host, error) = blame(&failures);
        last_error = Some(error);
        match setup.on_failure {
            FailurePolicy::AbortClean => return Err(RunError::Aborted { host, error }),
            FailurePolicy::ContinueStale => {
                let Some(epoch) = store.latest_complete_epoch(setup.hosts) else {
                    return Err(RunError::Unrecoverable {
                        attempts: attempt + 1,
                        last: error,
                    });
                };
                setup
                    .tracer
                    .record_event(host, "recovery", host, u64::from(attempt) + 1);
                // Finalize-only relaunch: restore the stale epoch and
                // gather it without computing (zero sync rounds, so no
                // injected crash can re-fire).
                let mut out = attempt_once(
                    setup,
                    algo,
                    input,
                    source,
                    needs_transpose,
                    wrap,
                    attempt + 1,
                    &store,
                    Some(epoch),
                    true,
                )
                .map_err(|f| RunError::Unrecoverable {
                    attempts: attempt + 2,
                    last: blame(&f).1,
                })?;
                out.recoveries = recoveries + 1;
                out.degraded = true;
                publish_supervisor_counters(&setup.metrics, attempt + 2, recoveries + 1, true);
                return Ok(out);
            }
            FailurePolicy::Recover => {
                setup
                    .tracer
                    .record_event(host, "recovery", host, u64::from(attempt) + 1);
                recoveries += 1;
            }
        }
    }
    Err(RunError::Unrecoverable {
        attempts: attempts_allowed,
        last: last_error.expect("at least one attempt ran"),
    })
}

/// Publishes the supervisor's outcome counters into the hub's
/// cluster-level registry. Called after the *final* attempt — every
/// attempt starts by rebaselining the hub, so counters published earlier
/// would read as zero.
fn publish_supervisor_counters(hub: &MetricsHub, attempts: u32, recoveries: u32, degraded: bool) {
    if !hub.is_enabled() {
        return;
    }
    let cluster = hub.cluster();
    cluster.counter("attempts").add(u64::from(attempts));
    cluster.counter("recoveries").add(u64::from(recoveries));
    cluster.gauge("degraded").set(u64::from(degraded));
}

/// One supervised attempt: build a fresh cluster (wrapping endpoints for
/// this attempt number), run the fallible host program on every host, and
/// either assemble a global outcome or report every host's failure.
#[allow(clippy::too_many_arguments)] // private supervisor plumbing
fn attempt_once<W, F>(
    setup: &Setup<'_>,
    algo: Algorithm,
    input: &Csr,
    source: Gid,
    needs_transpose: bool,
    wrap: &F,
    attempt: u32,
    store: &CheckpointStore,
    restore_epoch: Option<u64>,
    finalize_only: bool,
) -> Result<DistOutcome, Vec<(usize, SyncError)>>
where
    W: Transport,
    F: Fn(MemoryTransport, u32) -> W + Send + Sync,
{
    let engine = setup.engine;
    let pr = setup.pr;
    let ckpt = CkptSetup {
        store: store.clone(),
        every: setup.ckpt_every,
        restore_epoch,
        finalize_only,
    };
    let compute = |lg: &LocalGraph, ctx: &mut GluonContext<'_, W>| {
        try_dispatch(lg, ctx, algo, engine, source, pr)
    };
    setup.metrics.begin_attempt();
    let (per_host, stats) = run_cluster_fallible(
        setup.hosts,
        NetStats::new(setup.hosts),
        |ep| wrap(ep, attempt),
        |net, token| {
            try_host_program(
                net,
                token,
                input,
                setup.policy,
                setup.opts,
                setup.threads,
                setup.arena,
                &setup.tracer,
                &setup.metrics,
                &|_| needs_transpose,
                &compute,
                &ckpt,
            )
        },
    );
    let failures: Vec<(usize, SyncError)> = per_host
        .iter()
        .enumerate()
        .filter_map(|(host, r)| r.as_ref().err().map(|e| (host, *e)))
        .collect();
    if !failures.is_empty() {
        return Err(failures);
    }
    let per_host: Vec<HostResult> = per_host
        .into_iter()
        .map(|r| r.expect("no failures"))
        .collect();
    publish_socket_counters(&setup.metrics, &stats);
    Ok(assemble(
        input.num_nodes() as usize,
        u32::MAX,
        per_host,
        stats,
    ))
}

/// Runs BFS on a *heterogeneous* cluster: host `h` computes with
/// `engines[h]` — e.g. CPU hosts running the Galois engine next to emulated
/// GPU hosts running the IrGL engine, the deployment of the paper's
/// Figure 1. The sync substrate is engine-agnostic, so mixing engines needs
/// no special handling: every host still alternates compute and the same
/// collective sync sequence.
///
/// # Panics
///
/// Panics if `engines` is empty.
pub fn run_heterogeneous_bfs(
    graph: &Csr,
    policy: Policy,
    opts: OptLevel,
    engines: &[EngineKind],
    source: Gid,
) -> DistOutcome {
    assert!(!engines.is_empty(), "need at least one host");
    let hosts = engines.len();
    let (per_host, stats) = run_cluster_wrapped(
        hosts,
        NetStats::new(hosts),
        |ep| ep,
        |net| {
            host_program(
                net,
                graph,
                policy,
                opts,
                1,
                true,
                &Tracer::disabled(),
                &MetricsHub::disabled(),
                &|rank| engines[rank] == EngineKind::Ligra,
                &|lg, ctx| {
                    let (dist, rounds) = apps::bfs(lg, ctx, source, engines[ctx.rank()]);
                    (dist, Vec::new(), rounds)
                },
            )
        },
    );
    assemble(graph.num_nodes() as usize, u32::MAX, per_host, stats)
}

pub(crate) struct HostResult {
    pub(crate) masters_int: Vec<(u32, u32)>,
    pub(crate) masters_f64: Vec<(u32, f64)>,
    pub(crate) rounds: u32,
    pub(crate) stats: SyncStats,
    pub(crate) algo_secs: f64,
    pub(crate) partition_secs: f64,
    pub(crate) partition: LocalGraph,
}

/// What one host's compute body yields: integer labels, float labels
/// (either may be empty), and the number of rounds it ran.
pub(crate) type HostLabels = (Vec<u32>, Vec<f64>, u32);

/// The SPMD body every driver shares: partition, set up the Gluon runtime
/// (with a `threads`-wide deterministic pool), run `compute`, and gather
/// this host's master labels.
#[allow(clippy::too_many_arguments)] // private SPMD plumbing, one call site
fn host_program<T: Transport>(
    net: &T,
    input: &Csr,
    policy: Policy,
    opts: OptLevel,
    threads: usize,
    arena: bool,
    tracer: &Tracer,
    hub: &MetricsHub,
    transpose: &(dyn Fn(usize) -> bool + Sync),
    compute: &(dyn Fn(&LocalGraph, &mut GluonContext<'_, T>) -> HostLabels + Sync),
) -> HostResult {
    let comm = Communicator::with_tracer(net, tracer.clone());
    let part_start = Instant::now();
    let mut lg = partition_on_host(input, policy, &comm);
    if transpose(comm.rank()) {
        lg.build_transpose();
    }
    comm.barrier();
    let partition_secs = part_start.elapsed().as_secs_f64();
    let exec_metrics = ExecMetrics::register(&hub.host_registry(comm.rank()));
    let mut ctx = GluonContext::new(&lg, &comm, opts)
        .with_pool(Pool::new(threads).with_metrics(exec_metrics))
        .with_arena(arena)
        .with_metrics(hub.host(comm.rank()));
    ctx.reset_timer();
    let algo_start = Instant::now();
    let (ints, floats, rounds) = compute(&lg, &mut ctx);
    let algo_secs = algo_start.elapsed().as_secs_f64();
    let masters_int = gather_masters(&lg, &ints);
    let masters_f64 = gather_masters(&lg, &floats);
    HostResult {
        masters_int,
        masters_f64,
        rounds,
        stats: ctx.into_stats(),
        algo_secs,
        partition_secs,
        partition: lg,
    }
}

/// Stitches per-host master labels into global vectors and aggregates the
/// statistics. `int_default` fills nodes no host reported (only relevant
/// while assembling integer labels).
fn assemble(n: usize, int_default: u32, per_host: Vec<HostResult>, stats: NetStats) -> DistOutcome {
    let mut int_labels = Vec::new();
    if per_host.iter().any(|h| !h.masters_int.is_empty()) {
        int_labels = vec![int_default; n];
        for h in &per_host {
            for &(gid, v) in &h.masters_int {
                int_labels[gid as usize] = v;
            }
        }
    }
    let mut ranks = Vec::new();
    if per_host.iter().any(|h| !h.masters_f64.is_empty()) {
        ranks = vec![0.0; n];
        for h in &per_host {
            for &(gid, v) in &h.masters_f64 {
                ranks[gid as usize] = v;
            }
        }
    }
    let host_stats: Vec<SyncStats> = per_host.iter().map(|h| h.stats.clone()).collect();
    let partitions: Vec<LocalGraph> = per_host.iter().map(|h| h.partition.clone()).collect();
    DistOutcome {
        int_labels,
        ranks,
        rounds: per_host.iter().map(|h| h.rounds).max().unwrap_or(0),
        run: RunStats::aggregate(&host_stats),
        host_stats,
        algo_secs: per_host.iter().map(|h| h.algo_secs).fold(0.0, f64::max),
        partition_secs: per_host
            .iter()
            .map(|h| h.partition_secs)
            .fold(0.0, f64::max),
        partition: PartitionStats::of(&partitions),
        net: stats.snapshot(),
        recoveries: 0,
        degraded: false,
    }
}

/// Checkpoint wiring for one supervised attempt.
pub(crate) struct CkptSetup {
    pub(crate) store: CheckpointStore,
    pub(crate) every: Option<u64>,
    pub(crate) restore_epoch: Option<u64>,
    pub(crate) finalize_only: bool,
}

/// The per-host compute closure [`try_host_program`] drives: partition in,
/// owned labels (or a typed sync failure) out.
pub(crate) type HostCompute<'a, T> =
    dyn Fn(&LocalGraph, &mut GluonContext<'_, T>) -> Result<HostLabels, SyncError> + Sync + 'a;

/// The fallible SPMD body [`Run::try_launch`] runs on every host: like
/// [`host_program`], plus checkpoint configuration and failure handling —
/// a failing host trips the cluster-wide cancellation token so blocked
/// siblings abort promptly, *except* when it is itself the simulated
/// crash victim (a real dead host announces nothing; its peers must
/// discover the silence through the failure detector).
#[allow(clippy::too_many_arguments)] // private SPMD plumbing, one call site
pub(crate) fn try_host_program<T: Transport>(
    net: &T,
    token: &CancelToken,
    input: &Csr,
    policy: Policy,
    opts: OptLevel,
    threads: usize,
    arena: bool,
    tracer: &Tracer,
    hub: &MetricsHub,
    transpose: &(dyn Fn(usize) -> bool + Sync),
    compute: &HostCompute<'_, T>,
    ckpt: &CkptSetup,
) -> Result<HostResult, SyncError> {
    let comm = Communicator::with_tracer(net, tracer.clone());
    let part_start = Instant::now();
    let mut lg = partition_on_host(input, policy, &comm);
    if transpose(comm.rank()) {
        lg.build_transpose();
    }
    comm.barrier();
    let partition_secs = part_start.elapsed().as_secs_f64();
    let exec_metrics = ExecMetrics::register(&hub.host_registry(comm.rank()));
    let mut ctx = GluonContext::new(&lg, &comm, opts)
        .with_pool(Pool::new(threads).with_metrics(exec_metrics))
        .with_arena(arena)
        .with_metrics(hub.host(comm.rank()));
    if ckpt.every.is_some() || ckpt.restore_epoch.is_some() {
        // `every` is absent only on a finalize-only relaunch of a store
        // populated by an earlier configuration; u64::MAX never divides a
        // reachable round, so saving is effectively off.
        ctx = ctx
            .with_checkpoints(ckpt.store.clone(), ckpt.every.unwrap_or(u64::MAX))
            .with_restore_epoch(ckpt.restore_epoch)
            .with_finalize_only(ckpt.finalize_only);
    }
    ctx.reset_timer();
    let algo_start = Instant::now();
    let (ints, floats, rounds) = match compute(&lg, &mut ctx) {
        Ok(labels) => labels,
        Err(e) => {
            if !matches!(e, SyncError::Net(NetError::HostCrashed { .. })) {
                token.trip();
            }
            return Err(e);
        }
    };
    let algo_secs = algo_start.elapsed().as_secs_f64();
    let masters_int = gather_masters(&lg, &ints);
    let masters_f64 = gather_masters(&lg, &floats);
    Ok(HostResult {
        masters_int,
        masters_f64,
        rounds,
        stats: ctx.into_stats(),
        algo_secs,
        partition_secs,
        partition: lg,
    })
}

fn dispatch<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    algo: Algorithm,
    engine: EngineKind,
    source: Gid,
    pr: PagerankConfig,
) -> HostLabels {
    match algo {
        Algorithm::Bfs => {
            let (d, rounds) = apps::bfs(lg, ctx, source, engine);
            (d, Vec::new(), rounds)
        }
        Algorithm::Sssp => {
            let (d, rounds) = apps::sssp(lg, ctx, source, engine);
            (d, Vec::new(), rounds)
        }
        Algorithm::Cc => {
            let (l, rounds) = apps::cc(lg, ctx, engine);
            (l, Vec::new(), rounds)
        }
        Algorithm::Pagerank => {
            let (r, iters) = apps::pagerank(lg, ctx, pr, engine);
            (Vec::new(), r, iters)
        }
    }
}

/// As [`dispatch`], through the fallible, checkpoint-aware application
/// entry points.
pub(crate) fn try_dispatch<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    algo: Algorithm,
    engine: EngineKind,
    source: Gid,
    pr: PagerankConfig,
) -> Result<HostLabels, SyncError> {
    Ok(match algo {
        Algorithm::Bfs => {
            let (d, rounds) = apps::try_bfs(lg, ctx, source, engine)?;
            (d, Vec::new(), rounds)
        }
        Algorithm::Sssp => {
            let (d, rounds) = apps::try_sssp(lg, ctx, source, engine)?;
            (d, Vec::new(), rounds)
        }
        Algorithm::Cc => {
            let (l, rounds) = apps::try_cc(lg, ctx, engine)?;
            (l, Vec::new(), rounds)
        }
        Algorithm::Pagerank => {
            let (r, iters) = apps::try_pagerank(lg, ctx, pr, engine)?;
            (Vec::new(), r, iters)
        }
    })
}

fn gather_masters<V: Copy>(lg: &LocalGraph, values: &[V]) -> Vec<(u32, V)> {
    if values.is_empty() {
        return Vec::new();
    }
    lg.masters()
        .map(|m| (lg.gid(m).0, values[m.index()]))
        .collect()
}
