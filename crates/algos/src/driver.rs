//! End-to-end drivers: partition, run, gather, aggregate.
//!
//! [`Run`] is the single entry point: a builder that executes one
//! benchmark configuration — algorithm × engine × partitioning policy ×
//! optimization level × host count × intra-host thread count — on the
//! simulated cluster and returns globally assembled labels plus the
//! statistics the paper's tables and figures report.
//!
//! ```ignore
//! let out = Run::new(&graph, Algorithm::Bfs)
//!     .hosts(4)
//!     .policy(Policy::Cvc)
//!     .opt_level(OptLevel::OSTI)
//!     .threads(4)
//!     .launch();
//! ```
//!
//! `.transport(|ep| …)` threads every host's endpoint through a wrapper,
//! so the full suite can run over jittered, faulty, or reliable transport
//! stacks (e.g. `ReliableTransport::over(FaultyTransport::new(..))` for
//! chaos testing); `.tracer(&t)` records micro-stage spans; `.arena(false)`
//! disables the sync buffer arena (results are identical either way).

use crate::apps::{self, PagerankConfig};
use crate::reference::symmetrize;
use crate::{Algorithm, EngineKind};
use gluon::{GluonContext, OptLevel, Pool, RunStats, SyncStats};
use gluon_graph::{max_out_degree_node, Csr, Gid};
use gluon_net::{
    run_cluster_wrapped, Communicator, CostModel, MemoryTransport, NetStats, StatsSnapshot,
    Transport,
};
use gluon_partition::{partition_on_host, LocalGraph, PartitionStats, Policy};
use gluon_trace::Tracer;
use std::time::Instant;

/// One benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Number of simulated hosts.
    pub hosts: usize,
    /// Partitioning policy.
    pub policy: Policy,
    /// Communication optimization level.
    pub opts: OptLevel,
    /// Shared-memory compute engine.
    pub engine: EngineKind,
}

impl DistConfig {
    /// A sensible default: 4 hosts, CVC (the paper's at-scale choice),
    /// full Gluon, the Galois engine.
    pub fn new(hosts: usize) -> DistConfig {
        DistConfig {
            hosts,
            policy: Policy::Cvc,
            opts: OptLevel::OSTI,
            engine: EngineKind::Galois,
        }
    }
}

/// Everything one run produces.
#[derive(Clone, Debug)]
pub struct DistOutcome {
    /// Per-global-node integer labels (bfs/sssp distances, cc labels);
    /// empty for pagerank.
    pub int_labels: Vec<u32>,
    /// Per-global-node ranks (pagerank only).
    pub ranks: Vec<f64>,
    /// BSP rounds (or pagerank iterations) executed.
    pub rounds: u32,
    /// Aggregated compute/communication statistics.
    pub run: RunStats,
    /// Per-host raw statistics (phase-aligned).
    pub host_stats: Vec<SyncStats>,
    /// Maximum per-host wall-clock of the algorithm proper (seconds),
    /// excluding partitioning.
    pub algo_secs: f64,
    /// Maximum per-host wall-clock of partitioning + graph construction.
    pub partition_secs: f64,
    /// Partition quality of the configuration.
    pub partition: PartitionStats,
    /// Whole-cluster traffic snapshot at the end of the run.
    pub net: StatsSnapshot,
}

impl DistOutcome {
    /// Total sync-phase communication volume in bytes.
    pub fn comm_bytes(&self) -> u64 {
        self.run.total_bytes
    }

    /// Projected end-to-end time on a real cluster: the BSP compute
    /// critical path (modeled from work units — the simulated hosts share
    /// physical cores, so wall-clock compute cannot show scaling) plus the
    /// communication charged by the network cost model.
    pub fn projected_secs(&self, model: &CostModel) -> f64 {
        self.run.projected_secs(model, gluon::DEFAULT_EDGES_PER_SEC)
    }

    /// As [`projected_secs`](Self::projected_secs), with each host's
    /// compute spread over `cores` cores (bounded by the measured
    /// critical path of its parallel phases).
    pub fn projected_secs_with_cores(&self, model: &CostModel, cores: usize) -> f64 {
        self.run
            .projected_secs_with_cores(model, gluon::DEFAULT_EDGES_PER_SEC, cores)
    }
}

/// What a [`Run`] computes.
#[derive(Clone, Copy, Debug)]
enum Workload {
    /// One of the four paper benchmarks.
    Algo(Algorithm),
    /// k-core membership with the given k (input symmetrized internally).
    Kcore(u32),
    /// Single-source betweenness centrality.
    Betweenness,
}

/// The identity transport wrapper the builder starts with.
fn identity(ep: MemoryTransport) -> MemoryTransport {
    ep
}

/// Builder for one distributed run. Construct with [`Run::new`],
/// [`Run::kcore`], or [`Run::betweenness`]; chain settings; finish with
/// [`launch`](Run::launch).
#[derive(Debug)]
pub struct Run<'g, W = MemoryTransport, F = fn(MemoryTransport) -> MemoryTransport>
where
    W: Transport,
    F: Fn(MemoryTransport) -> W + Send + Sync,
{
    graph: &'g Csr,
    workload: Workload,
    hosts: usize,
    policy: Policy,
    opts: OptLevel,
    engine: EngineKind,
    source: Option<Gid>,
    pr: PagerankConfig,
    threads: usize,
    tracer: Tracer,
    arena: bool,
    wrap: F,
}

impl<'g> Run<'g> {
    /// A run of one of the four paper benchmarks with the defaults of
    /// [`DistConfig::new`]: 4 hosts, CVC, OSTI, the Galois engine, one
    /// compute thread per host. bfs/sssp default to the maximum
    /// out-degree source (the paper's §5.1 convention); cc symmetrizes
    /// the input internally.
    pub fn new(graph: &'g Csr, algo: Algorithm) -> Run<'g> {
        Run::with_workload(graph, Workload::Algo(algo))
    }

    /// A k-core membership run (see [`apps::kcore`]): `int_labels` holds
    /// 1 for nodes in the k-core of the undirected view, else 0. The
    /// input is symmetrized internally, like cc.
    pub fn kcore(graph: &'g Csr, k: u32) -> Run<'g> {
        Run::with_workload(graph, Workload::Kcore(k))
    }

    /// A single-source betweenness-centrality run (see
    /// [`apps::betweenness_source`]): `ranks` holds the per-node
    /// dependency values, `rounds` the number of BFS levels.
    pub fn betweenness(graph: &'g Csr, source: Gid) -> Run<'g> {
        let mut run = Run::with_workload(graph, Workload::Betweenness);
        run.source = Some(source);
        run
    }

    fn with_workload(graph: &'g Csr, workload: Workload) -> Run<'g> {
        let defaults = DistConfig::new(4);
        Run {
            graph,
            workload,
            hosts: defaults.hosts,
            policy: defaults.policy,
            opts: defaults.opts,
            engine: defaults.engine,
            source: None,
            pr: PagerankConfig::default(),
            threads: 1,
            tracer: Tracer::disabled(),
            arena: true,
            wrap: identity,
        }
    }
}

impl<'g, W, F> Run<'g, W, F>
where
    W: Transport,
    F: Fn(MemoryTransport) -> W + Send + Sync,
{
    /// Number of simulated hosts.
    #[must_use]
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Partitioning policy.
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Communication optimization level.
    #[must_use]
    pub fn opt_level(mut self, opts: OptLevel) -> Self {
        self.opts = opts;
        self
    }

    /// Shared-memory compute engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets hosts, policy, optimization level, and engine at once.
    #[must_use]
    pub fn config(mut self, cfg: &DistConfig) -> Self {
        self.hosts = cfg.hosts;
        self.policy = cfg.policy;
        self.opts = cfg.opts;
        self.engine = cfg.engine;
        self
    }

    /// Source node for bfs/sssp/betweenness (default: the maximum
    /// out-degree node).
    #[must_use]
    pub fn source(mut self, source: Gid) -> Self {
        self.source = Some(source);
        self
    }

    /// Pagerank settings (damping, tolerance, iteration cap).
    #[must_use]
    pub fn pagerank(mut self, pr: PagerankConfig) -> Self {
        self.pr = pr;
        self
    }

    /// Number of intra-host compute threads. Results are bit-identical
    /// at any value — the deterministic pool chunks work on fixed
    /// boundaries and combines per-chunk results in order.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the per-field sync buffer arena (default: on).
    /// The arena recycles encode/decode buffers across rounds so the
    /// steady state allocates nothing; results are bit-identical either
    /// way — disabling it only changes where buffers come from.
    #[must_use]
    pub fn arena(mut self, enabled: bool) -> Self {
        self.arena = enabled;
        self
    }

    /// Records micro-stage spans and sync metrics into `tracer` (size it
    /// with `Tracer::new(hosts)`). After the run, export with
    /// `tracer.chrome_trace_json()` or `tracer.summary(..)`.
    #[must_use]
    pub fn tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Threads every host's endpoint through `wrap`, so the whole run
    /// uses the wrapped transport stack.
    #[must_use]
    pub fn transport<W2, F2>(self, wrap: F2) -> Run<'g, W2, F2>
    where
        W2: Transport,
        F2: Fn(MemoryTransport) -> W2 + Send + Sync,
    {
        Run {
            graph: self.graph,
            workload: self.workload,
            hosts: self.hosts,
            policy: self.policy,
            opts: self.opts,
            engine: self.engine,
            source: self.source,
            pr: self.pr,
            threads: self.threads,
            tracer: self.tracer,
            arena: self.arena,
            wrap,
        }
    }

    /// Executes the run on the simulated cluster.
    pub fn launch(self) -> DistOutcome {
        let Run {
            graph,
            workload,
            hosts,
            policy,
            opts,
            engine,
            source,
            pr,
            threads,
            tracer,
            arena,
            wrap,
        } = self;
        let source = source.unwrap_or_else(|| max_out_degree_node(graph));
        let symmetric;
        let (input, int_default): (&Csr, u32) = match workload {
            Workload::Algo(Algorithm::Cc) | Workload::Kcore(_) => {
                symmetric = symmetrize(graph);
                (
                    &symmetric,
                    if matches!(workload, Workload::Kcore(_)) {
                        0
                    } else {
                        u32::MAX
                    },
                )
            }
            _ => (graph, u32::MAX),
        };
        let needs_transpose = match workload {
            Workload::Algo(algo) => algo == Algorithm::Pagerank || engine == EngineKind::Ligra,
            Workload::Kcore(_) | Workload::Betweenness => false,
        };
        let compute = |lg: &LocalGraph, ctx: &mut GluonContext<'_, W>| -> HostLabels {
            match workload {
                Workload::Algo(algo) => dispatch(lg, ctx, algo, engine, source, pr),
                Workload::Kcore(k) => {
                    let (alive, rounds) = apps::kcore(lg, ctx, k, engine);
                    (alive, Vec::new(), rounds)
                }
                Workload::Betweenness => {
                    let (delta, levels) = apps::betweenness_source(lg, ctx, source);
                    (Vec::new(), delta, levels)
                }
            }
        };
        let (per_host, stats) = run_cluster_wrapped(hosts, NetStats::new(hosts), wrap, |net| {
            host_program(
                net,
                input,
                policy,
                opts,
                threads,
                arena,
                &tracer,
                &|_| needs_transpose,
                &compute,
            )
        });
        assemble(input.num_nodes() as usize, int_default, per_host, stats)
    }
}

/// Runs BFS on a *heterogeneous* cluster: host `h` computes with
/// `engines[h]` — e.g. CPU hosts running the Galois engine next to emulated
/// GPU hosts running the IrGL engine, the deployment of the paper's
/// Figure 1. The sync substrate is engine-agnostic, so mixing engines needs
/// no special handling: every host still alternates compute and the same
/// collective sync sequence.
///
/// # Panics
///
/// Panics if `engines` is empty.
pub fn run_heterogeneous_bfs(
    graph: &Csr,
    policy: Policy,
    opts: OptLevel,
    engines: &[EngineKind],
    source: Gid,
) -> DistOutcome {
    assert!(!engines.is_empty(), "need at least one host");
    let hosts = engines.len();
    let (per_host, stats) = run_cluster_wrapped(
        hosts,
        NetStats::new(hosts),
        |ep| ep,
        |net| {
            host_program(
                net,
                graph,
                policy,
                opts,
                1,
                true,
                &Tracer::disabled(),
                &|rank| engines[rank] == EngineKind::Ligra,
                &|lg, ctx| {
                    let (dist, rounds) = apps::bfs(lg, ctx, source, engines[ctx.rank()]);
                    (dist, Vec::new(), rounds)
                },
            )
        },
    );
    assemble(graph.num_nodes() as usize, u32::MAX, per_host, stats)
}

struct HostResult {
    masters_int: Vec<(u32, u32)>,
    masters_f64: Vec<(u32, f64)>,
    rounds: u32,
    stats: SyncStats,
    algo_secs: f64,
    partition_secs: f64,
    partition: LocalGraph,
}

/// What one host's compute body yields: integer labels, float labels
/// (either may be empty), and the number of rounds it ran.
type HostLabels = (Vec<u32>, Vec<f64>, u32);

/// The SPMD body every driver shares: partition, set up the Gluon runtime
/// (with a `threads`-wide deterministic pool), run `compute`, and gather
/// this host's master labels.
#[allow(clippy::too_many_arguments)] // private SPMD plumbing, one call site
fn host_program<T: Transport>(
    net: &T,
    input: &Csr,
    policy: Policy,
    opts: OptLevel,
    threads: usize,
    arena: bool,
    tracer: &Tracer,
    transpose: &(dyn Fn(usize) -> bool + Sync),
    compute: &(dyn Fn(&LocalGraph, &mut GluonContext<'_, T>) -> HostLabels + Sync),
) -> HostResult {
    let comm = Communicator::with_tracer(net, tracer.clone());
    let part_start = Instant::now();
    let mut lg = partition_on_host(input, policy, &comm);
    if transpose(comm.rank()) {
        lg.build_transpose();
    }
    comm.barrier();
    let partition_secs = part_start.elapsed().as_secs_f64();
    let mut ctx = GluonContext::new(&lg, &comm, opts)
        .with_pool(Pool::new(threads))
        .with_arena(arena);
    ctx.reset_timer();
    let algo_start = Instant::now();
    let (ints, floats, rounds) = compute(&lg, &mut ctx);
    let algo_secs = algo_start.elapsed().as_secs_f64();
    let masters_int = gather_masters(&lg, &ints);
    let masters_f64 = gather_masters(&lg, &floats);
    HostResult {
        masters_int,
        masters_f64,
        rounds,
        stats: ctx.into_stats(),
        algo_secs,
        partition_secs,
        partition: lg,
    }
}

/// Stitches per-host master labels into global vectors and aggregates the
/// statistics. `int_default` fills nodes no host reported (only relevant
/// while assembling integer labels).
fn assemble(n: usize, int_default: u32, per_host: Vec<HostResult>, stats: NetStats) -> DistOutcome {
    let mut int_labels = Vec::new();
    if per_host.iter().any(|h| !h.masters_int.is_empty()) {
        int_labels = vec![int_default; n];
        for h in &per_host {
            for &(gid, v) in &h.masters_int {
                int_labels[gid as usize] = v;
            }
        }
    }
    let mut ranks = Vec::new();
    if per_host.iter().any(|h| !h.masters_f64.is_empty()) {
        ranks = vec![0.0; n];
        for h in &per_host {
            for &(gid, v) in &h.masters_f64 {
                ranks[gid as usize] = v;
            }
        }
    }
    let host_stats: Vec<SyncStats> = per_host.iter().map(|h| h.stats.clone()).collect();
    let partitions: Vec<LocalGraph> = per_host.iter().map(|h| h.partition.clone()).collect();
    DistOutcome {
        int_labels,
        ranks,
        rounds: per_host.iter().map(|h| h.rounds).max().unwrap_or(0),
        run: RunStats::aggregate(&host_stats),
        host_stats,
        algo_secs: per_host.iter().map(|h| h.algo_secs).fold(0.0, f64::max),
        partition_secs: per_host
            .iter()
            .map(|h| h.partition_secs)
            .fold(0.0, f64::max),
        partition: PartitionStats::of(&partitions),
        net: stats.snapshot(),
    }
}

fn dispatch<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    algo: Algorithm,
    engine: EngineKind,
    source: Gid,
    pr: PagerankConfig,
) -> HostLabels {
    match algo {
        Algorithm::Bfs => {
            let (d, rounds) = apps::bfs(lg, ctx, source, engine);
            (d, Vec::new(), rounds)
        }
        Algorithm::Sssp => {
            let (d, rounds) = apps::sssp(lg, ctx, source, engine);
            (d, Vec::new(), rounds)
        }
        Algorithm::Cc => {
            let (l, rounds) = apps::cc(lg, ctx, engine);
            (l, Vec::new(), rounds)
        }
        Algorithm::Pagerank => {
            let (r, iters) = apps::pagerank(lg, ctx, pr, engine);
            (Vec::new(), r, iters)
        }
    }
}

fn gather_masters<V: Copy>(lg: &LocalGraph, values: &[V]) -> Vec<(u32, V)> {
    if values.is_empty() {
        return Vec::new();
    }
    lg.masters()
        .map(|m| (lg.gid(m).0, values[m.index()]))
        .collect()
}
