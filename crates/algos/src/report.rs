//! Post-run observability: [`RunReport`] merges a run's [`DistOutcome`]
//! with the [`MetricsHub`] every layer published into, computes the
//! α–β cost-model calibration residuals, and exports the whole thing as
//! a stable machine-readable JSON document and as Prometheus text
//! exposition.
//!
//! # Calibration
//!
//! The harness projects communication time with
//! [`CostModel::phase_time`]; the report checks that projection against
//! what actually happened. For every aligned sync phase it takes the
//! *measured* time (the maximum `comm_secs` across hosts — BSP progress
//! is gated by the slowest host) and the *projected* time (the model
//! applied to the phase's per-host maximum bytes and messages), and
//! reports `residual = measured - projected` plus their ratio.
//! Retransmissions are charged zero in the per-phase projection: the
//! per-phase byte counters come from [`SyncStats`], which counts raw
//! payloads below the reliability layer.
//!
//! Per-peer rows decompose each host's residual by the share of that
//! host's measured send + recv-wait time attributed to each peer (the
//! [`gluon_metrics::PeerTable`]); per-peer byte counts are not tracked,
//! so the decomposition is proportional, not independently measured.
//!
//! # Stability
//!
//! [`RunReport::fingerprint`] renders the subset of the document that a
//! deterministic run reproduces exactly: it drops every timing field
//! (keys suffixed `_secs`/`_ns`), the calibration and trace sections,
//! reliability- and scheduling-dependent counters, and supervisor
//! bookkeeping. Two fingerprints are equal whenever two runs performed
//! the same communication — across thread counts, and across crash-free
//! vs. crash-recovered executions of the same configuration.

use crate::driver::DistOutcome;
use gluon::SyncStats;
use gluon_metrics::json::Json;
use gluon_metrics::{MetricValue, MetricsHub, NUM_WIRE_MODES, ROUND_STAGE_NAMES, WIRE_MODE_NAMES};
use gluon_net::{CostModel, StatsDelta};
use gluon_trace::Tracer;

/// Version of the report's JSON schema; bumped whenever a field is
/// renamed, removed, or changes meaning (additions are backwards
/// compatible and do not bump it).
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Exact-match keys [`RunReport::fingerprint`] strips, on top of the
/// `_secs`/`_ns` timing suffixes: sections that are timing-derived
/// (`calibration`, `trace`), counters that depend on wall-clock or
/// scheduling (`reliability` and the per-host retransmission/duplicate/
/// detector counters it aggregates — retransmits fire on timeouts, so
/// their counts vary run to run even on identical traffic — plus `exec`
/// and the per-host `pool_crit_work` counter whose critical path varies
/// with thread count), and supervisor bookkeeping that legitimately
/// differs between a crash-free and a recovered run (`cluster`,
/// `recoveries`, `checkpoints_saved`). The `net_socket_*` counters are
/// wire-mechanics bookkeeping of the socket backend (connects, frames,
/// short reads) that a memory-backend run never increments, so they are
/// stripped too: the parity contract is that a socket run and a memory
/// run of the same workload fingerprint identically.
pub const FINGERPRINT_DROPPED_KEYS: [&str; 18] = [
    "calibration",
    "trace",
    "reliability",
    "exec",
    "pool_crit_work",
    "cluster",
    "recoveries",
    "checkpoints_saved",
    "retransmits",
    "retransmit_bytes",
    "dups_suppressed",
    "crc_rejections",
    "peers_down",
    "net_socket_connects",
    "net_socket_reconnect_attempts",
    "net_socket_frames_sent",
    "net_socket_frames_received",
    "net_socket_short_reads",
];

/// A merged, exportable view of one run: outcome + metrics + calibration.
///
/// Build with [`DistOutcome::report`] (or [`RunReport::new`]); export
/// with [`RunReport::render_json`] / [`RunReport::prometheus`]; compare
/// runs with [`RunReport::fingerprint`].
///
/// # Examples
///
/// ```
/// use gluon_algos::{Algorithm, Run};
/// use gluon_graph::gen;
/// use gluon_metrics::MetricsHub;
/// use gluon_net::CostModel;
///
/// let g = gen::rmat(6, 6, Default::default(), 1);
/// let hub = MetricsHub::new(2);
/// let out = Run::new(&g, Algorithm::Bfs).hosts(2).metrics(&hub).launch();
/// let report = out.report(&hub, &CostModel::REPRO);
/// assert_eq!(report.json().get("hosts").unwrap().as_u64(), Some(2));
/// assert!(report.prometheus().contains("gluon_bytes_sent"));
/// ```
#[derive(Clone, Debug)]
pub struct RunReport {
    json: Json,
    prometheus: String,
}

impl RunReport {
    /// Builds the report from a finished run, its metrics hub, and the
    /// cost model to calibrate against. The hub may be disabled — the
    /// outcome-level sections (totals, timing, calibration) are computed
    /// from [`DistOutcome`] alone; metrics-fed sections come out empty.
    pub fn new(outcome: &DistOutcome, hub: &MetricsHub, model: &CostModel) -> RunReport {
        RunReport::with_tracer(outcome, hub, model, &Tracer::disabled())
    }

    /// As [`RunReport::new`], additionally folding the tracer's ring
    /// health (dropped spans/events) into the `trace` section.
    pub fn with_tracer(
        outcome: &DistOutcome,
        hub: &MetricsHub,
        model: &CostModel,
        tracer: &Tracer,
    ) -> RunReport {
        RunReport {
            json: build_json(outcome, hub, model, tracer),
            prometheus: hub.prometheus(),
        }
    }

    /// The report as a JSON tree.
    pub fn json(&self) -> &Json {
        &self.json
    }

    /// The report serialized as a single-line JSON document.
    pub fn render_json(&self) -> String {
        self.json.render()
    }

    /// The hub's metrics in Prometheus text exposition format (empty when
    /// the hub was disabled).
    pub fn prometheus(&self) -> &str {
        &self.prometheus
    }

    /// The deterministic subset of the report, rendered: every timing
    /// field and every scheduling- or reliability-dependent section
    /// stripped (see [`FINGERPRINT_DROPPED_KEYS`]). Equal for runs that
    /// performed identical communication — across thread counts and
    /// across crash-free vs. recovered executions.
    pub fn fingerprint(&self) -> String {
        self.json
            .prune(&|k| {
                k.ends_with("_secs") || k.ends_with("_ns") || FINGERPRINT_DROPPED_KEYS.contains(&k)
            })
            .render()
    }
}

impl DistOutcome {
    /// Builds the [`RunReport`] for this outcome. Pass the hub the run
    /// published into (via [`crate::Run::metrics`]) and the cost model
    /// whose projection the calibration section should be checked
    /// against.
    pub fn report(&self, hub: &MetricsHub, model: &CostModel) -> RunReport {
        RunReport::new(self, hub, model)
    }

    /// As [`DistOutcome::report`], with the run's tracer so the report
    /// carries trace ring health (dropped spans/events).
    pub fn report_with_tracer(
        &self,
        hub: &MetricsHub,
        model: &CostModel,
        tracer: &Tracer,
    ) -> RunReport {
        RunReport::with_tracer(self, hub, model, tracer)
    }
}

fn build_json(outcome: &DistOutcome, hub: &MetricsHub, model: &CostModel, tracer: &Tracer) -> Json {
    let fields: Vec<(String, Json)> = vec![
        ("schema_version".into(), Json::from(REPORT_SCHEMA_VERSION)),
        ("hosts".into(), Json::from(outcome.host_stats.len())),
        ("rounds".into(), Json::from(outcome.rounds)),
        ("phases".into(), Json::from(outcome.run.phases)),
        ("recoveries".into(), Json::from(outcome.recoveries)),
        ("degraded".into(), Json::from(outcome.degraded)),
        ("metrics_enabled".into(), Json::from(hub.is_enabled())),
        ("totals".into(), totals_json(outcome, hub)),
        ("timing".into(), timing_json(outcome)),
        ("wire_modes".into(), wire_modes_json(hub)),
        ("reliability".into(), reliability_json(outcome, hub)),
        ("exec".into(), exec_json(hub)),
        ("cluster".into(), registry_json(&hub.cluster().snapshot())),
        ("per_host".into(), per_host_json(hub)),
        (
            "calibration".into(),
            calibration_json(&outcome.host_stats, hub, model),
        ),
        ("trace".into(), trace_json(tracer)),
    ];
    Json::Obj(fields)
}

fn totals_json(outcome: &DistOutcome, hub: &MetricsHub) -> Json {
    // Two byte-accounting layers exist: the hub counts raw sync payloads
    // below the reliability layer (deterministic — a replayed run moves
    // exactly the same payload bytes), while [`RunStats`] counts
    // transport frames, which under [`ReliableTransport`] include
    // heartbeats and timing-dependent retransmissions. The totals here
    // are the deterministic payload view whenever the hub recorded one;
    // the frame-level numbers stay available under `reliability`.
    //
    // [`RunStats`]: gluon::RunStats
    // [`ReliableTransport`]: gluon_net::ReliableTransport
    let (bytes, messages, max_bytes, max_messages) = if hub.is_enabled() {
        let sum_and_max = |name: &str| {
            (0..hub.world_size())
                .map(|r| hub.host(r).registry().counter_value(name))
                .fold((0u64, 0u64), |(s, m), v| (s + v, m.max(v)))
        };
        let (bytes, max_bytes) = sum_and_max("bytes_sent");
        let (messages, max_messages) = sum_and_max("messages_sent");
        (bytes, messages, max_bytes, max_messages)
    } else {
        (
            outcome.run.total_bytes,
            outcome.run.total_messages,
            outcome.run.max_host_bytes,
            outcome.run.max_host_messages,
        )
    };
    let mut fields = vec![
        ("bytes_sent", Json::from(bytes)),
        ("messages_sent", Json::from(messages)),
        ("max_host_bytes", Json::from(max_bytes)),
        ("max_host_messages", Json::from(max_messages)),
        ("work_units", Json::from(outcome.run.total_work_units)),
    ];
    if hub.is_enabled() {
        for name in [
            "sync_rounds",
            "collective_ops",
            "decode_errors",
            "pool_hits",
            "pool_misses",
            "checkpoints_saved",
        ] {
            fields.push((name, Json::from(hub.counter_across_hosts(name))));
        }
    }
    Json::obj(fields)
}

fn timing_json(outcome: &DistOutcome) -> Json {
    Json::obj([
        ("algo_secs", Json::from(outcome.algo_secs)),
        ("partition_secs", Json::from(outcome.partition_secs)),
        ("comm_secs", Json::from(outcome.run.comm_secs)),
        ("max_compute_secs", Json::from(outcome.run.max_compute_secs)),
        (
            "mean_compute_secs",
            Json::from(outcome.run.mean_compute_secs),
        ),
    ])
}

fn wire_modes_json(hub: &MetricsHub) -> Json {
    if !hub.is_enabled() {
        return Json::Arr(Vec::new());
    }
    const MSG_NAMES: [&str; NUM_WIRE_MODES] = [
        "wire_msgs_empty",
        "wire_msgs_dense",
        "wire_msgs_bitvec",
        "wire_msgs_indices",
        "wire_msgs_gid_values",
        "wire_msgs_idx_delta",
        "wire_msgs_run_len",
        "wire_msgs_same_idx",
        "wire_msgs_same_run",
    ];
    const BYTE_NAMES: [&str; NUM_WIRE_MODES] = [
        "wire_bytes_empty",
        "wire_bytes_dense",
        "wire_bytes_bitvec",
        "wire_bytes_indices",
        "wire_bytes_gid_values",
        "wire_bytes_idx_delta",
        "wire_bytes_run_len",
        "wire_bytes_same_idx",
        "wire_bytes_same_run",
    ];
    Json::Arr(
        (0..NUM_WIRE_MODES)
            .map(|m| {
                Json::obj([
                    ("mode", Json::from(WIRE_MODE_NAMES[m])),
                    (
                        "messages",
                        Json::from(hub.counter_across_hosts(MSG_NAMES[m])),
                    ),
                    ("bytes", Json::from(hub.counter_across_hosts(BYTE_NAMES[m]))),
                ])
            })
            .collect(),
    )
}

fn reliability_json(outcome: &DistOutcome, hub: &MetricsHub) -> Json {
    if !hub.is_enabled() {
        return Json::obj::<&str>([]);
    }
    let mut fields: Vec<(&str, Json)> = [
        "retransmits",
        "retransmit_bytes",
        "dups_suppressed",
        "crc_rejections",
        "peers_down",
    ]
    .map(|n| (n, Json::from(hub.counter_across_hosts(n))))
    .into();
    // The transport's frame-level accounting (heartbeats and
    // retransmissions included). Timing-dependent under a reliable
    // transport, hence reported here — inside a fingerprint-stripped
    // section — rather than under `totals`.
    fields.push(("frame_bytes_sent", Json::from(outcome.run.total_bytes)));
    fields.push((
        "frame_messages_sent",
        Json::from(outcome.run.total_messages),
    ));
    Json::obj(fields)
}

fn exec_json(hub: &MetricsHub) -> Json {
    if !hub.is_enabled() {
        return Json::obj::<&str>([]);
    }
    Json::obj(
        ["pool_parallel_ops", "pool_seq_work", "pool_crit_work"]
            .map(|n| (n, Json::from(hub.counter_across_hosts(n)))),
    )
}

/// Renders one registry snapshot generically, histograms included
/// (buckets trimmed at the last non-empty one).
fn registry_json(snapshot: &[(&'static str, MetricValue)]) -> Json {
    Json::Obj(
        snapshot
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => Json::from(*v),
                    MetricValue::Histogram {
                        buckets,
                        count,
                        sum,
                    } => {
                        let last = buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
                        Json::obj([
                            (
                                "buckets",
                                Json::Arr(
                                    buckets.iter().take(last).map(|&b| Json::from(b)).collect(),
                                ),
                            ),
                            ("count", Json::from(*count)),
                            ("sum", Json::from(*sum)),
                        ])
                    }
                };
                ((*name).to_owned(), v)
            })
            .collect(),
    )
}

fn per_host_json(hub: &MetricsHub) -> Json {
    Json::Arr(
        (0..hub.world_size())
            .map(|rank| {
                let host = hub.host(rank);
                let peers = host.peers();
                let peer_rows: Vec<Json> = (0..peers.len())
                    .filter(|&p| p != rank)
                    .map(|p| {
                        Json::obj([
                            ("peer", Json::from(p)),
                            ("send_ns", Json::from(peers.send_ns(p))),
                            ("recv_wait_ns", Json::from(peers.recv_wait_ns(p))),
                        ])
                    })
                    .collect();
                let series = host.series();
                let rows: Vec<Json> = series.rows().iter().map(round_row_json).collect();
                Json::obj([
                    ("host", Json::from(rank)),
                    ("metrics", registry_json(&host.registry().snapshot())),
                    ("peers", Json::Arr(peer_rows)),
                    (
                        "series",
                        Json::obj([
                            ("rows", Json::Arr(rows)),
                            ("dropped", Json::from(series.dropped())),
                            ("capacity", Json::from(series.capacity())),
                        ]),
                    ),
                ])
            })
            .collect(),
    )
}

fn round_row_json(row: &gluon_metrics::RoundSample) -> Json {
    Json::obj([
        ("round", Json::from(row.round)),
        (
            "stage_ns",
            Json::Obj(
                ROUND_STAGE_NAMES
                    .iter()
                    .zip(row.stage_ns)
                    .map(|(n, v)| ((*n).to_owned(), Json::from(v)))
                    .collect(),
            ),
        ),
        (
            "mode_bytes",
            Json::Obj(
                WIRE_MODE_NAMES
                    .iter()
                    .zip(row.mode_bytes)
                    .filter(|(_, v)| *v > 0)
                    .map(|(n, v)| ((*n).to_owned(), Json::from(v)))
                    .collect(),
            ),
        ),
        ("bytes_sent", Json::from(row.bytes_sent)),
        ("messages_sent", Json::from(row.messages_sent)),
        ("retransmits", Json::from(row.retransmits)),
        ("pool_hits", Json::from(row.pool_hits)),
        ("pool_misses", Json::from(row.pool_misses)),
        ("recv_wait_ns", Json::from(row.recv_wait_ns)),
    ])
}

/// One phase's calibration numbers, as plain data for callers that want
/// the table without going through JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseResidual {
    /// 0-based aligned phase index.
    pub phase: usize,
    /// Measured phase time: max `comm_secs` across hosts (seconds).
    pub measured_secs: f64,
    /// The cost model's projection for the phase (seconds).
    pub projected_secs: f64,
    /// `measured - projected` (seconds; negative when the model
    /// overcharges).
    pub residual_secs: f64,
    /// Largest per-host payload byte count of the phase.
    pub max_host_bytes: u64,
    /// Largest per-host message count of the phase.
    pub max_host_messages: u64,
}

/// Computes the per-phase calibration table from phase-aligned host
/// statistics: for each phase, measured max-host `comm_secs` vs. the
/// model's projection on that phase's max-host traffic.
pub fn phase_residuals(host_stats: &[SyncStats], model: &CostModel) -> Vec<PhaseResidual> {
    let phases = host_stats.first().map_or(0, |h| h.phases.len());
    (0..phases)
        .map(|i| {
            let measured = host_stats
                .iter()
                .map(|h| h.phases[i].comm_secs)
                .fold(0.0f64, f64::max);
            let max_host_bytes = host_stats
                .iter()
                .map(|h| h.phases[i].bytes_sent)
                .max()
                .unwrap_or(0);
            let max_host_messages = host_stats
                .iter()
                .map(|h| h.phases[i].messages_sent)
                .max()
                .unwrap_or(0);
            let delta = StatsDelta {
                total_bytes: host_stats.iter().map(|h| h.phases[i].bytes_sent).sum(),
                total_messages: host_stats.iter().map(|h| h.phases[i].messages_sent).sum(),
                max_host_bytes,
                max_host_messages,
                ..StatsDelta::default()
            };
            let projected = model.phase_time(&delta);
            PhaseResidual {
                phase: i,
                measured_secs: measured,
                projected_secs: projected,
                residual_secs: measured - projected,
                max_host_bytes,
                max_host_messages,
            }
        })
        .collect()
}

fn residual_fields(r: &PhaseResidual) -> Vec<(&'static str, Json)> {
    let ratio = if r.projected_secs > 0.0 {
        Json::from(r.measured_secs / r.projected_secs)
    } else {
        Json::Null
    };
    vec![
        ("measured_secs", Json::from(r.measured_secs)),
        ("projected_secs", Json::from(r.projected_secs)),
        ("residual_secs", Json::from(r.residual_secs)),
        ("ratio", ratio),
        ("max_host_bytes", Json::from(r.max_host_bytes)),
        ("max_host_messages", Json::from(r.max_host_messages)),
    ]
}

fn calibration_json(host_stats: &[SyncStats], hub: &MetricsHub, model: &CostModel) -> Json {
    let rows = phase_residuals(host_stats, model);
    let total = PhaseResidual {
        phase: 0,
        measured_secs: rows.iter().map(|r| r.measured_secs).sum(),
        projected_secs: rows.iter().map(|r| r.projected_secs).sum(),
        residual_secs: rows.iter().map(|r| r.residual_secs).sum(),
        max_host_bytes: rows.iter().map(|r| r.max_host_bytes).sum(),
        max_host_messages: rows.iter().map(|r| r.max_host_messages).sum(),
    };
    let phase_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut fields = vec![("phase", Json::from(r.phase))];
            fields.extend(residual_fields(r));
            Json::obj(fields)
        })
        .collect();
    // Per-host: measured total comm vs. the model on the host's own
    // traffic, decomposed over peers by measured time share.
    let per_host: Vec<Json> = host_stats
        .iter()
        .enumerate()
        .map(|(rank, h)| {
            let measured = h.comm_secs();
            let delta = StatsDelta {
                total_bytes: h.bytes_sent(),
                total_messages: h.messages_sent(),
                max_host_bytes: h.bytes_sent(),
                max_host_messages: h.messages_sent(),
                ..StatsDelta::default()
            };
            let projected = model.phase_time(&delta);
            let residual = measured - projected;
            let peers = hub.host(rank).peers().clone();
            let peer_total: u64 = (0..peers.len())
                .map(|p| peers.send_ns(p) + peers.recv_wait_ns(p))
                .sum();
            let peer_rows: Vec<Json> = (0..peers.len())
                .filter(|&p| p != rank)
                .map(|p| {
                    let mine = peers.send_ns(p) + peers.recv_wait_ns(p);
                    let share = if peer_total > 0 {
                        mine as f64 / peer_total as f64
                    } else {
                        0.0
                    };
                    Json::obj([
                        ("peer", Json::from(p)),
                        ("measured_secs", Json::from(mine as f64 / 1e9)),
                        ("share", Json::from(share)),
                        ("residual_secs", Json::from(residual * share)),
                    ])
                })
                .collect();
            Json::obj([
                ("host", Json::from(rank)),
                ("measured_secs", Json::from(measured)),
                ("projected_secs", Json::from(projected)),
                ("residual_secs", Json::from(residual)),
                ("peers", Json::Arr(peer_rows)),
            ])
        })
        .collect();
    Json::obj([
        ("alpha_secs", Json::from(model.alpha_secs)),
        ("beta_secs_per_byte", Json::from(model.beta_secs_per_byte)),
        ("phases", Json::Arr(phase_rows)),
        ("total", Json::obj(residual_fields(&total))),
        ("per_host", Json::Arr(per_host)),
    ])
}

fn trace_json(tracer: &Tracer) -> Json {
    Json::obj([
        ("enabled", Json::from(tracer.is_enabled())),
        ("dropped_spans", Json::from(tracer.dropped_spans())),
        ("dropped_events", Json::from(tracer.dropped_events())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Run};
    use gluon_graph::gen;

    #[test]
    fn report_merges_outcome_and_hub() {
        let g = gen::rmat(6, 6, Default::default(), 3);
        let hub = MetricsHub::new(2);
        let out = Run::new(&g, Algorithm::Bfs).hosts(2).metrics(&hub).launch();
        let report = out.report(&hub, &CostModel::REPRO);
        let json = report.json();
        assert_eq!(json.get("hosts").unwrap().as_u64(), Some(2));
        assert_eq!(
            json.get("schema_version").unwrap().as_u64(),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(json.get("metrics_enabled").unwrap().as_bool(), Some(true));
        // Payload accounting agrees between the hub and the outcome.
        assert_eq!(
            json.get("totals")
                .unwrap()
                .get("bytes_sent")
                .unwrap()
                .as_u64(),
            Some(out.run.total_bytes)
        );
        assert_eq!(hub.counter_across_hosts("bytes_sent"), out.run.total_bytes);
        // Wire-mode bytes sum to the payload total.
        let mode_sum: u64 = json
            .get("wire_modes")
            .unwrap()
            .items()
            .unwrap()
            .iter()
            .map(|m| m.get("bytes").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(mode_sum, out.run.total_bytes);
        // One calibration row per aligned phase.
        let cal = json.get("calibration").unwrap();
        assert_eq!(
            cal.get("phases").unwrap().items().unwrap().len(),
            out.run.phases
        );
        // The document round-trips through the parser (text-level: the
        // parser reads integral floats back as unsigned integers, so the
        // trees may differ in numeric flavor while the text is stable).
        let text = report.render_json();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.render(), text);
        assert!(report.prometheus().contains("gluon_sync_rounds"));
    }

    #[test]
    fn disabled_hub_still_reports_outcome_and_calibration() {
        let g = gen::rmat(6, 6, Default::default(), 3);
        let hub = MetricsHub::disabled();
        let out = Run::new(&g, Algorithm::Bfs).hosts(2).launch();
        let report = out.report(&hub, &CostModel::REPRO);
        let json = report.json();
        assert_eq!(json.get("metrics_enabled").unwrap().as_bool(), Some(false));
        assert_eq!(
            json.get("calibration")
                .unwrap()
                .get("phases")
                .unwrap()
                .items()
                .unwrap()
                .len(),
            out.run.phases
        );
        assert_eq!(report.prometheus(), "");
        assert!(Json::parse(&report.render_json()).is_ok());
    }

    #[test]
    fn fingerprint_strips_timing_but_keeps_traffic() {
        let g = gen::rmat(6, 6, Default::default(), 4);
        let hub = MetricsHub::new(2);
        let out = Run::new(&g, Algorithm::Bfs).hosts(2).metrics(&hub).launch();
        let fp = out.report(&hub, &CostModel::REPRO).fingerprint();
        assert!(!fp.contains("_secs"));
        assert!(!fp.contains("_ns"));
        assert!(!fp.contains("\"calibration\""));
        assert!(fp.contains("\"bytes_sent\""));
        assert!(fp.contains("\"wire_modes\""));
        assert!(fp.contains("\"rounds\""));
    }

    #[test]
    fn residual_table_matches_the_model_arithmetic() {
        use gluon::PhaseStats;
        let mk = |bytes, msgs, secs| SyncStats {
            phases: vec![PhaseStats {
                comm_secs: secs,
                bytes_sent: bytes,
                messages_sent: msgs,
                ..Default::default()
            }],
            ..Default::default()
        };
        let hosts = [mk(1000, 2, 0.5), mk(500, 10, 0.2)];
        let model = CostModel {
            alpha_secs: 0.01,
            beta_secs_per_byte: 0.0001,
        };
        let rows = phase_residuals(&hosts, &model);
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        assert_eq!(r.max_host_bytes, 1000);
        assert_eq!(r.max_host_messages, 10);
        let expect = 10.0 * 0.01 + 1000.0 * 0.0001;
        assert!((r.projected_secs - expect).abs() < 1e-12);
        assert!((r.measured_secs - 0.5).abs() < 1e-12);
        assert!((r.residual_secs - (0.5 - expect)).abs() < 1e-12);
    }
}
