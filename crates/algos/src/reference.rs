//! Single-host reference implementations used as test oracles.
//!
//! Every distributed run in this workspace — any engine, any partitioning
//! policy, any optimization level, any host count — must agree with these
//! implementations (exactly for the integer-label algorithms, within a
//! tolerance for pagerank).

use gluon_graph::{Csr, Gid};
use std::collections::{BinaryHeap, VecDeque};

/// Unreached marker for distance labels.
pub const INFINITY: u32 = u32::MAX;

/// Breadth-first distances from `source` (INFINITY for unreached nodes).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs(graph: &Csr, source: Gid) -> Vec<u32> {
    assert!(source.0 < graph.num_nodes(), "source out of range");
    let mut dist = vec![INFINITY; graph.num_nodes() as usize];
    dist[source.index()] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for e in graph.out_edges(v) {
            if dist[e.dst.index()] == INFINITY {
                dist[e.dst.index()] = dv + 1;
                queue.push_back(e.dst);
            }
        }
    }
    dist
}

/// Dijkstra shortest-path distances from `source` using edge weights
/// (weight 1 when the graph is unweighted).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sssp(graph: &Csr, source: Gid) -> Vec<u32> {
    assert!(source.0 < graph.num_nodes(), "source out of range");
    let mut dist = vec![INFINITY; graph.num_nodes() as usize];
    dist[source.index()] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u32, source.0)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for e in graph.out_edges(Gid(v)) {
            let nd = d.saturating_add(e.weight);
            if nd < dist[e.dst.index()] {
                dist[e.dst.index()] = nd;
                heap.push(std::cmp::Reverse((nd, e.dst.0)));
            }
        }
    }
    dist
}

/// Connected components of the *undirected view* of `graph`: each node is
/// labeled with the smallest global id in its component (the fixpoint label
/// propagation converges to).
pub fn cc(graph: &Csr) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for (src, e) in graph.edges() {
        let (a, b) = (find(&mut parent, src.0), find(&mut parent, e.dst.0));
        if a != b {
            // Union by smaller label so roots are component minima.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Pull-style pagerank with damping factor `damping`, run until the L1
/// rank change falls below `tolerance` or `max_iters` iterations elapse.
/// Returns `(ranks, iterations)`.
///
/// Dangling nodes keep the conventional treatment the vertex-program
/// formulation implies: their mass is *not* redistributed (matching the
/// paper's benchmarks, which use the same operator).
pub fn pagerank(graph: &Csr, damping: f64, tolerance: f64, max_iters: u32) -> (Vec<f64>, u32) {
    let n = graph.num_nodes() as usize;
    assert!(n > 0, "graph has no nodes");
    let base = (1.0 - damping) / n as f64;
    let out_deg = graph.out_degrees();
    let transpose = graph.transpose();
    let mut rank = vec![1.0 / n as f64; n];
    let mut iters = 0;
    while iters < max_iters {
        let mut next = vec![base; n];
        let mut delta = 0.0f64;
        for v in 0..n {
            let mut sum = 0.0f64;
            for e in transpose.out_edges(Gid(v as u32)) {
                let u = e.dst.index();
                sum += rank[u] / f64::from(out_deg[u].max(1));
            }
            next[v] += damping * sum;
            delta += (next[v] - rank[v]).abs();
        }
        rank = next;
        iters += 1;
        if delta < tolerance {
            break;
        }
    }
    (rank, iters)
}

/// k-core decomposition of the undirected view: each node's core number
/// (largest k such that the node survives in the k-core) via peeling.
pub fn kcore(graph: &Csr) -> Vec<u32> {
    let sym = symmetrize(graph);
    let n = sym.num_nodes() as usize;
    let mut degree: Vec<u32> = sym.out_degrees();
    let mut core = vec![0u32; n];
    // Bucket peeling (O(E + V log V) with a BinaryHeap of (degree, node)).
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = (0..n as u32)
        .map(|v| std::cmp::Reverse((degree[v as usize], v)))
        .collect();
    let mut removed = vec![false; n];
    let mut current = 0u32;
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if removed[v as usize] || d > degree[v as usize] {
            continue;
        }
        removed[v as usize] = true;
        current = current.max(d);
        core[v as usize] = current;
        for e in sym.out_edges(Gid(v)) {
            let u = e.dst.index();
            if !removed[u] && degree[u] > 0 {
                degree[u] -= 1;
                heap.push(std::cmp::Reverse((degree[u], e.dst.0)));
            }
        }
    }
    core
}

/// The undirected (symmetrized, deduplicated, loop-free) view of `graph` —
/// the input convention for cc and kcore.
pub fn symmetrize(graph: &Csr) -> Csr {
    let mut b = gluon_graph::GraphBuilder::new(graph.num_nodes());
    b.dedup().drop_self_loops();
    for (src, e) in graph.edges() {
        b.add_edge(src, e.dst, e.weight);
        b.add_edge(e.dst, src, e.weight);
    }
    b.build()
}

/// Single-source betweenness-centrality dependencies (Brandes): for each
/// node `v`, the dependency `delta_s(v)` is the sum of the pair-dependency
/// over shortest paths from `source` passing through `v`, computed on the
/// unweighted directed graph. `delta[source] = 0`.
pub fn betweenness_source(graph: &Csr, source: Gid) -> Vec<f64> {
    let n = graph.num_nodes() as usize;
    assert!(source.0 < graph.num_nodes(), "source out of range");
    let mut dist = vec![u32::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    dist[source.index()] = 0;
    sigma[source.index()] = 1.0;
    let mut queue = VecDeque::from([source.0]);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let dv = dist[v as usize];
        for e in graph.out_edges(Gid(v)) {
            let u = e.dst.index();
            if dist[u] == u32::MAX {
                dist[u] = dv + 1;
                queue.push_back(e.dst.0);
            }
            if dist[u] == dv + 1 {
                sigma[u] += sigma[v as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &v in order.iter().rev() {
        let dv = dist[v as usize];
        for e in graph.out_edges(Gid(v)) {
            let u = e.dst.index();
            if dist[u] == dv + 1 && sigma[u] > 0.0 {
                delta[v as usize] += sigma[v as usize] / sigma[u] * (1.0 + delta[u]);
            }
        }
    }
    delta[source.index()] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::gen;

    #[test]
    fn bfs_on_path() {
        let d = bfs(&gen::path(5), Gid(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs(&gen::path(5), Gid(2));
        assert_eq!(d2, vec![INFINITY, INFINITY, 0, 1, 2]);
    }

    #[test]
    fn sssp_equals_bfs_on_unweighted() {
        let g = gen::rmat(7, 6, Default::default(), 3);
        assert_eq!(bfs(&g, Gid(0)), sssp(&g, Gid(0)));
    }

    #[test]
    fn sssp_respects_weights() {
        // 0 ->(10) 1, 0 ->(1) 2 ->(1) 1: shortest to 1 is 2.
        let g = Csr::from_weighted_edge_list(3, &[(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        assert_eq!(sssp(&g, Gid(0)), vec![0, 2, 1]);
    }

    #[test]
    fn cc_labels_are_component_minima() {
        // Components {0,1,2} and {3,4}; edge directions irrelevant.
        let g = Csr::from_edge_list(5, &[(1, 0), (1, 2), (4, 3)]);
        assert_eq!(cc(&g), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn cc_on_disconnected_singletons() {
        let g = Csr::empty(4);
        assert_eq!(cc(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pagerank_sums_to_at_most_one_and_ranks_hubs_high() {
        let g = symmetrize(&gen::star(50));
        let (ranks, iters) = pagerank(&g, 0.85, 1e-9, 200);
        assert!(iters > 1);
        let total: f64 = ranks.iter().sum();
        assert!(total <= 1.0 + 1e-9, "total {total}");
        let center = ranks[0];
        assert!(ranks[1..].iter().all(|&r| r < center));
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = gen::cycle(10);
        let (ranks, _) = pagerank(&g, 0.85, 1e-12, 500);
        for r in &ranks {
            assert!((r - 0.1).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn kcore_of_complete_graph() {
        let g = gen::complete(5);
        assert_eq!(kcore(&g), vec![4; 5]);
    }

    #[test]
    fn kcore_of_star_is_one() {
        let core = kcore(&gen::star(6));
        assert_eq!(core, vec![1; 6]);
    }

    #[test]
    fn symmetrize_makes_degrees_equal() {
        let g = gen::rmat(6, 4, Default::default(), 1);
        let s = symmetrize(&g);
        assert_eq!(s.out_degrees(), s.in_degrees());
    }
}
