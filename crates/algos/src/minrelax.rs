//! Shared push-style min-relaxation driver for bfs, sssp, and cc.
//!
//! All three benchmarks are monotone label-lowering computations: an active
//! node pushes `f(label, edge_weight)` along its outgoing edges and a
//! destination keeps the minimum. They differ only in `f` (bfs: `l + 1`,
//! sssp: `l + w`, cc: `l`). The driver runs BSP rounds — engine-specific
//! local compute, then a `WriteAtDestination / ReadAtSource` Gluon sync —
//! until global quiescence.

use crate::EngineKind;
use gluon::{DenseBitset, GluonContext, MinField, ReadLocation, WriteLocation};
use gluon_engines::irgl::IrglEngine;
use gluon_engines::ligra::{self, Direction, EdgeOp, VertexSubset};
use gluon_graph::Lid;
use gluon_net::Transport;
use gluon_partition::LocalGraph;

/// The label-relaxation rule: candidate label for the destination given the
/// source label and edge weight. Must be monotone (never below the source
/// label for positive weights).
pub(crate) type RelaxFn = fn(u32, u32) -> u32;

struct RelaxOp<'a> {
    labels: &'a mut [u32],
    relax: RelaxFn,
    changed: &'a mut DenseBitset,
}

impl EdgeOp for RelaxOp<'_> {
    fn update(&mut self, src: Lid, dst: Lid, weight: u32) -> bool {
        let candidate = (self.relax)(self.labels[src.index()], weight);
        if candidate < self.labels[dst.index()] {
            self.labels[dst.index()] = candidate;
            self.changed.set(dst);
            true
        } else {
            false
        }
    }
}

/// Runs min-relaxation rounds to global quiescence; `labels` and `active`
/// must be initialized by the caller (labels seeded, active bits set for
/// the seeds). Returns the number of BSP rounds executed.
pub(crate) fn run<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    labels: &mut [u32],
    active: &mut DenseBitset,
    engine: EngineKind,
    relax: RelaxFn,
) -> u32 {
    let n = lg.num_proxies();
    assert_eq!(labels.len(), n as usize, "one label per proxy");
    let mut rounds = 0u32;
    let mut device = IrglEngine::new(Default::default());
    loop {
        rounds += 1;
        // Work model: edges examined this round = out-degrees of the
        // processed nodes (per-engine accounting below).
        let mut changed = DenseBitset::new(n);
        match engine {
            EngineKind::Ligra => {
                // Level-synchronous: one edgeMap per round, updates visible
                // next round only (within the host too).
                let frontier = VertexSubset::from_bitset(active.clone());
                let work: u64 = frontier.iter().map(|v| u64::from(lg.out_degree(v))).sum();
                ctx.add_work(work);
                let mut op = RelaxOp {
                    labels,
                    relax,
                    changed: &mut changed,
                };
                let _ = ligra::edge_map(lg, &frontier, &mut op, Direction::Auto);
            }
            EngineKind::Galois => {
                // Asynchronous within the round: chaotic relaxation until
                // local quiescence (the D-Galois hybrid of §5.4).
                let mut work = 0u64;
                gluon_engines::galois::for_each(n, active.iter(), |v, wl| {
                    work += u64::from(lg.out_degree(v));
                    let lv = labels[v.index()];
                    for e in lg.out_edges(v) {
                        let candidate = relax(lv, e.weight);
                        if candidate < labels[e.dst.index()] {
                            labels[e.dst.index()] = candidate;
                            changed.set(e.dst);
                            wl.push(e.dst);
                        }
                    }
                });
                ctx.add_work(work);
            }
            EngineKind::Irgl => {
                // One bulk kernel sweep per round; updates visible within
                // the sweep (GPU atomics semantics).
                let worklist: Vec<Lid> = active.iter().collect();
                let before = device.stats().edges_traversed;
                let _ = device.kernel(lg, &worklist, |v, lg, out| {
                    let lv = labels[v.index()];
                    for e in lg.out_edges(v) {
                        let candidate = relax(lv, e.weight);
                        if candidate < labels[e.dst.index()] {
                            labels[e.dst.index()] = candidate;
                            changed.set(e.dst);
                            out.push(e.dst);
                        }
                    }
                });
                ctx.add_work(device.stats().edges_traversed - before);
            }
        }
        *active = changed;
        let mut field = MinField::new(labels);
        ctx.sync(
            WriteLocation::Destination,
            ReadLocation::Source,
            &mut field,
            active,
        );
        if !ctx.any_globally(!active.is_empty()) {
            return rounds;
        }
    }
}
