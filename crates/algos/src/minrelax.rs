//! Shared push-style min-relaxation driver for bfs, sssp, and cc.
//!
//! All three benchmarks are monotone label-lowering computations: an active
//! node pushes `f(label, edge_weight)` along its outgoing edges and a
//! destination keeps the minimum. They differ only in `f` (bfs: `l + 1`,
//! sssp: `l + w`, cc: `l`). The driver runs BSP rounds — engine-specific
//! local compute, then a `WriteAtDestination / ReadAtSource` Gluon sync —
//! until global quiescence.
//!
//! # Determinism
//!
//! Every engine path drives the context's [`gluon::Pool`] and is
//! bit-identical at any thread count:
//!
//! - **Ligra** keeps the direction heuristic (which depends only on the
//!   frontier) and runs snapshot (Jacobi) sweeps: candidates are computed
//!   from the previous round's labels and applied in chunk order. A
//!   relaxation is no longer visible to later edges of the same sweep, so
//!   round counts can differ from an in-sweep-visible execution, but the
//!   fixpoint labels cannot (monotone min-relaxation has a unique one).
//! - **Galois** runs deterministic bulk *sub-rounds* to local quiescence:
//!   sweep the local frontier on the pool, apply the candidate chunks in
//!   order, repeat until no label improves. This reaches exactly the local
//!   fixpoint FIFO chaotic relaxation reaches, with the same changed set
//!   (a label changed iff its final value beats its initial one), so outer
//!   round counts and wire traffic match the sequential engine.
//! - **IrGL** launches one snapshot kernel per round
//!   ([`IrglEngine::kernel_par`]), with device work counters unchanged.

use crate::EngineKind;
use gluon::{
    CheckpointSnapshot, DenseBitset, GluonContext, MinField, ReadLocation, SyncError, SyncSpec,
    WriteLocation,
};
use gluon_engines::irgl::IrglEngine;
use gluon_engines::ligra::{Direction, VertexSubset};
use gluon_engines::{galois, ligra};
use gluon_graph::Lid;
use gluon_net::Transport;
use gluon_partition::LocalGraph;

/// The label-relaxation rule: candidate label for the destination given the
/// source label and edge weight. Must be monotone (never below the source
/// label for positive weights).
pub(crate) type RelaxFn = fn(u32, u32) -> u32;

/// The sync pattern of every push-style min-relaxation: written at edge
/// destinations, read at edge sources next round.
const SPEC: SyncSpec =
    SyncSpec::full(WriteLocation::Destination, ReadLocation::Source).named("minrelax");

/// Runs min-relaxation rounds to global quiescence; `labels` and `active`
/// must be initialized by the caller (labels seeded, active bits set for
/// the seeds). Returns the number of BSP rounds executed.
pub(crate) fn run<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    labels: &mut [u32],
    active: &mut DenseBitset,
    engine: EngineKind,
    relax: RelaxFn,
) -> u32 {
    try_run(lg, ctx, labels, active, engine, relax)
        .unwrap_or_else(|e| panic!("minrelax failed: {e}"))
}

/// As [`run`], surfacing sync failures as errors, restoring from the
/// context's selected checkpoint epoch (if any) before computing, and
/// snapshotting `labels` + the active set whenever a completed round is a
/// checkpoint boundary. With checkpointing off this is exactly the
/// infallible loop.
pub(crate) fn try_run<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    labels: &mut [u32],
    active: &mut DenseBitset,
    engine: EngineKind,
    relax: RelaxFn,
) -> Result<u32, SyncError> {
    let n = lg.num_proxies();
    assert_eq!(labels.len(), n as usize, "one label per proxy");
    let pool = ctx.pool().clone();
    let mut rounds = 0u32;
    if let Some(snap) = ctx.restore_snapshot() {
        // The snapshot was taken at a round boundary (post-sync,
        // post-termination-vote), so restoring labels + active bits and
        // resuming at round+1 replays the crash-free execution exactly —
        // every engine path is deterministic.
        let saved = snap
            .values::<u32>("labels")
            .expect("checkpoint missing labels field");
        assert_eq!(saved.len(), labels.len(), "checkpoint from another graph");
        labels.copy_from_slice(&saved);
        let words = snap
            .values::<u64>("active_words")
            .expect("checkpoint missing active_words field");
        active.copy_from_words(&words);
        rounds = u32::try_from(snap.round()).expect("round fits u32");
    }
    if ctx.finalize_only() {
        // ContinueStale degradation: surface the restored epoch's labels
        // without running (or syncing) any further rounds.
        return Ok(rounds);
    }
    let mut device = IrglEngine::new(Default::default());
    loop {
        rounds += 1;
        // Work model: edges examined this round are metered by the pool
        // (chunk weights = degrees), absorbed into the next phase's stats.
        let mut changed = DenseBitset::new(n);
        match engine {
            EngineKind::Ligra => {
                // Level-synchronous snapshot sweep: one edgeMap per round,
                // candidates from the previous labels, applied in chunk
                // order.
                let frontier = VertexSubset::from_bitset(active.clone());
                let prev = labels.to_vec();
                match ligra::choose_direction(lg, &frontier, Direction::Auto) {
                    Direction::Pull => {
                        let got = ligra::edge_map_pull_par(
                            lg,
                            &frontier,
                            &pool,
                            labels,
                            |src, _dst, w, cur| {
                                let candidate = relax(prev[src.index()], w);
                                (candidate < *cur).then_some(candidate)
                            },
                        );
                        for dst in got.iter() {
                            changed.set(dst);
                        }
                    }
                    _ => {
                        let _ = ligra::edge_map_push_par(
                            lg,
                            &frontier,
                            &pool,
                            |src, dst, w| {
                                let candidate = relax(prev[src.index()], w);
                                (candidate < prev[dst.index()]).then_some(candidate)
                            },
                            |dst, candidate| {
                                if candidate < labels[dst.index()] {
                                    labels[dst.index()] = candidate;
                                    changed.set(dst);
                                    true
                                } else {
                                    false
                                }
                            },
                        );
                    }
                }
            }
            EngineKind::Galois => {
                // Deterministic bulk sub-rounds to local quiescence (the
                // D-Galois hybrid of §5.4 with a determinism contract).
                let mut frontier: Vec<Lid> = active.iter().collect();
                while !frontier.is_empty() {
                    let labels_ref: &[u32] = labels;
                    let chunks = galois::do_all_chunked(
                        &pool,
                        &frontier,
                        |v| u64::from(lg.out_degree(v)),
                        |chunk| {
                            let mut out: Vec<(Lid, u32)> = Vec::new();
                            for &v in chunk {
                                let lv = labels_ref[v.index()];
                                for e in lg.out_edges(v) {
                                    let candidate = relax(lv, e.weight);
                                    if candidate < labels_ref[e.dst.index()] {
                                        out.push((e.dst, candidate));
                                    }
                                }
                            }
                            out
                        },
                    );
                    let mut next: Vec<Lid> = Vec::new();
                    let mut queued = DenseBitset::new(n);
                    for chunk in chunks {
                        for (dst, candidate) in chunk {
                            if candidate < labels[dst.index()] {
                                labels[dst.index()] = candidate;
                                changed.set(dst);
                                if !queued.test(dst) {
                                    queued.set(dst);
                                    next.push(dst);
                                }
                            }
                        }
                    }
                    frontier = next;
                }
            }
            EngineKind::Irgl => {
                // One bulk snapshot kernel per round.
                let worklist: Vec<Lid> = active.iter().collect();
                let prev = labels.to_vec();
                let _ = device.kernel_par(
                    lg,
                    &pool,
                    &worklist,
                    |v, lg, out| {
                        let lv = prev[v.index()];
                        for e in lg.out_edges(v) {
                            let candidate = relax(lv, e.weight);
                            if candidate < prev[e.dst.index()] {
                                out.push(e.dst, candidate);
                            }
                        }
                    },
                    |dst, candidate| {
                        if candidate < labels[dst.index()] {
                            labels[dst.index()] = candidate;
                            changed.set(dst);
                            true
                        } else {
                            false
                        }
                    },
                );
            }
        }
        *active = changed;
        let mut field = MinField::new(labels);
        ctx.try_sync(&SPEC, &mut field, active)?;
        let live = ctx.try_any_globally(!active.is_empty())?;
        if !live {
            return Ok(rounds);
        }
        if ctx.checkpoint_due(u64::from(rounds)) {
            let mut snap = CheckpointSnapshot::new(u64::from(rounds));
            snap.put_values("labels", labels);
            snap.put_values("active_words", active.words());
            ctx.save_checkpoint(snap);
        }
    }
}
