//! The distributed benchmark applications: bfs, sssp, cc, pagerank.
//!
//! Each function is the per-host body of an SPMD program: it computes on
//! one [`LocalGraph`] with the chosen engine and synchronizes through the
//! given [`GluonContext`]. Labels are returned per *proxy*; masters hold
//! the canonical values (use [`crate::driver`] to gather global vectors).
//!
//! Local compute runs on the context's [`gluon::Pool`] wherever a kernel
//! is wide enough to chunk; every kernel keeps the map/combine discipline
//! (parallel candidate sweep over immutable state, sequential
//! in-chunk-order apply) so results are bit-identical at any thread count —
//! including the floating-point sums in pagerank.

use crate::minrelax;
use crate::reference::INFINITY;
use crate::EngineKind;
use gluon::{
    CheckpointSnapshot, DenseBitset, FieldSync, GluonContext, MinField, ReadLocation, SumField,
    SyncError, SyncSpec, SyncValue, WriteLocation,
};
use gluon_engines::galois;
use gluon_engines::irgl::IrglEngine;
use gluon_engines::ligra::{self, VertexSubset};
use gluon_graph::{Gid, Lid};
use gluon_net::Transport;
use gluon_partition::LocalGraph;

/// Broadcast-only field: `set`/`reduce` overwrite (last writer wins),
/// `reset` keeps the value. Used for fields written only at masters and
/// shipped master → mirror (e.g. pagerank ranks).
#[derive(Debug)]
pub struct CopyField<'a, T> {
    data: &'a mut [T],
}

impl<'a, T> CopyField<'a, T> {
    /// Wraps the label slice (one entry per proxy).
    pub fn new(data: &'a mut [T]) -> Self {
        CopyField { data }
    }
}

impl<T: SyncValue> FieldSync for CopyField<'_, T> {
    type Value = T;

    fn extract(&self, lid: Lid) -> T {
        self.data[lid.index()]
    }

    fn reduce(&mut self, lid: Lid, value: T) -> bool {
        if self.data[lid.index()] == value {
            false
        } else {
            self.data[lid.index()] = value;
            true
        }
    }

    fn reset(&mut self, _lid: Lid) {}

    fn set(&mut self, lid: Lid, value: T) {
        self.data[lid.index()] = value;
    }
}

// The sync patterns the applications below use, named so the tracer's
// per-field wire-mode histogram reads as field names instead of Rust type
// paths.
const OUT_DEGREE: SyncSpec =
    SyncSpec::full(WriteLocation::Source, ReadLocation::Source).named("out_degree");
const CONTRIB: SyncSpec = SyncSpec::reduce(WriteLocation::Destination).named("contrib");
const RANK: SyncSpec = SyncSpec::broadcast(ReadLocation::Source).named("rank");
const DEGREE: SyncSpec = SyncSpec::reduce(WriteLocation::Source).named("degree");
const ALIVE: SyncSpec = SyncSpec::broadcast(ReadLocation::Any).named("alive");
const TRIM: SyncSpec = SyncSpec::reduce(WriteLocation::Destination).named("trim");
const TO_PUSH: SyncSpec = SyncSpec::broadcast(ReadLocation::Source).named("to_push");
const RESIDUAL: SyncSpec = SyncSpec::reduce(WriteLocation::Destination).named("residual");
const SIGMA_BCAST: SyncSpec = SyncSpec::broadcast(ReadLocation::Any).named("sigma");
const DIST_BOTH: SyncSpec =
    SyncSpec::full(WriteLocation::Destination, ReadLocation::Any).named("dist");
const SIGMA_REDUCE: SyncSpec = SyncSpec::reduce(WriteLocation::Destination).named("sigma");
const DELTA_REDUCE: SyncSpec = SyncSpec::reduce(WriteLocation::Source).named("delta");
const DELTA_BCAST: SyncSpec = SyncSpec::broadcast(ReadLocation::Destination).named("delta");
const DIST_PUSH: SyncSpec =
    SyncSpec::full(WriteLocation::Destination, ReadLocation::Source).named("dist");

/// Distributed BFS from `source`. Returns per-proxy distances and the
/// number of BSP rounds.
pub fn bfs<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    source: Gid,
    engine: EngineKind,
) -> (Vec<u32>, u32) {
    let n = lg.num_proxies();
    let mut dist = vec![INFINITY; n as usize];
    let mut active = DenseBitset::new(n);
    if let Some(s) = lg.lid(source) {
        dist[s.index()] = 0;
        active.set(s);
    }
    let rounds = minrelax::run(lg, ctx, &mut dist, &mut active, engine, |l, _| {
        l.saturating_add(1)
    });
    (dist, rounds)
}

/// As [`bfs`], surfacing sync failures as errors and honoring the
/// context's checkpoint/restore configuration.
///
/// # Errors
///
/// Returns the first [`SyncError`] a round's communication hits; local
/// state is then partially reconciled and must be discarded.
pub fn try_bfs<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    source: Gid,
    engine: EngineKind,
) -> Result<(Vec<u32>, u32), SyncError> {
    let n = lg.num_proxies();
    let mut dist = vec![INFINITY; n as usize];
    let mut active = DenseBitset::new(n);
    if let Some(s) = lg.lid(source) {
        dist[s.index()] = 0;
        active.set(s);
    }
    let rounds = minrelax::try_run(lg, ctx, &mut dist, &mut active, engine, |l, _| {
        l.saturating_add(1)
    })?;
    Ok((dist, rounds))
}

/// Distributed SSSP from `source` (weight 1 on unweighted edges). Returns
/// per-proxy distances and the number of BSP rounds.
pub fn sssp<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    source: Gid,
    engine: EngineKind,
) -> (Vec<u32>, u32) {
    let n = lg.num_proxies();
    let mut dist = vec![INFINITY; n as usize];
    let mut active = DenseBitset::new(n);
    if let Some(s) = lg.lid(source) {
        dist[s.index()] = 0;
        active.set(s);
    }
    let rounds = minrelax::run(lg, ctx, &mut dist, &mut active, engine, |l, w| {
        l.saturating_add(w)
    });
    (dist, rounds)
}

/// As [`sssp`], surfacing sync failures as errors and honoring the
/// context's checkpoint/restore configuration.
///
/// # Errors
///
/// Returns the first [`SyncError`] a round's communication hits.
pub fn try_sssp<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    source: Gid,
    engine: EngineKind,
) -> Result<(Vec<u32>, u32), SyncError> {
    let n = lg.num_proxies();
    let mut dist = vec![INFINITY; n as usize];
    let mut active = DenseBitset::new(n);
    if let Some(s) = lg.lid(source) {
        dist[s.index()] = 0;
        active.set(s);
    }
    let rounds = minrelax::try_run(lg, ctx, &mut dist, &mut active, engine, |l, w| {
        l.saturating_add(w)
    })?;
    Ok((dist, rounds))
}

/// Distributed connected components by label propagation. The input
/// partitioning must be of the *symmetrized* graph (see
/// [`crate::reference::symmetrize`]); labels converge to each component's
/// minimum global id. Returns per-proxy labels and the round count.
pub fn cc<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    engine: EngineKind,
) -> (Vec<u32>, u32) {
    let n = lg.num_proxies();
    // Every proxy starts with its own global id and every node is active.
    let mut label: Vec<u32> = (0..n).map(|l| lg.gid(Lid(l)).0).collect();
    let mut active = DenseBitset::new(n);
    active.set_all();
    let rounds = minrelax::run(lg, ctx, &mut label, &mut active, engine, |l, _| l);
    (label, rounds)
}

/// As [`cc`], surfacing sync failures as errors and honoring the
/// context's checkpoint/restore configuration.
///
/// # Errors
///
/// Returns the first [`SyncError`] a round's communication hits.
pub fn try_cc<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    engine: EngineKind,
) -> Result<(Vec<u32>, u32), SyncError> {
    let n = lg.num_proxies();
    let mut label: Vec<u32> = (0..n).map(|l| lg.gid(Lid(l)).0).collect();
    let mut active = DenseBitset::new(n);
    active.set_all();
    let rounds = minrelax::try_run(lg, ctx, &mut label, &mut active, engine, |l, _| l)?;
    Ok((label, rounds))
}

/// Pagerank configuration (the paper: damping 0.85, tolerance 1e-6 or 1e-9,
/// at most 100 iterations).
#[derive(Clone, Copy, Debug)]
pub struct PagerankConfig {
    /// Damping factor d.
    pub damping: f64,
    /// Stop when the global L1 rank change drops below this.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: u32,
}

impl Default for PagerankConfig {
    fn default() -> Self {
        PagerankConfig {
            damping: 0.85,
            tolerance: 1e-6,
            max_iters: 100,
        }
    }
}

/// Distributed pull-style pagerank (the D-Galois/D-IrGL formulation).
/// Returns per-proxy ranks and the iteration count.
///
/// Requires [`LocalGraph::build_transpose`] to have run (the pull loop
/// walks local in-edges).
pub fn pagerank<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    cfg: PagerankConfig,
    engine: EngineKind,
) -> (Vec<f64>, u32) {
    try_pagerank(lg, ctx, cfg, engine).unwrap_or_else(|e| panic!("pagerank failed: {e}"))
}

/// As [`pagerank`], surfacing sync failures as errors and honoring the
/// context's checkpoint/restore configuration.
///
/// A checkpoint stores the full per-proxy rank vector (masters *and*
/// mirrors — mirror ranks are genuine per-host state, the residue of past
/// broadcasts) keyed by the iteration number. `contrib` is all-zero at
/// every iteration boundary (masters are zeroed in the apply loop, mirrors
/// are reset by the reduce sync), so it needs no checkpointing; global
/// out-degrees are recomputed by phase 0 on every attempt because they are
/// a deterministic function of the partition.
///
/// # Errors
///
/// Returns the first [`SyncError`] a round's communication hits.
pub fn try_pagerank<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    cfg: PagerankConfig,
    engine: EngineKind,
) -> Result<(Vec<f64>, u32), SyncError> {
    let n = lg.num_proxies() as usize;
    let total_nodes = f64::from(lg.global_nodes().max(1));
    let base = (1.0 - cfg.damping) / total_nodes;

    let mut rank = vec![1.0 / total_nodes; n];
    let mut iters = 0u32;
    if let Some(snap) = ctx.restore_snapshot() {
        let saved = snap
            .values::<f64>("rank")
            .expect("checkpoint missing rank field");
        assert_eq!(saved.len(), n, "checkpoint from another graph");
        rank = saved;
        iters = u32::try_from(snap.round()).expect("iteration fits u32");
    }
    if ctx.finalize_only() {
        // ContinueStale degradation: masters already hold the restored
        // epoch's canonical ranks; skip phase 0 and the iteration loop
        // entirely so no communication happens at all.
        return Ok((rank, iters));
    }

    // Phase 0: assemble *global* out-degrees at every proxy. Local
    // out-degrees are partial sums (vertex-cuts split a node's out-edges),
    // so reduce them at masters, then broadcast the totals to every proxy
    // that will be read as an edge source.
    let mut gdeg: Vec<u32> = (0..n).map(|l| lg.out_degree(Lid(l as u32))).collect();
    let mut deg_bits = DenseBitset::new(lg.num_proxies());
    deg_bits.set_all();
    {
        let mut field = SumField::new(&mut gdeg);
        ctx.try_sync(&OUT_DEGREE, &mut field, &mut deg_bits)?;
    }

    let mut contrib = vec![0.0f64; n];
    let pool = ctx.pool().clone();
    let mut device = IrglEngine::new(Default::default());
    while iters < cfg.max_iters {
        iters += 1;
        // Pull phase: partial contribution sums at every proxy with local
        // in-edges. `contrib` is assigned (not accumulated) per round.
        // Chunk weights charge the pool meter one unit per in-edge
        // scanned; each destination's sum folds in in-edge order, so the
        // f64 result is bit-identical at any thread count.
        let mut contrib_bits = DenseBitset::new(lg.num_proxies());
        match engine {
            EngineKind::Ligra => {
                // Dense-frontier pull edgeMap: every source is live.
                contrib.fill(0.0);
                let mut all = DenseBitset::new(lg.num_proxies());
                all.set_all();
                let frontier = VertexSubset::from_bitset(all);
                let got = ligra::edge_map_pull_par(
                    lg,
                    &frontier,
                    &pool,
                    &mut contrib,
                    |src, _dst, _w, cur| {
                        Some(*cur + rank[src.index()] / f64::from(gdeg[src.index()].max(1)))
                    },
                );
                for v in got.iter() {
                    contrib_bits.set(v);
                }
            }
            EngineKind::Galois => {
                let proxies: Vec<Lid> = lg.proxies().collect();
                let chunks = galois::do_all_chunked(
                    &pool,
                    &proxies,
                    |v| lg.in_edges(v).count() as u64,
                    |chunk| {
                        let mut out: Vec<(Lid, f64)> = Vec::new();
                        for &v in chunk {
                            if !lg.has_local_in_edges(v) {
                                continue;
                            }
                            let mut sum = 0.0f64;
                            for e in lg.in_edges(v) {
                                let u = e.dst; // in_edges reports the source here
                                sum += rank[u.index()] / f64::from(gdeg[u.index()].max(1));
                            }
                            out.push((v, sum));
                        }
                        out
                    },
                );
                for chunk in chunks {
                    for (v, sum) in chunk {
                        contrib[v.index()] = sum;
                        contrib_bits.set(v);
                    }
                }
            }
            EngineKind::Irgl => {
                let worklist: Vec<Lid> = lg.proxies().collect();
                let _ = device.kernel_par(
                    lg,
                    &pool,
                    &worklist,
                    |v, lg, out| {
                        if !lg.has_local_in_edges(v) {
                            return;
                        }
                        let mut sum = 0.0f64;
                        for e in lg.in_edges(v) {
                            let u = e.dst;
                            sum += rank[u.index()] / f64::from(gdeg[u.index()].max(1));
                        }
                        out.push(v, sum);
                    },
                    |v, sum| {
                        contrib[v.index()] = sum;
                        contrib_bits.set(v);
                        true
                    },
                );
            }
        }
        // Reduce partial sums to masters; the contributions are consumed
        // there, so no broadcast of `contrib` is ever needed.
        {
            let mut field = SumField::new(&mut contrib);
            ctx.try_sync(&CONTRIB, &mut field, &mut contrib_bits)?;
        }
        // Apply at masters and measure the local L1 change.
        let mut rank_bits = DenseBitset::new(lg.num_proxies());
        let mut local_delta = 0.0f64;
        for m in lg.masters() {
            let next = base + cfg.damping * contrib[m.index()];
            let delta = (next - rank[m.index()]).abs();
            if delta > 0.0 {
                rank[m.index()] = next;
                rank_bits.set(m);
            }
            local_delta += delta;
            contrib[m.index()] = 0.0;
        }
        // Ship canonical ranks to the mirrors that will be read as edge
        // sources next round.
        {
            let mut field = CopyField::new(&mut rank);
            ctx.try_sync(&RANK, &mut field, &mut rank_bits)?;
        }
        let done = ctx.try_sum_globally(local_delta)? < cfg.tolerance;
        if done {
            break;
        }
        if ctx.checkpoint_due(u64::from(iters)) {
            let mut snap = CheckpointSnapshot::new(u64::from(iters));
            snap.put_values("rank", &rank);
            ctx.save_checkpoint(snap);
        }
    }
    Ok((rank, iters))
}

/// Distributed k-core membership: which nodes survive in the k-core of the
/// (symmetrized) input. Returns per-proxy alive flags (1 = in the k-core)
/// and the number of peeling rounds.
///
/// This benchmark is part of the real D-Galois suite; it exercises a sync
/// pattern the four paper benchmarks do not: a broadcast-only flag field
/// (`alive`) combined with a reduce-only accumulator (`trim`), both per
/// round.
///
/// The partitioning must be of the symmetrized graph (every neighbor
/// relation present in both directions, deduplicated).
pub fn kcore<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    k: u32,
    engine: EngineKind,
) -> (Vec<u32>, u32) {
    let n = lg.num_proxies() as usize;
    // Global (undirected) degree at every master, via the same partial-sum
    // reduction pagerank uses for out-degrees.
    let mut degree: Vec<u32> = (0..n).map(|l| lg.out_degree(Lid(l as u32))).collect();
    let mut deg_bits = DenseBitset::new(lg.num_proxies());
    deg_bits.set_all();
    {
        let mut field = SumField::new(&mut degree);
        ctx.sync(&DEGREE, &mut field, &mut deg_bits);
    }
    let mut alive: Vec<u32> = vec![1; n];
    let mut trim: Vec<u32> = vec![0; n];
    let pool = ctx.pool().clone();
    let mut device = IrglEngine::new(Default::default());
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        // 1. Masters kill nodes whose degree dropped below k.
        let mut newly_dead = DenseBitset::new(lg.num_proxies());
        let mut any_death = false;
        for m in lg.masters() {
            if alive[m.index()] == 1 && degree[m.index()] < k {
                alive[m.index()] = 0;
                newly_dead.set(m);
                any_death = true;
            }
        }
        // 2. Tell the mirrors (they hold part of the dead node's edges).
        {
            let mut field = CopyField::new(&mut alive);
            ctx.sync(&ALIVE, &mut field, &mut newly_dead);
        }
        // 3. Every newly dead proxy trims its local neighbors. The chunked
        // sweep is metered by out-degree.
        let mut trim_bits = DenseBitset::new(lg.num_proxies());
        let dead_list: Vec<Lid> = newly_dead.iter().collect();
        match engine {
            EngineKind::Ligra => {
                let frontier = VertexSubset::from_members(dead_list);
                let _ = ligra::edge_map_push_par(
                    lg,
                    &frontier,
                    &pool,
                    |_src, _dst, _w| Some(1u32),
                    |dst, inc| {
                        trim[dst.index()] += inc;
                        trim_bits.set(dst);
                        true
                    },
                );
            }
            EngineKind::Galois => {
                let chunks = galois::do_all_chunked(
                    &pool,
                    &dead_list,
                    |v| u64::from(lg.out_degree(v)),
                    |chunk| {
                        let mut out: Vec<Lid> = Vec::new();
                        for &v in chunk {
                            out.extend(lg.out_edges(v).map(|e| e.dst));
                        }
                        out
                    },
                );
                for chunk in chunks {
                    for dst in chunk {
                        trim[dst.index()] += 1;
                        trim_bits.set(dst);
                    }
                }
            }
            EngineKind::Irgl => {
                let _ = device.kernel_par(
                    lg,
                    &pool,
                    &dead_list,
                    |v, lg, out| {
                        for e in lg.out_edges(v) {
                            out.push(e.dst, 1u32);
                        }
                    },
                    |dst, inc| {
                        trim[dst.index()] += inc;
                        trim_bits.set(dst);
                        true
                    },
                );
            }
        }
        // 4. Collect the trims at the masters and apply.
        {
            let mut field = SumField::new(&mut trim);
            ctx.sync(&TRIM, &mut field, &mut trim_bits);
        }
        for m in lg.masters() {
            if trim[m.index()] > 0 {
                degree[m.index()] = degree[m.index()].saturating_sub(trim[m.index()]);
                trim[m.index()] = 0;
            }
        }
        if !ctx.any_globally(any_death) {
            return (alive, rounds);
        }
    }
}

/// Distributed *push-style* pagerank with residuals — the dual of
/// [`pagerank`] ("both push-style and pull-style implementations are
/// available in D-Ligra", §5.1).
///
/// Nodes accumulate `rank` by draining a `residual`: applying a node moves
/// its residual into its rank and pushes `d * residual / out-degree` to its
/// out-neighbors' residuals. A master's out-edges are split across hosts
/// under vertex-cuts, so the push value is *broadcast* to the mirrors that
/// hold out-edges and the pushed residuals are *reduced* back to masters —
/// the mirror-image communication pattern of the pull version.
///
/// Converges to the same fixpoint as [`pagerank`]; `cfg.tolerance` bounds
/// the total residual left unapplied.
pub fn pagerank_push<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    cfg: PagerankConfig,
    engine: EngineKind,
) -> (Vec<f64>, u32) {
    let n = lg.num_proxies() as usize;
    let total_nodes = f64::from(lg.global_nodes().max(1));
    // Apply threshold: leave at most `tolerance` total residual unapplied.
    let eps = cfg.tolerance / total_nodes;

    // Global out-degrees, as in the pull version.
    let mut gdeg: Vec<u32> = (0..n).map(|l| lg.out_degree(Lid(l as u32))).collect();
    let mut deg_bits = DenseBitset::new(lg.num_proxies());
    deg_bits.set_all();
    {
        let mut field = SumField::new(&mut gdeg);
        ctx.sync(&OUT_DEGREE, &mut field, &mut deg_bits);
    }

    let mut rank = vec![0.0f64; n];
    // Sum-field contract: masters carry the initial mass, mirrors identity.
    let mut residual = vec![0.0f64; n];
    for m in lg.masters() {
        residual[m.index()] = (1.0 - cfg.damping) / total_nodes;
    }
    let mut to_push = vec![0.0f64; n];
    let pool = ctx.pool().clone();
    let mut device = IrglEngine::new(Default::default());
    let max_rounds = cfg.max_iters.saturating_mul(20).max(100);
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        // 1. Apply at masters whose residual is worth draining.
        let mut push_bits = DenseBitset::new(lg.num_proxies());
        for m in lg.masters() {
            let r = residual[m.index()];
            if r > eps {
                rank[m.index()] += r;
                residual[m.index()] = 0.0;
                let deg = f64::from(gdeg[m.index()].max(1));
                to_push[m.index()] = cfg.damping * r / deg;
                push_bits.set(m);
            }
        }
        // 2. Ship the push value to the mirrors holding out-edges.
        {
            let mut field = CopyField::new(&mut to_push);
            ctx.sync(&TO_PUSH, &mut field, &mut push_bits);
        }
        // 3. Push along local out-edges into local residuals. Candidates
        // apply in frontier order (ascending lids), so the f64 residual
        // sums fold in the same order at any thread count.
        let mut res_bits = DenseBitset::new(lg.num_proxies());
        let frontier: Vec<Lid> = push_bits.iter().collect();
        match engine {
            EngineKind::Ligra => {
                let subset = VertexSubset::from_members(frontier);
                let _ = ligra::edge_map_push_par(
                    lg,
                    &subset,
                    &pool,
                    |src, _dst, _w| {
                        let share = to_push[src.index()];
                        (share != 0.0).then_some(share)
                    },
                    |dst, share| {
                        residual[dst.index()] += share;
                        res_bits.set(dst);
                        true
                    },
                );
            }
            EngineKind::Galois => {
                let chunks = galois::do_all_chunked(
                    &pool,
                    &frontier,
                    |v| u64::from(lg.out_degree(v)),
                    |chunk| {
                        let mut out: Vec<(Lid, f64)> = Vec::new();
                        for &v in chunk {
                            let share = to_push[v.index()];
                            if share == 0.0 {
                                continue;
                            }
                            for e in lg.out_edges(v) {
                                out.push((e.dst, share));
                            }
                        }
                        out
                    },
                );
                for chunk in chunks {
                    for (dst, share) in chunk {
                        residual[dst.index()] += share;
                        res_bits.set(dst);
                    }
                }
            }
            EngineKind::Irgl => {
                let _ = device.kernel_par(
                    lg,
                    &pool,
                    &frontier,
                    |v, lg, out| {
                        let share = to_push[v.index()];
                        if share == 0.0 {
                            return;
                        }
                        for e in lg.out_edges(v) {
                            out.push(e.dst, share);
                        }
                    },
                    |dst, share| {
                        residual[dst.index()] += share;
                        res_bits.set(dst);
                        true
                    },
                );
            }
        }
        // 4. Reduce pushed residuals to masters.
        {
            let mut field = SumField::new(&mut residual);
            ctx.sync(&RESIDUAL, &mut field, &mut res_bits);
        }
        // 5. Quiesce when no master holds an appliable residual.
        let local_active = lg.masters().any(|m| residual[m.index()] > eps);
        if !ctx.any_globally(local_active) || rounds >= max_rounds {
            return (rank, rounds);
        }
    }
}

/// Distributed single-source betweenness centrality (Brandes), an extension
/// beyond the paper's four benchmarks (it is part of the real D-Galois
/// application suite).
///
/// BC is the one workload here whose *backward* phase moves data against
/// edge direction: per-level dependency sums are written at edge *sources*
/// and read at edge *destinations*, exercising the
/// `WriteAtSource`/`ReadAtDestination` sync patterns that the four forward
/// benchmarks never use.
///
/// Returns per-proxy dependency values `delta_s(v)` and the number of BFS
/// levels.
pub fn betweenness_source<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    source: Gid,
) -> (Vec<f64>, u32) {
    let n = lg.num_proxies() as usize;
    let caps = lg.num_proxies();
    let mut dist = vec![INFINITY; n];
    let mut sigma = vec![0.0f64; n];

    // Seed: the master of the source holds sigma 1; ship the canonical
    // sigma to every proxy of the source before the first level.
    let mut seed_bits = DenseBitset::new(caps);
    if let Some(s) = lg.lid(source) {
        dist[s.index()] = 0;
        if lg.is_master(s) {
            sigma[s.index()] = 1.0;
            seed_bits.set(s);
        }
    }
    {
        let mut field = CopyField::new(&mut sigma);
        ctx.sync(&SIGMA_BCAST, &mut field, &mut seed_bits);
    }

    // ---- Forward phase: level-synchronous BFS with path counting. ----
    let mut level = 0u32;
    loop {
        // Expansion: discover level + 1 through local frontier edges. The
        // dist field is read at *both* ends later (the sigma pass checks
        // destinations), so it broadcasts to every mirror.
        let mut dist_bits = DenseBitset::new(caps);
        let frontier: Vec<Lid> = lg.proxies().filter(|&v| dist[v.index()] == level).collect();
        ctx.add_work(frontier.iter().map(|&v| u64::from(lg.out_degree(v))).sum());
        for &v in &frontier {
            for e in lg.out_edges(v) {
                if dist[e.dst.index()] > level + 1 {
                    dist[e.dst.index()] = level + 1;
                    dist_bits.set(e.dst);
                }
            }
        }
        {
            let mut field = MinField::new(&mut dist);
            ctx.sync(&DIST_BOTH, &mut field, &mut dist_bits);
        }
        // Path counting: each local edge from level to level + 1 forwards
        // sigma. Partial sums reduce to masters, canonical values broadcast
        // everywhere (the backward phase reads sigma at both ends too).
        let mut sig_bits = DenseBitset::new(caps);
        // Re-derive: the sync may have revealed remotely-discovered
        // level-`level` proxies.
        let frontier: Vec<Lid> = lg.proxies().filter(|&v| dist[v.index()] == level).collect();
        ctx.add_work(frontier.iter().map(|&v| u64::from(lg.out_degree(v))).sum());
        for &v in &frontier {
            let sv = sigma[v.index()];
            if sv == 0.0 {
                continue;
            }
            for e in lg.out_edges(v) {
                if dist[e.dst.index()] == level + 1 {
                    sigma[e.dst.index()] += sv;
                    sig_bits.set(e.dst);
                }
            }
        }
        {
            let mut field = SumField::new(&mut sigma);
            ctx.sync(&SIGMA_REDUCE, &mut field, &mut sig_bits);
        }
        let mut bcast_bits = DenseBitset::new(caps);
        for m in lg.masters() {
            if dist[m.index()] == level + 1 {
                bcast_bits.set(m);
            }
        }
        let frontier_nonempty = !bcast_bits.is_empty();
        {
            let mut field = CopyField::new(&mut sigma);
            ctx.sync(&SIGMA_BCAST, &mut field, &mut bcast_bits);
        }
        if !ctx.any_globally(frontier_nonempty) {
            break;
        }
        level += 1;
    }
    let deepest = level; // nodes exist at levels 0..=deepest

    // ---- Backward phase: dependency accumulation, deepest-first. ----
    let mut delta = vec![0.0f64; n];
    let mut l = deepest;
    loop {
        // Partial dependency sums at every proxy of a level-l node that
        // holds outgoing edges — written at edge *sources*.
        let mut delta_bits = DenseBitset::new(caps);
        let level_nodes: Vec<Lid> = lg.proxies().filter(|&v| dist[v.index()] == l).collect();
        ctx.add_work(
            level_nodes
                .iter()
                .map(|&v| u64::from(lg.out_degree(v)))
                .sum(),
        );
        for &v in &level_nodes {
            let sv = sigma[v.index()];
            if sv == 0.0 {
                continue;
            }
            let mut acc = 0.0f64;
            for e in lg.out_edges(v) {
                let u = e.dst.index();
                if dist[u] == l + 1 && sigma[u] > 0.0 {
                    acc += sv / sigma[u] * (1.0 + delta[u]);
                }
            }
            if acc != 0.0 {
                delta[v.index()] += acc;
                delta_bits.set(v);
            }
        }
        // Reduce source-side partials to masters, then ship the canonical
        // dependency to the proxies that will read it as an edge
        // destination one level up.
        {
            let mut field = SumField::new(&mut delta);
            ctx.sync(&DELTA_REDUCE, &mut field, &mut delta_bits);
        }
        let mut bcast_bits = DenseBitset::new(caps);
        for m in lg.masters() {
            if dist[m.index()] == l && delta[m.index()] != 0.0 {
                bcast_bits.set(m);
            }
        }
        {
            let mut field = CopyField::new(&mut delta);
            ctx.sync(&DELTA_BCAST, &mut field, &mut bcast_bits);
        }
        if l == 0 {
            break;
        }
        l -= 1;
    }
    if let Some(s) = lg.lid(source) {
        delta[s.index()] = 0.0;
    }
    (delta, deepest)
}

/// Distributed delta-stepping SSSP: like [`sssp`] with the Galois engine,
/// but within each BSP round the host drains its work in ascending
/// distance order (bucket width `delta`) instead of FIFO, doing fewer
/// wasted relaxations on weighted graphs — the Lonestar scheduler married
/// to Gluon rounds. Returns per-proxy distances and the round count.
pub fn sssp_delta<T: Transport + ?Sized>(
    lg: &LocalGraph,
    ctx: &mut GluonContext<'_, T>,
    source: Gid,
    delta: u32,
) -> (Vec<u32>, u32) {
    let n = lg.num_proxies();
    let mut dist = vec![INFINITY; n as usize];
    let mut active = DenseBitset::new(n);
    if let Some(s) = lg.lid(source) {
        dist[s.index()] = 0;
        active.set(s);
    }
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let mut changed = DenseBitset::new(n);
        let seeds: Vec<(Lid, u32)> = active
            .iter()
            .map(|v| (v, dist[v.index()]))
            .filter(|&(_, d)| d != INFINITY)
            .collect();
        let mut work = 0u64;
        gluon_engines::galois::for_each_prioritized(n, delta, seeds, |v, prio, wl| {
            if prio > dist[v.index()] {
                return; // improved since it was queued
            }
            work += u64::from(lg.out_degree(v));
            let dv = dist[v.index()];
            for e in lg.out_edges(v) {
                let nd = dv.saturating_add(e.weight);
                if nd < dist[e.dst.index()] {
                    dist[e.dst.index()] = nd;
                    changed.set(e.dst);
                    wl.push(e.dst, nd);
                }
            }
        });
        ctx.add_work(work);
        active = changed;
        let mut field = MinField::new(&mut dist);
        ctx.sync(&DIST_PUSH, &mut field, &mut active);
        if !ctx.any_globally(!active.is_empty()) {
            return (dist, rounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_field_reports_changes() {
        let mut data = vec![1u32, 2];
        let mut f = CopyField::new(&mut data);
        assert!(!f.reduce(Lid(0), 1));
        assert!(f.reduce(Lid(0), 9));
        assert_eq!(f.extract(Lid(0)), 9);
        f.reset(Lid(0));
        assert_eq!(f.extract(Lid(0)), 9);
    }

    #[test]
    fn pagerank_config_defaults_match_paper() {
        let cfg = PagerankConfig::default();
        assert_eq!(cfg.damping, 0.85);
        assert_eq!(cfg.max_iters, 100);
    }
}
