//! Multi-process cluster launcher: real SPMD over [`SocketTransport`].
//!
//! Everything else in this workspace simulates a cluster with threads.
//! This module runs the same host program as *separate OS processes*
//! wired together by the socket transport, which is the deployment shape
//! the paper's Gluon actually ships in (one process per host, TCP or
//! MPI underneath). The contract is strict equivalence: a process run
//! must produce labels, payload byte/message/round counters, and a
//! [`crate::RunReport::fingerprint`] bit-identical to the in-memory
//! backend — the socket backend may add wire mechanics, never traffic.
//!
//! Roles:
//!
//! - **Parent** ([`spawn_local_cluster`]): saves the graph to a scratch
//!   directory, spawns `hosts` copies of the `gluon-host` worker binary
//!   on localhost, reads rank 0's advertised rendezvous address from its
//!   stdout and hands it to the other ranks, babysits the processes
//!   under a hang watchdog, and merges the per-rank result files into a
//!   [`DistOutcome`] plus a world-sized [`MetricsHub`] — the same pair
//!   an in-process run yields.
//! - **Worker** ([`gluon_host_main`], wrapped by the `gluon-host`
//!   binary): bootstraps its endpoint (lead or join), runs the shared
//!   fallible host program, and writes its masters + statistics as a
//!   JSON document. Every `f64` crosses the wire as `f64::to_bits()`,
//!   so pagerank ranks survive the round trip bit-for-bit.
//! - **Supervision**: a worker that dies (crash injection via
//!   `--crash-at-round`, or a real fault) is observed by its peers as a
//!   typed [`NetError::PeerDown`]; they print `GLUON_ERROR …` on stderr
//!   and exit nonzero. The parent then rolls the cluster back to the
//!   newest complete checkpoint epoch (shared on-disk store) and
//!   relaunches, up to `max_recoveries` times — process-level
//!   rollback-restart, mirroring the in-process supervisor.

use crate::driver::{try_dispatch, try_host_program, CkptSetup, DistOutcome, HostResult, Run};
use crate::{Algorithm, EngineKind, PagerankConfig};
use gluon::{CheckpointStore, PhaseStats, RunStats, SyncError, SyncStats};
use gluon_graph::{io as graph_io, max_out_degree_node, Csr, Gid};
use gluon_metrics::json::Json;
use gluon_metrics::{MetricValue, MetricsHub, RoundSample, NUM_ROUND_STAGES, NUM_WIRE_MODES};
use gluon_net::{
    join, CancelToken, NetError, NetStats, Rendezvous, SocketKind, SocketTransport, StatsSnapshot,
    Transport,
};
use gluon_partition::{PartitionStats, Policy};
use gluon_trace::Tracer;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Worker exit code: bootstrap (socket/graph/argument) failure.
const EXIT_BOOTSTRAP: i32 = 2;
/// Worker exit code: a typed peer failure ended the attempt (recoverable
/// by rollback-restart).
const EXIT_PEER_FAILURE: i32 = 3;
/// Worker exit code: a deterministic decode failure (replay reproduces
/// it, so no restart can help).
const EXIT_DECODE: i32 = 4;

/// Configuration of one multi-process run.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of worker processes (one host each).
    pub hosts: usize,
    /// Benchmark to run.
    pub algo: Algorithm,
    /// Partitioning policy.
    pub policy: Policy,
    /// Communication optimization level.
    pub opts: gluon::OptLevel,
    /// Shared-memory compute engine.
    pub engine: EngineKind,
    /// Compute threads per worker.
    pub threads: usize,
    /// Source node for bfs/sssp; defaults to the maximum out-degree node
    /// (computed once by the parent so every attempt agrees).
    pub source: Option<u32>,
    /// Socket family the mesh uses.
    pub kind: SocketKind,
    /// Checkpoint every this many sync rounds (enables recovery).
    pub ckpt_every: Option<u64>,
    /// Process-level rollback-restarts allowed after worker failures.
    pub max_recoveries: u32,
    /// Fault injection: abort worker `rank` abruptly (no socket
    /// teardown) when it reaches sync round `round` of the first
    /// attempt.
    pub crash: Option<(usize, u64)>,
    /// Path of the `gluon-host` worker binary. When `None`, the
    /// `GLUON_HOST_BIN` environment variable is consulted, then a
    /// `gluon-host` sibling of the current executable.
    pub host_bin: Option<PathBuf>,
    /// Watchdog: kill the cluster and fail if an attempt runs longer
    /// than this.
    pub timeout: Duration,
}

impl ClusterSpec {
    /// A spec with the in-process defaults: CVC, OSTI, Galois, one
    /// thread, TCP loopback, no checkpoints, no recoveries, 120 s
    /// watchdog.
    pub fn new(hosts: usize, algo: Algorithm) -> ClusterSpec {
        ClusterSpec {
            hosts,
            algo,
            policy: Policy::Cvc,
            opts: gluon::OptLevel::OSTI,
            engine: EngineKind::Galois,
            threads: 1,
            source: None,
            kind: SocketKind::Tcp,
            ckpt_every: None,
            max_recoveries: 0,
            crash: None,
            host_bin: None,
            timeout: Duration::from_secs(120),
        }
    }
}

/// Why [`spawn_local_cluster`] could not produce a result.
#[derive(Debug)]
pub enum LaunchError {
    /// Launcher-side I/O failed (scratch dir, graph save, spawn, result
    /// files).
    Io(std::io::Error),
    /// A worker failed in a way no restart can fix (decode failure, or a
    /// malformed result file).
    Fatal(String),
    /// Every allowed attempt failed; `evidence` holds the workers'
    /// `GLUON_ERROR` lines (typed [`NetError`] displays) per attempt.
    Unrecoverable {
        /// Attempts made.
        attempts: u32,
        /// Collected worker error lines.
        evidence: Vec<String>,
    },
    /// The watchdog killed an attempt that outlived [`ClusterSpec::timeout`].
    Hung {
        /// The configured budget that expired.
        timeout: Duration,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Io(e) => write!(f, "launcher I/O failed: {e}"),
            LaunchError::Fatal(what) => write!(f, "unrecoverable worker failure: {what}"),
            LaunchError::Unrecoverable { attempts, evidence } => write!(
                f,
                "gave up after {attempts} attempt(s): {}",
                evidence.last().map_or("no evidence", |s| s.as_str())
            ),
            LaunchError::Hung { timeout } => {
                write!(f, "cluster hung past the {timeout:?} watchdog; killed")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<std::io::Error> for LaunchError {
    fn from(e: std::io::Error) -> LaunchError {
        LaunchError::Io(e)
    }
}

/// What a successful multi-process run yields.
pub struct ClusterOutcome {
    /// The assembled outcome, shaped exactly like an in-process run's.
    pub outcome: DistOutcome,
    /// A world-sized hub holding every worker's imported metrics; pass it
    /// to [`DistOutcome::report`] like an in-process hub.
    pub hub: MetricsHub,
}

/// One worker's decoded result file.
struct WorkerReport {
    rank: usize,
    masters_int: Vec<(u32, u32)>,
    masters_f64: Vec<(u32, f64)>,
    rounds: u32,
    stats: SyncStats,
    algo_secs: f64,
    partition_secs: f64,
    num_proxies: u64,
    num_local_edges: u64,
    global_nodes: u32,
    global_edges: u64,
    net_bytes: Vec<u64>,
    net_messages: Vec<u64>,
    net_scalars: [u64; 5],
    registry: Vec<(String, MetricValue)>,
    series: Vec<RoundSample>,
    peers: Vec<(u64, u64)>,
}

fn unique_scratch_dir() -> std::io::Result<PathBuf> {
    static UNIQUE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gluon-run-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

fn resolve_host_bin(spec: &ClusterSpec) -> Result<PathBuf, LaunchError> {
    if let Some(p) = &spec.host_bin {
        return Ok(p.clone());
    }
    if let Ok(p) = std::env::var("GLUON_HOST_BIN") {
        return Ok(PathBuf::from(p));
    }
    let me = std::env::current_exe()?;
    let sibling = me.with_file_name("gluon-host");
    if sibling.exists() {
        return Ok(sibling);
    }
    Err(LaunchError::Fatal(
        "cannot locate the gluon-host worker binary: set ClusterSpec::host_bin or GLUON_HOST_BIN"
            .to_string(),
    ))
}

/// Runs `spec` as `spec.hosts` separate worker processes on localhost and
/// merges their results. See the module docs for the full protocol.
///
/// # Errors
///
/// [`LaunchError`] on launcher I/O failure, unrecoverable worker
/// failure, exhausted recovery attempts, or a watchdog kill.
///
/// # Panics
///
/// Panics if `spec.hosts` is zero.
pub fn spawn_local_cluster(graph: &Csr, spec: &ClusterSpec) -> Result<ClusterOutcome, LaunchError> {
    assert!(spec.hosts > 0, "cluster needs at least one host");
    let host_bin = resolve_host_bin(spec)?;
    let scratch = unique_scratch_dir()?;
    let result = spawn_in_scratch(graph, spec, &host_bin, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn spawn_in_scratch(
    graph: &Csr,
    spec: &ClusterSpec,
    host_bin: &Path,
    scratch: &Path,
) -> Result<ClusterOutcome, LaunchError> {
    let graph_path = scratch.join("graph.bin");
    graph_io::save(graph, &graph_path)?;
    let ckpt_dir = scratch.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir)?;
    let source = spec.source.unwrap_or_else(|| max_out_degree_node(graph).0);
    let attempts_allowed = spec.max_recoveries.saturating_add(1);
    let mut evidence = Vec::new();
    for attempt in 0..attempts_allowed {
        // Coordinated rollback, exactly like the in-process supervisor:
        // restore the newest epoch every host completed.
        let restore = if attempt == 0 {
            None
        } else {
            CheckpointStore::on_disk(&ckpt_dir)
                .ok()
                .and_then(|s| s.latest_complete_epoch(spec.hosts))
        };
        match run_attempt(
            spec,
            host_bin,
            scratch,
            &graph_path,
            &ckpt_dir,
            source,
            attempt,
            restore,
        )? {
            AttemptOutcome::Done(reports) => {
                let (outcome, hub) =
                    merge_reports(graph.num_nodes() as usize, spec, reports, attempt)?;
                return Ok(ClusterOutcome { outcome, hub });
            }
            AttemptOutcome::Failed(mut lines) => evidence.append(&mut lines),
            AttemptOutcome::Fatal(what) => return Err(LaunchError::Fatal(what)),
            AttemptOutcome::Hung => {
                return Err(LaunchError::Hung {
                    timeout: spec.timeout,
                })
            }
        }
    }
    Err(LaunchError::Unrecoverable {
        attempts: attempts_allowed,
        evidence,
    })
}

enum AttemptOutcome {
    Done(Vec<WorkerReport>),
    Failed(Vec<String>),
    Fatal(String),
    Hung,
}

#[allow(clippy::too_many_arguments)] // private launcher plumbing
fn run_attempt(
    spec: &ClusterSpec,
    host_bin: &Path,
    scratch: &Path,
    graph_path: &Path,
    ckpt_dir: &Path,
    source: u32,
    attempt: u32,
    restore: Option<u64>,
) -> Result<AttemptOutcome, LaunchError> {
    let base_args = |rank: usize| -> Vec<String> {
        let mut a = vec![
            "--rank".into(),
            rank.to_string(),
            "--world".into(),
            spec.hosts.to_string(),
            "--graph".into(),
            graph_path.display().to_string(),
            "--algo".into(),
            spec.algo.name().into(),
            "--policy".into(),
            spec.policy.name().into(),
            "--opts".into(),
            spec.opts.to_string(),
            "--engine".into(),
            engine_name(spec.engine).into(),
            "--threads".into(),
            spec.threads.to_string(),
            "--source".into(),
            source.to_string(),
            "--out".into(),
            scratch
                .join(format!("out-{rank}.json"))
                .display()
                .to_string(),
            "--ckpt-dir".into(),
            ckpt_dir.display().to_string(),
        ];
        if let Some(every) = spec.ckpt_every {
            a.push("--ckpt-every".into());
            a.push(every.to_string());
        }
        if let Some(epoch) = restore {
            a.push("--restore-epoch".into());
            a.push(epoch.to_string());
        }
        // Crash injection arms only on the first attempt; the relaunch
        // must be able to finish.
        if attempt == 0 {
            if let Some((victim, round)) = spec.crash {
                if victim == rank {
                    a.push("--crash-at-round".into());
                    a.push(round.to_string());
                }
            }
        }
        a
    };
    let spawn = |rank: usize, extra: &[String]| -> std::io::Result<Child> {
        Command::new(host_bin)
            .args(base_args(rank))
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
    };
    let listen = match spec.kind {
        SocketKind::Tcp => "tcp".to_string(),
        SocketKind::Unix => "unix".to_string(),
    };
    let mut leader = spawn(0, &["--listen".into(), listen])?;
    // The worker prints its advertised rendezvous address before blocking
    // in `lead`, so this read completes as soon as rank 0 has bound — or
    // hits EOF if it died during bootstrap.
    let mut leader_stdout = BufReader::new(leader.stdout.take().expect("leader stdout piped"));
    let mut line = String::new();
    leader_stdout.read_line(&mut line)?;
    let advertised = match line.trim().strip_prefix("GLUON_RENDEZVOUS ") {
        Some(url) => url.to_string(),
        None => {
            // Bootstrap failure: reap the leader and report its stderr.
            let _ = leader.kill();
            let out = leader.wait_with_output()?;
            return Ok(AttemptOutcome::Fatal(format!(
                "rank 0 never advertised a rendezvous: {}",
                String::from_utf8_lossy(&out.stderr).trim()
            )));
        }
    };
    let mut children = vec![leader];
    for rank in 1..spec.hosts {
        children.push(spawn(rank, &["--rendezvous".into(), advertised.clone()])?);
    }
    // Watchdog: poll for exits; a worker that hangs past the budget gets
    // the whole cluster killed. Peer death propagates through socket EOF,
    // so surviving workers exit on their own within the poll cadence.
    let deadline = Instant::now() + spec.timeout;
    let mut statuses: Vec<Option<ExitStatus>> = vec![None; spec.hosts];
    while statuses.iter().any(|s| s.is_none()) {
        for (rank, child) in children.iter_mut().enumerate() {
            if statuses[rank].is_none() {
                statuses[rank] = child.try_wait()?;
            }
        }
        if statuses.iter().any(|s| s.is_none()) {
            if Instant::now() >= deadline {
                for child in children.iter_mut() {
                    let _ = child.kill();
                }
                for child in children.iter_mut() {
                    let _ = child.wait();
                }
                return Ok(AttemptOutcome::Hung);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let mut failures = Vec::new();
    let mut fatal = false;
    for (rank, child) in children.iter_mut().enumerate() {
        let status = statuses[rank].expect("all reaped");
        if status.success() {
            continue;
        }
        let mut err = String::new();
        if let Some(stderr) = child.stderr.as_mut() {
            let _ = stderr.read_to_string(&mut err);
        }
        let typed: Vec<&str> = err
            .lines()
            .filter(|l| l.starts_with("GLUON_ERROR"))
            .collect();
        let line = if typed.is_empty() {
            format!(
                "rank {rank} exited {status} with no typed error: {}",
                err.trim()
            )
        } else {
            typed.join("; ")
        };
        if status.code() == Some(EXIT_DECODE) {
            fatal = true;
        }
        failures.push(line);
    }
    if fatal {
        return Ok(AttemptOutcome::Fatal(failures.join("; ")));
    }
    if !failures.is_empty() {
        return Ok(AttemptOutcome::Failed(failures));
    }
    let mut reports = Vec::with_capacity(spec.hosts);
    for rank in 0..spec.hosts {
        let path = scratch.join(format!("out-{rank}.json"));
        let text = std::fs::read_to_string(&path)?;
        let report = decode_report(&text)
            .map_err(|e| LaunchError::Fatal(format!("rank {rank} result file: {e}")))?;
        if report.rank != rank {
            return Err(LaunchError::Fatal(format!(
                "result file {} claims rank {}",
                path.display(),
                report.rank
            )));
        }
        reports.push(report);
    }
    Ok(AttemptOutcome::Done(reports))
}

/// Stitches per-rank reports into the outcome + hub pair an in-process
/// run produces, so downstream reporting is backend-agnostic.
fn merge_reports(
    n: usize,
    spec: &ClusterSpec,
    reports: Vec<WorkerReport>,
    attempt: u32,
) -> Result<(DistOutcome, MetricsHub), LaunchError> {
    let world = spec.hosts;
    let mut int_labels = Vec::new();
    if reports.iter().any(|r| !r.masters_int.is_empty()) {
        int_labels = vec![u32::MAX; n];
        for r in &reports {
            for &(gid, v) in &r.masters_int {
                int_labels[gid as usize] = v;
            }
        }
    }
    let mut ranks = Vec::new();
    if reports.iter().any(|r| !r.masters_f64.is_empty()) {
        ranks = vec![0.0; n];
        for r in &reports {
            for &(gid, v) in &r.masters_f64 {
                ranks[gid as usize] = v;
            }
        }
    }
    let host_stats: Vec<SyncStats> = reports.iter().map(|r| r.stats.clone()).collect();
    let proxies: Vec<u64> = reports.iter().map(|r| r.num_proxies).collect();
    let edges: Vec<u64> = reports.iter().map(|r| r.num_local_edges).collect();
    // Each worker's traffic matrix has only its own row populated (sends
    // are recorded at the source), so an elementwise sum merges them.
    let mut bytes = vec![0u64; world * world];
    let mut messages = vec![0u64; world * world];
    let mut scalars = [0u64; 5];
    for r in &reports {
        if r.net_bytes.len() != world * world || r.net_messages.len() != world * world {
            return Err(LaunchError::Fatal(format!(
                "rank {} shipped a traffic matrix sized for a different world",
                r.rank
            )));
        }
        for (acc, v) in bytes.iter_mut().zip(&r.net_bytes) {
            *acc += v;
        }
        for (acc, v) in messages.iter_mut().zip(&r.net_messages) {
            *acc += v;
        }
        for (acc, v) in scalars.iter_mut().zip(&r.net_scalars) {
            *acc += v;
        }
    }
    let hub = MetricsHub::new(world);
    for r in &reports {
        let registry = hub.host_registry(r.rank);
        for (name, value) in &r.registry {
            registry.import(name, value);
        }
        let host = hub.host(r.rank);
        for sample in &r.series {
            host.series().push(*sample);
        }
        for (peer, &(send_ns, recv_wait_ns)) in r.peers.iter().enumerate() {
            host.peers().add_send_ns(peer, send_ns);
            host.peers().add_recv_wait_ns(peer, recv_wait_ns);
        }
    }
    let outcome = DistOutcome {
        int_labels,
        ranks,
        rounds: reports.iter().map(|r| r.rounds).max().unwrap_or(0),
        run: RunStats::aggregate(&host_stats),
        host_stats,
        algo_secs: reports.iter().map(|r| r.algo_secs).fold(0.0, f64::max),
        partition_secs: reports.iter().map(|r| r.partition_secs).fold(0.0, f64::max),
        partition: PartitionStats::from_scalars(
            reports[0].global_nodes,
            reports[0].global_edges,
            &proxies,
            &edges,
        ),
        net: StatsSnapshot {
            bytes,
            messages,
            world_size: world,
            retransmit_bytes: scalars[0],
            retransmit_messages: scalars[1],
            dup_suppressed: scalars[2],
            corruption_detected: scalars[3],
            decode_errors: scalars[4],
        },
        recoveries: attempt,
        degraded: false,
    };
    Ok((outcome, hub))
}

fn engine_name(engine: EngineKind) -> &'static str {
    match engine {
        EngineKind::Ligra => "ligra",
        EngineKind::Galois => "galois",
        EngineKind::Irgl => "irgl",
    }
}

fn parse_engine(s: &str) -> Option<EngineKind> {
    match s {
        "ligra" => Some(EngineKind::Ligra),
        "galois" => Some(EngineKind::Galois),
        "irgl" => Some(EngineKind::Irgl),
        _ => None,
    }
}

fn parse_algo(s: &str) -> Option<Algorithm> {
    Algorithm::ALL.into_iter().find(|a| a.name() == s)
}

// ---------------------------------------------------------------------------
// Worker result codec
// ---------------------------------------------------------------------------
//
// No serialization framework is vendored, but `gluon_metrics::json::Json`
// parses and renders losslessly, so the result file is a JSON document in
// which every f64 travels as its `to_bits()` u64 — the parent reassembles
// pagerank ranks and timings bit-for-bit.

fn jbits(v: f64) -> Json {
    Json::from(v.to_bits())
}

fn ju64s(vs: impl IntoIterator<Item = u64>) -> Json {
    Json::Arr(vs.into_iter().map(Json::from).collect())
}

fn encode_report(
    rank: usize,
    world: usize,
    hr: &HostResult,
    stats: &NetStats,
    hub: &MetricsHub,
) -> Json {
    let snap = stats.snapshot();
    let registry = Json::Arr(
        hub.host_registry(rank)
            .snapshot()
            .into_iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(c) => ("c", Json::from(c)),
                    MetricValue::Gauge(g) => ("g", Json::from(g)),
                    MetricValue::Histogram {
                        buckets,
                        count,
                        sum,
                    } => (
                        "h",
                        Json::obj([
                            ("b", ju64s(buckets)),
                            ("c", Json::from(count)),
                            ("s", Json::from(sum)),
                        ]),
                    ),
                };
                Json::obj([("n", Json::from(name)), v])
            })
            .collect(),
    );
    let host = hub.host(rank);
    let series = Json::Arr(
        host.series()
            .rows()
            .into_iter()
            .map(|s| {
                let mut row = vec![s.round];
                row.extend(s.stage_ns);
                row.extend(s.mode_bytes);
                row.extend([
                    s.bytes_sent,
                    s.messages_sent,
                    s.retransmits,
                    s.pool_hits,
                    s.pool_misses,
                    s.recv_wait_ns,
                ]);
                ju64s(row)
            })
            .collect(),
    );
    let peers = Json::Arr(
        (0..world)
            .map(|p| ju64s([host.peers().send_ns(p), host.peers().recv_wait_ns(p)]))
            .collect(),
    );
    Json::obj([
        ("rank", Json::from(rank)),
        ("world", Json::from(world)),
        ("rounds", Json::from(hr.rounds)),
        ("algo_secs_bits", jbits(hr.algo_secs)),
        ("partition_secs_bits", jbits(hr.partition_secs)),
        (
            "masters_int",
            Json::Arr(
                hr.masters_int
                    .iter()
                    .map(|&(g, v)| ju64s([u64::from(g), u64::from(v)]))
                    .collect(),
            ),
        ),
        (
            "masters_f64",
            Json::Arr(
                hr.masters_f64
                    .iter()
                    .map(|&(g, v)| ju64s([u64::from(g), v.to_bits()]))
                    .collect(),
            ),
        ),
        (
            "stats",
            Json::obj([
                (
                    "phases",
                    Json::Arr(
                        hr.stats
                            .phases
                            .iter()
                            .map(|p| {
                                ju64s([
                                    p.compute_secs.to_bits(),
                                    p.comm_secs.to_bits(),
                                    p.bytes_sent,
                                    p.messages_sent,
                                    p.work_units,
                                    p.crit_work_units,
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("memo_secs_bits", jbits(hr.stats.memo_secs)),
                ("memo_bytes", Json::from(hr.stats.memo_bytes)),
                ("decode_errors", Json::from(hr.stats.decode_errors)),
                (
                    "steady_state_allocs",
                    Json::from(hr.stats.steady_state_allocs),
                ),
            ]),
        ),
        (
            "partition",
            Json::obj([
                (
                    "num_proxies",
                    Json::from(u64::from(hr.partition.num_proxies())),
                ),
                (
                    "num_local_edges",
                    Json::from(hr.partition.num_local_edges()),
                ),
                ("global_nodes", Json::from(hr.partition.global_nodes())),
                ("global_edges", Json::from(hr.partition.global_edges())),
            ]),
        ),
        (
            "net",
            Json::obj([
                ("bytes", ju64s(snap.bytes)),
                ("messages", ju64s(snap.messages)),
                (
                    "scalars",
                    ju64s([
                        snap.retransmit_bytes,
                        snap.retransmit_messages,
                        snap.dup_suppressed,
                        snap.corruption_detected,
                        snap.decode_errors,
                    ]),
                ),
            ]),
        ),
        ("registry", registry),
        ("series", series),
        ("peers", peers),
    ])
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field {key}"))
}

fn as_u64(j: &Json, key: &str) -> Result<u64, String> {
    field(j, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key} is not an integer"))
}

fn u64_items(j: &Json, what: &str) -> Result<Vec<u64>, String> {
    j.items()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("{what} holds a non-integer"))
        })
        .collect()
}

fn pairs(j: &Json, what: &str) -> Result<Vec<(u64, u64)>, String> {
    j.items()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|row| {
            let row = u64_items(row, what)?;
            if row.len() != 2 {
                return Err(format!("{what} row is not a pair"));
            }
            Ok((row[0], row[1]))
        })
        .collect()
}

fn decode_report(text: &str) -> Result<WorkerReport, String> {
    let j = Json::parse(text).map_err(|e| format!("unparsable JSON: {e:?}"))?;
    let rank = as_u64(&j, "rank")? as usize;
    let world = as_u64(&j, "world")? as usize;
    let masters_int = pairs(field(&j, "masters_int")?, "masters_int")?
        .into_iter()
        .map(|(g, v)| (g as u32, v as u32))
        .collect();
    let masters_f64 = pairs(field(&j, "masters_f64")?, "masters_f64")?
        .into_iter()
        .map(|(g, bits)| (g as u32, f64::from_bits(bits)))
        .collect();
    let stats_j = field(&j, "stats")?;
    let phases = field(stats_j, "phases")?
        .items()
        .ok_or("stats.phases is not an array")?
        .iter()
        .map(|row| {
            let row = u64_items(row, "stats.phases")?;
            if row.len() != 6 {
                return Err("stats.phases row is not 6-wide".to_string());
            }
            Ok(PhaseStats {
                compute_secs: f64::from_bits(row[0]),
                comm_secs: f64::from_bits(row[1]),
                bytes_sent: row[2],
                messages_sent: row[3],
                work_units: row[4],
                crit_work_units: row[5],
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let stats = SyncStats {
        phases,
        memo_secs: f64::from_bits(as_u64(stats_j, "memo_secs_bits")?),
        memo_bytes: as_u64(stats_j, "memo_bytes")?,
        decode_errors: as_u64(stats_j, "decode_errors")?,
        steady_state_allocs: as_u64(stats_j, "steady_state_allocs")?,
    };
    let part = field(&j, "partition")?;
    let net = field(&j, "net")?;
    let net_scalars_v = u64_items(field(net, "scalars")?, "net.scalars")?;
    let net_scalars: [u64; 5] = net_scalars_v
        .try_into()
        .map_err(|_| "net.scalars is not 5-wide".to_string())?;
    let registry = field(&j, "registry")?
        .items()
        .ok_or("registry is not an array")?
        .iter()
        .map(|entry| {
            let name = field(entry, "n")?
                .as_str()
                .ok_or("registry entry without a name")?
                .to_string();
            let value = if let Some(c) = entry.get("c") {
                MetricValue::Counter(c.as_u64().ok_or("bad counter")?)
            } else if let Some(g) = entry.get("g") {
                MetricValue::Gauge(g.as_u64().ok_or("bad gauge")?)
            } else if let Some(h) = entry.get("h") {
                MetricValue::Histogram {
                    buckets: u64_items(field(h, "b")?, "histogram buckets")?,
                    count: as_u64(h, "c")?,
                    sum: as_u64(h, "s")?,
                }
            } else {
                return Err(format!("registry entry {name} has no value"));
            };
            Ok((name, value))
        })
        .collect::<Result<Vec<_>, String>>()?;
    const SERIES_WIDTH: usize = 1 + NUM_ROUND_STAGES + NUM_WIRE_MODES + 6;
    let series = field(&j, "series")?
        .items()
        .ok_or("series is not an array")?
        .iter()
        .map(|row| {
            let row = u64_items(row, "series")?;
            if row.len() != SERIES_WIDTH {
                return Err("series row has the wrong width".to_string());
            }
            let mut s = RoundSample {
                round: row[0],
                ..RoundSample::default()
            };
            s.stage_ns.copy_from_slice(&row[1..1 + NUM_ROUND_STAGES]);
            let modes = 1 + NUM_ROUND_STAGES;
            s.mode_bytes
                .copy_from_slice(&row[modes..modes + NUM_WIRE_MODES]);
            let tail = modes + NUM_WIRE_MODES;
            s.bytes_sent = row[tail];
            s.messages_sent = row[tail + 1];
            s.retransmits = row[tail + 2];
            s.pool_hits = row[tail + 3];
            s.pool_misses = row[tail + 4];
            s.recv_wait_ns = row[tail + 5];
            Ok(s)
        })
        .collect::<Result<Vec<_>, String>>()?;
    let peers = pairs(field(&j, "peers")?, "peers")?;
    if peers.len() != world {
        return Err("peers table is not world-sized".to_string());
    }
    Ok(WorkerReport {
        rank,
        masters_int,
        masters_f64,
        rounds: as_u64(&j, "rounds")? as u32,
        stats,
        algo_secs: f64::from_bits(as_u64(&j, "algo_secs_bits")?),
        partition_secs: f64::from_bits(as_u64(&j, "partition_secs_bits")?),
        num_proxies: as_u64(part, "num_proxies")?,
        num_local_edges: as_u64(part, "num_local_edges")?,
        global_nodes: as_u64(part, "global_nodes")? as u32,
        global_edges: as_u64(part, "global_edges")?,
        net_bytes: u64_items(field(net, "bytes")?, "net.bytes")?,
        net_messages: u64_items(field(net, "messages")?, "net.messages")?,
        net_scalars,
        registry,
        series,
        peers,
    })
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

/// A transport wrapper that simulates a host dying abruptly: when the
/// application ticks into sync round `at`, the process aborts — no Drop
/// runs, no socket teardown, no farewell frame. Peers learn of the death
/// exactly the way they would learn of a real crash: the kernel closes
/// the sockets and their next receive latches [`NetError::PeerDown`].
struct CrashAt<T> {
    inner: T,
    at: Option<u64>,
}

impl<T: Transport> Transport for CrashAt<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn try_send(&self, dst: usize, tag: u32, payload: bytes::Bytes) -> Result<(), NetError> {
        self.inner.try_send(dst, tag, payload)
    }
    fn try_recv(&self, src: usize, tag: u32) -> Result<bytes::Bytes, NetError> {
        self.inner.try_recv(src, tag)
    }
    fn try_recv_any(&self, tag: u32) -> Result<gluon_net::Envelope, NetError> {
        self.inner.try_recv_any(tag)
    }
    fn try_recv_any_timeout(
        &self,
        tag: u32,
        timeout: Duration,
    ) -> Result<gluon_net::Envelope, NetError> {
        self.inner.try_recv_any_timeout(tag, timeout)
    }
    fn note_round(&self, round: u64) {
        if let Some(at) = self.at {
            if round >= at {
                eprintln!(
                    "GLUON_CRASH rank {} aborting abruptly at round {round}",
                    self.inner.rank()
                );
                std::process::abort();
            }
        }
        self.inner.note_round(round);
    }
    fn cancelled(&self) -> Option<NetError> {
        self.inner.cancelled()
    }
    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }
}

struct WorkerArgs {
    rank: usize,
    world: usize,
    graph: PathBuf,
    algo: Algorithm,
    policy: Policy,
    opts: gluon::OptLevel,
    engine: EngineKind,
    threads: usize,
    source: u32,
    listen: Option<String>,
    rendezvous: Option<String>,
    out: PathBuf,
    ckpt_dir: Option<PathBuf>,
    ckpt_every: Option<u64>,
    restore_epoch: Option<u64>,
    crash_at: Option<u64>,
}

fn parse_worker_args(args: &[String]) -> Result<WorkerArgs, String> {
    let mut map: HashMap<&str, &str> = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} is missing its value"))?;
        map.insert(flag.as_str(), value.as_str());
    }
    let req = |k: &str| -> Result<&str, String> {
        map.get(k).copied().ok_or_else(|| format!("missing {k}"))
    };
    let parse_num =
        |k: &str| -> Result<u64, String> { req(k)?.parse().map_err(|_| format!("bad {k}")) };
    let opt_num = |k: &str| -> Result<Option<u64>, String> {
        map.get(k)
            .map(|v| v.parse().map_err(|_| format!("bad {k}")))
            .transpose()
    };
    Ok(WorkerArgs {
        rank: parse_num("--rank")? as usize,
        world: parse_num("--world")? as usize,
        graph: PathBuf::from(req("--graph")?),
        algo: parse_algo(req("--algo")?).ok_or("unknown --algo")?,
        policy: req("--policy")?.parse().map_err(|_| "unknown --policy")?,
        opts: req("--opts")?.parse().map_err(|_| "unknown --opts")?,
        engine: parse_engine(req("--engine")?).ok_or("unknown --engine")?,
        threads: parse_num("--threads")? as usize,
        source: parse_num("--source")? as u32,
        listen: map.get("--listen").map(|s| s.to_string()),
        rendezvous: map.get("--rendezvous").map(|s| s.to_string()),
        out: PathBuf::from(req("--out")?),
        ckpt_dir: map.get("--ckpt-dir").map(PathBuf::from),
        ckpt_every: opt_num("--ckpt-every")?,
        restore_epoch: opt_num("--restore-epoch")?,
        crash_at: opt_num("--crash-at-round")?,
    })
}

fn worker_fail(rank: usize, what: impl std::fmt::Display, code: i32) -> i32 {
    eprintln!("GLUON_ERROR rank {rank}: {what}");
    code
}

/// The `gluon-host` worker entry point: parses the argument list, runs
/// one host of the cluster (or the `smoke` self-test), and returns the
/// process exit code. Kept in the library so integration tests and the
/// thin `src/bin/gluon-host.rs` shim share it.
pub fn gluon_host_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        return run_smoke();
    }
    let args = match parse_worker_args(&args) {
        Ok(a) => a,
        Err(e) => return worker_fail(0, format!("bad arguments: {e}"), EXIT_BOOTSTRAP),
    };
    let rank = args.rank;
    let stats = NetStats::new(args.world);
    let transport = if rank == 0 {
        let rv = match args.listen.as_deref() {
            Some("tcp") => Rendezvous::bind_tcp("127.0.0.1:0"),
            Some("unix") => {
                let dir = args.out.parent().unwrap_or(Path::new("."));
                Rendezvous::bind_unix(&dir.join("rv.sock"))
            }
            other => {
                return worker_fail(
                    rank,
                    format!("rank 0 needs --listen tcp|unix, got {other:?}"),
                    EXIT_BOOTSTRAP,
                )
            }
        };
        let rv = match rv {
            Ok(rv) => rv,
            Err(e) => return worker_fail(rank, format!("bind failed: {e}"), EXIT_BOOTSTRAP),
        };
        println!("GLUON_RENDEZVOUS {}", rv.advertised());
        let _ = std::io::stdout().flush();
        rv.lead(args.world, stats.clone())
    } else {
        let Some(advertised) = args.rendezvous.as_deref() else {
            return worker_fail(rank, "workers need --rendezvous", EXIT_BOOTSTRAP);
        };
        join(advertised, rank, args.world, stats.clone())
    };
    let transport: SocketTransport = match transport {
        Ok(t) => t,
        Err(e) => return worker_fail(rank, format!("bootstrap failed: {e}"), EXIT_BOOTSTRAP),
    };
    let transport = CrashAt {
        inner: transport,
        at: args.crash_at,
    };
    run_worker(&args, transport, stats)
}

fn run_worker(args: &WorkerArgs, transport: CrashAt<SocketTransport>, stats: NetStats) -> i32 {
    let rank = args.rank;
    let graph = match graph_io::load(&args.graph) {
        Ok(g) => g,
        Err(e) => return worker_fail(rank, format!("cannot load graph: {e}"), EXIT_BOOTSTRAP),
    };
    let symmetric;
    let input: &Csr = if args.algo == Algorithm::Cc {
        symmetric = crate::reference::symmetrize(&graph);
        &symmetric
    } else {
        &graph
    };
    let needs_transpose = args.algo == Algorithm::Pagerank || args.engine == EngineKind::Ligra;
    let store = match &args.ckpt_dir {
        Some(dir) => match CheckpointStore::on_disk(dir) {
            Ok(s) => s,
            Err(e) => return worker_fail(rank, format!("checkpoint store: {e}"), EXIT_BOOTSTRAP),
        },
        None => CheckpointStore::in_memory(),
    };
    let ckpt = CkptSetup {
        store,
        every: args.ckpt_every,
        restore_epoch: args.restore_epoch,
        finalize_only: false,
    };
    let hub = MetricsHub::new(args.world);
    let token = CancelToken::new();
    let tracer = Tracer::disabled();
    let algo = args.algo;
    let engine = args.engine;
    let source = Gid(args.source);
    let pr = PagerankConfig::default();
    let compute = |lg: &gluon_partition::LocalGraph,
                   ctx: &mut gluon::GluonContext<'_, CrashAt<SocketTransport>>| {
        try_dispatch(lg, ctx, algo, engine, source, pr)
    };
    let result = try_host_program(
        &transport,
        &token,
        input,
        args.policy,
        args.opts,
        args.threads,
        true,
        &tracer,
        &hub,
        &|_| needs_transpose,
        &compute,
        &ckpt,
    );
    match result {
        Ok(hr) => {
            // Per-host Prometheus satellite: the wire-mechanics counters
            // surface in this host's registry as `net_socket_*` (the hub
            // prefixes `gluon_` on export). They are fingerprint-dropped,
            // so parity with the memory backend is unaffected.
            let registry = hub.host_registry(rank);
            registry
                .counter("net_socket_connects")
                .add(stats.socket_connects());
            registry
                .counter("net_socket_reconnect_attempts")
                .add(stats.socket_reconnect_attempts());
            registry
                .counter("net_socket_frames_sent")
                .add(stats.socket_frames_sent());
            registry
                .counter("net_socket_frames_received")
                .add(stats.socket_frames_received());
            registry
                .counter("net_socket_short_reads")
                .add(stats.socket_short_reads());
            let doc = encode_report(rank, args.world, &hr, &stats, &hub);
            if let Err(e) = std::fs::write(&args.out, doc.render()) {
                return worker_fail(rank, format!("cannot write result: {e}"), EXIT_BOOTSTRAP);
            }
            0
        }
        Err(e) => {
            let code = match e {
                SyncError::Decode { .. } => EXIT_DECODE,
                SyncError::Net(_) => EXIT_PEER_FAILURE,
            };
            worker_fail(rank, e, code)
        }
    }
}

/// The `gluon-host smoke` self-test: a 2-process TCP bfs on a generated
/// graph, checked label-for-label and fingerprint-for-fingerprint
/// against the in-memory backend. Exercises save/spawn/rendezvous/mesh/
/// merge end to end in a few seconds; `scripts/verify.sh` runs it under
/// a watchdog.
fn run_smoke() -> i32 {
    let graph = gluon_graph::gen::rmat(8, 8, Default::default(), 7);
    let mut spec = ClusterSpec::new(2, Algorithm::Bfs);
    spec.host_bin = std::env::current_exe().ok();
    let memory = Run::new(&graph, Algorithm::Bfs).hosts(2).launch();
    let cluster = match spawn_local_cluster(&graph, &spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smoke FAILED: {e}");
            return 1;
        }
    };
    if cluster.outcome.int_labels != memory.int_labels {
        eprintln!("smoke FAILED: socket labels diverge from the memory backend");
        return 1;
    }
    if cluster.outcome.net.bytes != memory.net.bytes
        || cluster.outcome.net.messages != memory.net.messages
        || cluster.outcome.rounds != memory.rounds
    {
        eprintln!("smoke FAILED: socket payload counters diverge from the memory backend");
        return 1;
    }
    println!(
        "smoke OK: 2-process tcp bfs matches the memory backend ({} rounds, {} payload bytes)",
        cluster.outcome.rounds,
        cluster.outcome.comm_bytes()
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_codec_round_trips_bit_for_bit() {
        // Build a small real HostResult by running one host in-process.
        let graph = gluon_graph::gen::rmat(6, 4, Default::default(), 5);
        let out = Run::new(&graph, Algorithm::Pagerank).hosts(1).launch();
        // Synthesize a report from the outcome's pieces plus a populated
        // hub, then decode it and compare every field.
        let hub = MetricsHub::new(2);
        hub.host_registry(0).counter("rounds").add(9);
        hub.host_registry(0).histogram("payload").observe(300);
        hub.host(0).series().push(RoundSample {
            round: 3,
            bytes_sent: 77,
            ..RoundSample::default()
        });
        hub.host(0).peers().add_send_ns(1, 1234);
        let stats = NetStats::new(2);
        stats.record_send(0, 1, 7, 100);
        let hr = HostResult {
            masters_int: vec![(1, 2), (3, 4)],
            masters_f64: out
                .ranks
                .iter()
                .copied()
                .enumerate()
                .map(|(i, v)| (i as u32, v))
                .collect(),
            rounds: out.rounds,
            stats: out.host_stats[0].clone(),
            algo_secs: out.algo_secs,
            partition_secs: out.partition_secs,
            partition: gluon_partition::partition_all(&graph, 1, Policy::Oec)
                .pop()
                .expect("one part"),
        };
        let doc = encode_report(0, 2, &hr, &stats, &hub).render();
        let decoded = decode_report(&doc).expect("decodes");
        assert_eq!(decoded.rank, 0);
        assert_eq!(decoded.masters_int, hr.masters_int);
        assert_eq!(decoded.rounds, hr.rounds);
        assert_eq!(decoded.stats, hr.stats);
        assert_eq!(decoded.algo_secs.to_bits(), hr.algo_secs.to_bits());
        for ((_, a), (_, b)) in decoded.masters_f64.iter().zip(&hr.masters_f64) {
            assert_eq!(a.to_bits(), b.to_bits(), "rank bits must survive the wire");
        }
        assert_eq!(decoded.net_bytes[1], 100);
        assert_eq!(decoded.peers, vec![(0, 0), (1234, 0)]);
        assert_eq!(decoded.series.len(), 1);
        assert_eq!(decoded.series[0].bytes_sent, 77);
        let rounds = decoded
            .registry
            .iter()
            .find(|(n, _)| n == "rounds")
            .expect("counter shipped");
        assert_eq!(rounds.1, MetricValue::Counter(9));
    }

    #[test]
    fn worker_args_round_trip() {
        let args: Vec<String> = [
            "--rank",
            "2",
            "--world",
            "4",
            "--graph",
            "/tmp/g.bin",
            "--algo",
            "pr",
            "--policy",
            "cvc",
            "--opts",
            "osti",
            "--engine",
            "galois",
            "--threads",
            "2",
            "--source",
            "5",
            "--out",
            "/tmp/out.json",
            "--rendezvous",
            "tcp://127.0.0.1:9",
            "--ckpt-every",
            "8",
            "--crash-at-round",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let w = parse_worker_args(&args).expect("parses");
        assert_eq!(w.rank, 2);
        assert_eq!(w.world, 4);
        assert_eq!(w.algo, Algorithm::Pagerank);
        assert_eq!(w.policy, Policy::Cvc);
        assert_eq!(w.threads, 2);
        assert_eq!(w.source, 5);
        assert_eq!(w.ckpt_every, Some(8));
        assert_eq!(w.restore_epoch, None);
        assert_eq!(w.crash_at, Some(3));
        assert_eq!(w.rendezvous.as_deref(), Some("tcp://127.0.0.1:9"));
    }
}
