//! A re-implementation of Gemini (Zhu et al., OSDI'16), the baseline system
//! of the Gluon paper's evaluation.
//!
//! See [`system`] for the runtime and the modeling notes on how this
//! baseline preserves the properties the paper measures against: chunked
//! edge-cut-only partitioning, replicated node state, `(global-ID, value)`
//! messages, and adaptive sparse/dense rounds.
//!
//! # Examples
//!
//! ```
//! use gluon_gemini::{run, GeminiAlgo};
//! use gluon_graph::{gen, max_out_degree_node};
//!
//! let g = gen::rmat(6, 4, Default::default(), 3);
//! let out = run(&g, 2, GeminiAlgo::Bfs(max_out_degree_node(&g)));
//! assert_eq!(out.int_labels.len(), g.num_nodes() as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod system;

pub use partition::{replication_factor, GeminiPartition};
pub use system::{run, GeminiAlgo, GeminiOutcome, INFINITY};

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_algos::reference;
    use gluon_graph::{gen, max_out_degree_node};

    #[test]
    fn bfs_matches_oracle() {
        let g = gen::rmat(7, 6, Default::default(), 11);
        let src = max_out_degree_node(&g);
        for hosts in [1, 2, 4] {
            let out = run(&g, hosts, GeminiAlgo::Bfs(src));
            assert_eq!(out.int_labels, reference::bfs(&g, src), "hosts {hosts}");
        }
    }

    #[test]
    fn sssp_matches_oracle() {
        let g = gluon_graph::with_random_weights(&gen::rmat(7, 6, Default::default(), 12), 9, 3);
        let src = max_out_degree_node(&g);
        let out = run(&g, 3, GeminiAlgo::Sssp(src));
        assert_eq!(out.int_labels, reference::sssp(&g, src));
    }

    #[test]
    fn cc_matches_oracle() {
        let g = gen::rmat(7, 4, Default::default(), 13);
        let sym = reference::symmetrize(&g);
        let out = run(&sym, 4, GeminiAlgo::Cc);
        assert_eq!(out.int_labels, reference::cc(&g));
    }

    #[test]
    fn pagerank_matches_oracle() {
        let g = gen::rmat(6, 6, Default::default(), 14);
        let out = run(&g, 3, GeminiAlgo::Pagerank(0.85, 1e-6, 100));
        let (oracle, _) = reference::pagerank(&g, 0.85, 1e-6, 100);
        for (got, want) in out.ranks.iter().zip(&oracle) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn gemini_sends_more_bytes_than_gluon_at_scale() {
        // The core claim of Figure 8b: Gluon's optimizations cut volume
        // versus Gemini on the same workload.
        use gluon_algos::{Algorithm, Run};
        let g = gen::twitter_like(2000, 16, 5);
        let hosts = 8;
        let src = max_out_degree_node(&g);
        let gem = run(&g, hosts, GeminiAlgo::Bfs(src));
        let glu = Run::new(&g, Algorithm::Bfs).hosts(hosts).launch();
        assert!(
            gem.run.total_bytes > glu.run.total_bytes,
            "gemini {} vs gluon {}",
            gem.run.total_bytes,
            glu.run.total_bytes
        );
    }
}
