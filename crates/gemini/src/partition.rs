//! Gemini's chunk-based edge-cut partitioning and dual-direction storage.
//!
//! Gemini (Zhu et al., OSDI'16) supports exactly one partitioning scheme:
//! nodes are split into contiguous chunks balancing edges, every node is
//! owned by one host, and each host stores both the outgoing edges of its
//! owned nodes (for sparse/push rounds) and the incoming edges of its owned
//! nodes (for dense/pull rounds). Node state arrays are replicated across
//! hosts so that edge traversals never miss — the design the Gluon paper
//! criticizes for its growing replication footprint (§5.2).

use gluon_graph::{Csr, Gid, GraphBuilder};
use std::collections::HashSet;
use std::ops::Range;

/// One host's view of a Gemini-partitioned graph.
#[derive(Clone, Debug)]
pub struct GeminiPartition {
    host: usize,
    num_hosts: usize,
    /// Chunk boundaries: host `h` owns `starts[h]..starts[h + 1]`.
    starts: Vec<u32>,
    /// Out-edges of owned nodes (global-id CSR; rows outside the owned
    /// range are empty).
    push_edges: Csr,
    /// In-edges of owned nodes, stored transposed (row = owned destination,
    /// targets = global sources).
    pull_edges: Csr,
    /// Distinct non-owned endpoints touched by local edges — what a
    /// mirror-based implementation would replicate; reported as the
    /// replication statistic.
    remote_refs: u64,
    global_edges: u64,
}

impl GeminiPartition {
    /// Builds host `host`'s partition of `graph` over `num_hosts` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `num_hosts` is zero or `host` out of range.
    pub fn build(graph: &Csr, num_hosts: usize, host: usize) -> GeminiPartition {
        assert!(num_hosts > 0, "need at least one host");
        assert!(host < num_hosts, "host out of range");
        // Chunk the node space balancing out-edges (Gemini's alpha-balanced
        // chunking, simplified to the same heuristic our OEC uses).
        let blocks = gluon_partition::BlockMap::balanced(&graph.out_degrees(), num_hosts);
        let starts: Vec<u32> = (0..=num_hosts)
            .map(|b| {
                if b == num_hosts {
                    graph.num_nodes()
                } else {
                    blocks.range(b).start
                }
            })
            .collect();
        let owned = starts[host]..starts[host + 1];

        let mut push = GraphBuilder::new(graph.num_nodes());
        let mut remote: HashSet<u32> = HashSet::new();
        for v in owned.clone() {
            for e in graph.out_edges(Gid(v)) {
                push.add_edge(Gid(v), e.dst, e.weight);
                if !owned.contains(&e.dst.0) {
                    remote.insert(e.dst.0);
                }
            }
        }
        let mut pull = GraphBuilder::new(graph.num_nodes());
        for (src, e) in graph.edges() {
            if owned.contains(&e.dst.0) {
                pull.add_edge(e.dst, src, e.weight);
                if !owned.contains(&src.0) {
                    remote.insert(src.0);
                }
            }
        }
        GeminiPartition {
            host,
            num_hosts,
            starts,
            push_edges: push.build(),
            pull_edges: pull.build(),
            remote_refs: remote.len() as u64,
            global_edges: graph.num_edges(),
        }
    }

    /// This host's rank.
    pub fn host(&self) -> usize {
        self.host
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    /// |V| of the global graph.
    pub fn num_nodes(&self) -> u32 {
        *self.starts.last().expect("non-empty")
    }

    /// |E| of the global graph.
    pub fn global_edges(&self) -> u64 {
        self.global_edges
    }

    /// The contiguous node range this host owns.
    pub fn owned(&self) -> Range<u32> {
        self.starts[self.host]..self.starts[self.host + 1]
    }

    /// Whether `node` is owned here.
    pub fn owns(&self, node: Gid) -> bool {
        self.owned().contains(&node.0)
    }

    /// Owner of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn owner_of(&self, node: Gid) -> usize {
        assert!(node.0 < self.num_nodes(), "node out of range");
        self.starts.partition_point(|&s| s <= node.0) - 1
    }

    /// Out-edges of owned node `v` (push mode).
    pub fn out_edges(&self, v: Gid) -> impl Iterator<Item = gluon_graph::Edge> + '_ {
        self.push_edges.out_edges(v)
    }

    /// In-edges of owned node `v` as `(source, weight)` (pull mode).
    pub fn in_edges(&self, v: Gid) -> impl Iterator<Item = gluon_graph::Edge> + '_ {
        self.pull_edges.out_edges(v)
    }

    /// Local out-degree of owned node `v`.
    pub fn out_degree(&self, v: Gid) -> u32 {
        self.push_edges.out_degree(v)
    }

    /// Count of distinct remote nodes referenced by local edges — the
    /// mirrors a replica-based implementation materializes.
    pub fn remote_refs(&self) -> u64 {
        self.remote_refs
    }

    /// Number of locally stored edges (push side).
    pub fn num_local_edges(&self) -> u64 {
        self.push_edges.num_edges()
    }

    /// Number of locally stored in-edges of owned nodes (pull side).
    pub fn num_pull_edges(&self) -> u64 {
        self.pull_edges.num_edges()
    }
}

/// Replication factor of a full set of Gemini partitions: average proxies
/// (owned + referenced remotes) per node.
pub fn replication_factor(parts: &[GeminiPartition]) -> f64 {
    assert!(!parts.is_empty(), "no partitions");
    let n = f64::from(parts[0].num_nodes().max(1));
    let total: u64 = parts
        .iter()
        .map(|p| u64::from(p.owned().len() as u32) + p.remote_refs())
        .sum();
    total as f64 / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluon_graph::gen;

    #[test]
    fn chunks_cover_all_nodes_without_overlap() {
        let g = gen::rmat(7, 4, Default::default(), 3);
        let parts: Vec<_> = (0..4).map(|h| GeminiPartition::build(&g, 4, h)).collect();
        let mut owned = vec![false; g.num_nodes() as usize];
        for p in &parts {
            for v in p.owned() {
                assert!(!owned[v as usize], "node {v} owned twice");
                owned[v as usize] = true;
            }
        }
        assert!(owned.iter().all(|&o| o));
    }

    #[test]
    fn push_edges_cover_the_graph_exactly_once() {
        let g = gen::rmat(6, 4, Default::default(), 4);
        let parts: Vec<_> = (0..3).map(|h| GeminiPartition::build(&g, 3, h)).collect();
        let total: u64 = parts.iter().map(|p| p.num_local_edges()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn pull_edges_are_the_transpose_restricted_to_owned() {
        let g = gen::rmat(6, 4, Default::default(), 5);
        let p = GeminiPartition::build(&g, 3, 1);
        for v in p.owned() {
            let mut from_pull: Vec<u32> = p.in_edges(Gid(v)).map(|e| e.dst.0).collect();
            let mut from_graph: Vec<u32> = g
                .edges()
                .filter(|(_, e)| e.dst.0 == v)
                .map(|(s, _)| s.0)
                .collect();
            from_pull.sort_unstable();
            from_graph.sort_unstable();
            assert_eq!(from_pull, from_graph, "node {v}");
        }
    }

    #[test]
    fn owner_matches_owned_ranges() {
        let g = gen::rmat(6, 4, Default::default(), 6);
        let parts: Vec<_> = (0..5).map(|h| GeminiPartition::build(&g, 5, h)).collect();
        for p in &parts {
            for v in g.nodes() {
                let owner = p.owner_of(v);
                assert!(parts[owner].owns(v));
            }
        }
    }

    #[test]
    fn replication_grows_with_hosts_faster_than_cvc() {
        // The §5.2 comparison: Gemini's edge-cut replication exceeds
        // Gluon's CVC replication at scale on skewed graphs.
        let g = gen::twitter_like(3000, 16, 7);
        let hosts = 16;
        let gem: Vec<_> = (0..hosts)
            .map(|h| GeminiPartition::build(&g, hosts, h))
            .collect();
        let gem_rep = replication_factor(&gem);
        let cvc = gluon_partition::PartitionStats::of(&gluon_partition::partition_all(
            &g,
            hosts,
            gluon_partition::Policy::Cvc,
        ))
        .replication_factor;
        assert!(
            gem_rep > cvc,
            "gemini replication {gem_rep:.2} should exceed CVC {cvc:.2}"
        );
    }
}
