//! The Gemini runtime: dual-mode (sparse push / dense pull) rounds over
//! chunked edge-cut partitions, with `(global-ID, value)` messages.
//!
//! This is the baseline the Gluon paper compares against (§5): a monolithic
//! computation-centric system in the style of Zhu et al. (OSDI'16). Its
//! distinguishing properties, all modeled here:
//!
//! * only chunk-based outgoing edge-cut partitioning;
//! * node state replicated across hosts, refreshed by broadcasting owner
//!   updates — replication (and hence communication) grows with the host
//!   count;
//! * every message carries global-IDs alongside values (no memoization);
//! * adaptive sparse/dense mode per round, like shared-memory Ligra.
//!
//! Measurement plumbing ([`gluon::SyncStats`]) is shared with the Gluon
//! systems so the bench harness can aggregate both identically; none of the
//! Gluon *substrate* (sync, memoization, encodings) is used.

use crate::partition::{replication_factor, GeminiPartition};
use bytes::{BufMut, Bytes, BytesMut};
use gluon::{DenseBitset, PhaseStats, RunStats, SyncStats};
use gluon_graph::{Csr, Gid, Lid};
use gluon_net::{run_cluster_with_stats, Communicator, NetStats, Transport};
use std::time::Instant;

/// Unreached distance marker.
pub const INFINITY: u32 = u32::MAX;

/// Fraction of |E| above which a round goes dense (Ligra/Gemini heuristic).
const DENSE_THRESHOLD_DENOM: u64 = 20;

const VALUE_TAG: u32 = 64;

/// What a Gemini run produces (mirrors `gluon_algos::DistOutcome`).
#[derive(Clone, Debug)]
pub struct GeminiOutcome {
    /// Per-node integer labels (bfs/sssp/cc), empty for pagerank.
    pub int_labels: Vec<u32>,
    /// Per-node ranks (pagerank), empty otherwise.
    pub ranks: Vec<f64>,
    /// Rounds (or pagerank iterations) executed.
    pub rounds: u32,
    /// Aggregated statistics (paper methodology).
    pub run: RunStats,
    /// Per-host raw statistics.
    pub host_stats: Vec<SyncStats>,
    /// Max per-host wall-clock of the algorithm (seconds).
    pub algo_secs: f64,
    /// Max per-host wall-clock of partitioning.
    pub partition_secs: f64,
    /// Replication factor of the chunked partitioning.
    pub replication_factor: f64,
}

/// The Gemini benchmark entry points.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum GeminiAlgo {
    /// Breadth-first search from a source.
    Bfs(Gid),
    /// Shortest paths from a source.
    Sssp(Gid),
    /// Connected components (input must be symmetrized by the caller; use
    /// [`run`]'s convenience handling or symmetrize yourself).
    Cc,
    /// Pagerank with `(damping, tolerance, max_iters)`.
    Pagerank(f64, f64, u32),
}

/// Runs `algo` on `graph` over `hosts` simulated hosts.
///
/// cc callers should pass a symmetrized graph (Gemini, like the other
/// label-propagation systems, computes components of the undirected view).
pub fn run(graph: &Csr, hosts: usize, algo: GeminiAlgo) -> GeminiOutcome {
    let (per_host, _net) = run_cluster_with_stats(hosts, NetStats::new(hosts), |ep| {
        let comm = Communicator::new(ep);
        let part_start = Instant::now();
        let part = GeminiPartition::build(graph, hosts, comm.rank());
        comm.barrier();
        let partition_secs = part_start.elapsed().as_secs_f64();
        let algo_start = Instant::now();
        let mut host = GeminiHost::new(&part, &comm);
        let (ints, floats, rounds) = match algo {
            GeminiAlgo::Bfs(src) => {
                let (l, r) = host.minrelax(Init::Source(src), |l, _| l.saturating_add(1));
                (l, Vec::new(), r)
            }
            GeminiAlgo::Sssp(src) => {
                let (l, r) = host.minrelax(Init::Source(src), |l, w| l.saturating_add(w));
                (l, Vec::new(), r)
            }
            GeminiAlgo::Cc => {
                let (l, r) = host.minrelax(Init::OwnGid, |l, _| l);
                (l, Vec::new(), r)
            }
            GeminiAlgo::Pagerank(d, tol, iters) => {
                let (r, n) = host.pagerank(graph, d, tol, iters);
                (Vec::new(), r, n)
            }
        };
        let algo_secs = algo_start.elapsed().as_secs_f64();
        let owned = part.owned();
        let owned_ints: Vec<u32> = if ints.is_empty() {
            Vec::new()
        } else {
            owned.clone().map(|v| ints[v as usize]).collect()
        };
        let owned_floats: Vec<f64> = if floats.is_empty() {
            Vec::new()
        } else {
            owned.clone().map(|v| floats[v as usize]).collect()
        };
        (
            owned.start,
            owned_ints,
            owned_floats,
            rounds,
            host.stats,
            algo_secs,
            partition_secs,
            part,
        )
    });

    let n = graph.num_nodes() as usize;
    let mut int_labels = Vec::new();
    let mut ranks = Vec::new();
    let is_pr = matches!(algo, GeminiAlgo::Pagerank(..));
    if is_pr {
        ranks = vec![0.0; n];
    } else {
        int_labels = vec![INFINITY; n];
    }
    for (start, ints, floats, _, _, _, _, _) in &per_host {
        for (i, &v) in ints.iter().enumerate() {
            int_labels[*start as usize + i] = v;
        }
        for (i, &v) in floats.iter().enumerate() {
            ranks[*start as usize + i] = v;
        }
    }
    let host_stats: Vec<SyncStats> = per_host.iter().map(|h| h.4.clone()).collect();
    let parts: Vec<GeminiPartition> = per_host.iter().map(|h| h.7.clone()).collect();
    GeminiOutcome {
        int_labels,
        ranks,
        rounds: per_host.iter().map(|h| h.3).max().unwrap_or(0),
        run: RunStats::aggregate(&host_stats),
        host_stats,
        algo_secs: per_host.iter().map(|h| h.5).fold(0.0, f64::max),
        partition_secs: per_host.iter().map(|h| h.6).fold(0.0, f64::max),
        replication_factor: replication_factor(&parts),
    }
}

enum Init {
    Source(Gid),
    OwnGid,
}

struct GeminiHost<'a, T: Transport> {
    part: &'a GeminiPartition,
    comm: &'a Communicator<'a, T>,
    stats: SyncStats,
    mark: Instant,
    pending_work: u64,
}

impl<'a, T: Transport> GeminiHost<'a, T> {
    fn new(part: &'a GeminiPartition, comm: &'a Communicator<'a, T>) -> Self {
        GeminiHost {
            part,
            comm,
            stats: SyncStats::default(),
            mark: Instant::now(),
            pending_work: 0,
        }
    }

    fn add_work(&mut self, units: u64) {
        self.pending_work += units;
    }

    fn sent_snapshot(&self) -> (u64, u64) {
        let snap = self.comm.transport().stats().snapshot();
        let rank = self.comm.rank();
        let n = self.comm.world_size();
        (
            (0..n).map(|d| snap.bytes_between(rank, d)).sum(),
            (0..n).map(|d| snap.messages[rank * n + d]).sum(),
        )
    }

    fn phase<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let compute_secs = self.mark.elapsed().as_secs_f64();
        let before = self.sent_snapshot();
        let start = Instant::now();
        let out = f(self);
        let after = self.sent_snapshot();
        self.stats.phases.push(PhaseStats {
            compute_secs,
            comm_secs: start.elapsed().as_secs_f64(),
            bytes_sent: after.0 - before.0,
            messages_sent: after.1 - before.1,
            work_units: self.pending_work,
            crit_work_units: std::mem::take(&mut self.pending_work),
        });
        self.mark = Instant::now();
        out
    }

    /// Monotone min-relaxation with Gemini's dual-mode rounds.
    fn minrelax(&mut self, init: Init, relax: fn(u32, u32) -> u32) -> (Vec<u32>, u32) {
        let part = self.part;
        let n = part.num_nodes();
        let mut labels = match init {
            Init::Source(_) => vec![INFINITY; n as usize],
            Init::OwnGid => (0..n).collect::<Vec<u32>>(),
        };
        let mut active = DenseBitset::new(n);
        match init {
            Init::Source(src) => {
                labels[src.index()] = 0;
                if part.owns(src) {
                    active.set(Lid(src.0));
                }
            }
            Init::OwnGid => {
                for v in part.owned() {
                    active.set(Lid(v));
                }
            }
        }
        // Owned values changed since the last replica refresh.
        let mut dirty = DenseBitset::new(n);
        for v in active.iter() {
            dirty.set(v);
        }
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            // Mode decision needs the global active edge count.
            let local_active_edges: u64 = active
                .iter()
                .map(|v| u64::from(part.out_degree(Gid(v.0))))
                .sum();
            let global_active_edges =
                self.phase(|h| h.comm.all_reduce_u64(local_active_edges, |a, b| a + b));
            let dense = global_active_edges > part.global_edges() / DENSE_THRESHOLD_DENOM;
            let mut changed = DenseBitset::new(n);
            if dense {
                // Work model: a dense pull scans all in-edges of owned nodes.
                self.add_work(self.part.num_pull_edges());
                // Dense round: refresh replicas everywhere, then pull at
                // owned nodes.
                self.phase(|h| {
                    let pairs: Vec<(u32, u32)> =
                        dirty.iter().map(|v| (v.0, labels[v.index()])).collect();
                    dirty.clear_all();
                    let payload = encode_pairs_u32(&pairs);
                    for dst in 0..h.comm.world_size() {
                        if dst != h.comm.rank() {
                            h.comm
                                .transport()
                                .try_send(dst, VALUE_TAG, payload.clone())
                                .unwrap_or_else(|e| panic!("value exchange send: {e}"));
                        }
                    }
                    for src in 0..h.comm.world_size() {
                        if src != h.comm.rank() {
                            let data = h
                                .comm
                                .transport()
                                .try_recv(src, VALUE_TAG)
                                .unwrap_or_else(|e| panic!("value exchange recv: {e}"));
                            decode_pairs_u32(&data, &mut |g, v| {
                                if v < labels[g as usize] {
                                    labels[g as usize] = v;
                                }
                            });
                        }
                    }
                });
                for v in part.owned() {
                    let mut best = labels[v as usize];
                    for e in part.in_edges(Gid(v)) {
                        let candidate = relax(labels[e.dst.index()], e.weight);
                        if candidate < best {
                            best = candidate;
                        }
                    }
                    if best < labels[v as usize] {
                        labels[v as usize] = best;
                        changed.set(Lid(v));
                        dirty.set(Lid(v));
                    }
                }
            } else {
                // Sparse round: push from the active frontier, signal
                // remote owners with (gid, value) pairs.
                self.add_work(local_active_edges);
                let mut touched_remote: Vec<u32> = Vec::new();
                let mut touched = DenseBitset::new(n);
                for v in active.iter() {
                    let lv = labels[v.index()];
                    for e in part.out_edges(Gid(v.0)) {
                        let candidate = relax(lv, e.weight);
                        if candidate < labels[e.dst.index()] {
                            labels[e.dst.index()] = candidate;
                            if part.owns(e.dst) {
                                changed.set(Lid(e.dst.0));
                                dirty.set(Lid(e.dst.0));
                            } else if !touched.test(Lid(e.dst.0)) {
                                touched.set(Lid(e.dst.0));
                                touched_remote.push(e.dst.0);
                            }
                        }
                    }
                }
                self.phase(|h| {
                    let world = h.comm.world_size();
                    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); world];
                    for &g in &touched_remote {
                        buckets[part.owner_of(Gid(g))].push((g, labels[g as usize]));
                    }
                    let outgoing: Vec<Bytes> =
                        buckets.iter().map(|b| encode_pairs_u32(b)).collect();
                    let incoming = h.comm.all_to_all(outgoing);
                    for data in incoming {
                        decode_pairs_u32(&data, &mut |g, v| {
                            if v < labels[g as usize] {
                                labels[g as usize] = v;
                                changed.set(Lid(g));
                                dirty.set(Lid(g));
                            }
                        });
                    }
                });
            }
            active = changed;
            let done = self.phase(|h| !h.comm.any(!active.is_empty()));
            if done {
                return (labels, rounds);
            }
        }
    }

    /// Gemini pagerank: dense pull every iteration, replicas refreshed by
    /// broadcasting changed owned ranks to every host.
    fn pagerank(
        &mut self,
        graph: &Csr,
        damping: f64,
        tolerance: f64,
        max_iters: u32,
    ) -> (Vec<f64>, u32) {
        let part = self.part;
        let n = part.num_nodes();
        let base = (1.0 - damping) / f64::from(n.max(1));
        let out_deg = graph.out_degrees();
        let mut rank = vec![1.0 / f64::from(n.max(1)); n as usize];
        let mut dirty = DenseBitset::new(n);
        for v in part.owned() {
            dirty.set(Lid(v));
        }
        let mut iters = 0u32;
        while iters < max_iters {
            iters += 1;
            // Work model: each iteration scans all in-edges of owned nodes.
            self.add_work(self.part.num_pull_edges());
            // Refresh replicas with the ranks owners changed last round.
            self.phase(|h| {
                let pairs: Vec<(u32, f64)> = dirty.iter().map(|v| (v.0, rank[v.index()])).collect();
                dirty.clear_all();
                let payload = encode_pairs_f64(&pairs);
                for dst in 0..h.comm.world_size() {
                    if dst != h.comm.rank() {
                        h.comm
                            .transport()
                            .try_send(dst, VALUE_TAG, payload.clone())
                            .unwrap_or_else(|e| panic!("value exchange send: {e}"));
                    }
                }
                for src in 0..h.comm.world_size() {
                    if src != h.comm.rank() {
                        let data = h
                            .comm
                            .transport()
                            .try_recv(src, VALUE_TAG)
                            .unwrap_or_else(|e| panic!("value exchange recv: {e}"));
                        decode_pairs_f64(&data, &mut |g, v| rank[g as usize] = v);
                    }
                }
            });
            // BSP Jacobi iteration: all reads see the previous round's
            // ranks, all writes land after the sweep (matching Gemini's
            // bulk-synchronous rounds and the reference oracle).
            let mut local_delta = 0.0f64;
            let owned = part.owned();
            let mut next_ranks = Vec::with_capacity(owned.len());
            for v in owned.clone() {
                let mut sum = 0.0f64;
                for e in part.in_edges(Gid(v)) {
                    sum += rank[e.dst.index()] / f64::from(out_deg[e.dst.index()].max(1));
                }
                next_ranks.push(base + damping * sum);
            }
            for (v, next) in owned.zip(next_ranks) {
                let delta = (next - rank[v as usize]).abs();
                if delta > 0.0 {
                    rank[v as usize] = next;
                    dirty.set(Lid(v));
                }
                local_delta += delta;
            }
            let total = self.phase(|h| h.comm.all_reduce_f64(local_delta, |a, b| a + b));
            if total < tolerance {
                break;
            }
        }
        (rank, iters)
    }
}

fn encode_pairs_u32(pairs: &[(u32, u32)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(pairs.len() * 8);
    for &(g, v) in pairs {
        buf.put_u32_le(g);
        buf.put_u32_le(v);
    }
    buf.freeze()
}

fn decode_pairs_u32(data: &[u8], apply: &mut impl FnMut(u32, u32)) {
    assert_eq!(data.len() % 8, 0, "pair framing");
    for c in data.chunks_exact(8) {
        apply(
            u32::from_le_bytes(c[..4].try_into().expect("gid")),
            u32::from_le_bytes(c[4..].try_into().expect("value")),
        );
    }
}

fn encode_pairs_f64(pairs: &[(u32, f64)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(pairs.len() * 12);
    for &(g, v) in pairs {
        buf.put_u32_le(g);
        buf.put_f64_le(v);
    }
    buf.freeze()
}

fn decode_pairs_f64(data: &[u8], apply: &mut impl FnMut(u32, f64)) {
    assert_eq!(data.len() % 12, 0, "pair framing");
    for c in data.chunks_exact(12) {
        apply(
            u32::from_le_bytes(c[..4].try_into().expect("gid")),
            f64::from_le_bytes(c[4..].try_into().expect("value")),
        );
    }
}
