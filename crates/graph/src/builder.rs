//! Incremental construction of [`Csr`] graphs.

use crate::csr::Csr;
use crate::ids::Gid;

/// Incremental builder for [`Csr`] graphs.
///
/// Collects edges in any order, then sorts them into CSR layout on
/// [`GraphBuilder::build`]. Optionally deduplicates parallel edges (keeping
/// the minimum weight, the natural choice for shortest-path inputs) and drops
/// self loops.
///
/// # Examples
///
/// ```
/// use gluon_graph::{GraphBuilder, Gid};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(Gid(2), Gid(0), 7);
/// b.add_edge(Gid(0), Gid(1), 1);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.out_edges(Gid(2)).next().unwrap().weight, 7);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: Vec<(u32, u32, u32)>,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            dedup: false,
            drop_self_loops: false,
        }
    }

    /// Requests deduplication of parallel edges; the smallest weight wins.
    pub fn dedup(&mut self) -> &mut Self {
        self.dedup = true;
        self
    }

    /// Requests removal of self loops.
    pub fn drop_self_loops(&mut self) -> &mut Self {
        self.drop_self_loops = true;
        self
    }

    /// Adds one directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is `>= num_nodes`.
    pub fn add_edge(&mut self, src: Gid, dst: Gid, weight: u32) -> &mut Self {
        assert!(
            src.0 < self.num_nodes && dst.0 < self.num_nodes,
            "edge ({src}, {dst}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push((src.0, dst.0, weight));
        self
    }

    /// Number of edges currently buffered (before dedup/self-loop filtering).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sorts buffered edges and produces the [`Csr`].
    ///
    /// The result is unweighted exactly when every added edge had weight 1.
    pub fn build(&self) -> Csr {
        let mut edges = self.edges.clone();
        if self.drop_self_loops {
            edges.retain(|&(s, d, _)| s != d);
        }
        edges.sort_unstable();
        if self.dedup {
            edges.dedup_by(|next, kept| {
                // `kept` precedes `next`; identical endpoints keep the
                // smaller weight, which sorts first.
                kept.0 == next.0 && kept.1 == next.1
            });
        }
        let n = self.num_nodes as usize;
        let mut offsets = vec![0u64; n + 1];
        for &(s, _, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let all_unit = edges.iter().all(|&(_, _, w)| w == 1);
        let targets: Vec<u32> = edges.iter().map(|&(_, d, _)| d).collect();
        let weights: Vec<u32> = if all_unit {
            Vec::new()
        } else {
            edges.iter().map(|&(_, _, w)| w).collect()
        };
        Csr::from_parts(offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr_from_unsorted_input() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(Gid(3), Gid(0), 1);
        b.add_edge(Gid(0), Gid(2), 1);
        b.add_edge(Gid(0), Gid(1), 1);
        let g = b.build();
        let n0: Vec<_> = g.out_edges(Gid(0)).map(|e| e.dst.0).collect();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(g.out_degree(Gid(3)), 1);
    }

    #[test]
    fn dedup_keeps_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        b.dedup();
        b.add_edge(Gid(0), Gid(1), 9);
        b.add_edge(Gid(0), Gid(1), 3);
        b.add_edge(Gid(0), Gid(1), 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_edges(Gid(0)).next().unwrap().weight, 3);
    }

    #[test]
    fn drop_self_loops_removes_them() {
        let mut b = GraphBuilder::new(2);
        b.drop_self_loops();
        b.add_edge(Gid(0), Gid(0), 1);
        b.add_edge(Gid(0), Gid(1), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn unit_weights_build_unweighted() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(Gid(0), Gid(1), 1);
        assert!(!b.build().is_weighted());
        b.add_edge(Gid(1), Gid(0), 2);
        assert!(b.build().is_weighted());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        GraphBuilder::new(2).add_edge(Gid(0), Gid(2), 1);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let b = GraphBuilder::new(3);
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
    }
}
