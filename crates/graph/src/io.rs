//! Reading and writing graphs.
//!
//! Two formats are supported:
//!
//! * a plain-text edge list (`src dst [weight]` per line, `#` comments),
//!   interoperable with most graph tooling, and
//! * a little-endian binary CSR container (`GLUO` magic) that loads without
//!   re-sorting — the moral equivalent of the `.gr` files the Galois
//!   ecosystem distributes.

use crate::csr::Csr;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary container.
const MAGIC: [u8; 4] = *b"GLUO";
/// Container format version.
const VERSION: u32 = 1;

/// Error produced while reading a graph.
#[derive(Debug)]
pub enum ReadGraphError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input violates the expected format; the message names the issue
    /// and (for text input) the line number.
    Format(String),
}

impl fmt::Display for ReadGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadGraphError::Io(e) => write!(f, "i/o error reading graph: {e}"),
            ReadGraphError::Format(msg) => write!(f, "malformed graph input: {msg}"),
        }
    }
}

impl Error for ReadGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadGraphError::Io(e) => Some(e),
            ReadGraphError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ReadGraphError {
    fn from(e: io::Error) -> Self {
        ReadGraphError::Io(e)
    }
}

/// Writes `graph` as a text edge list.
///
/// The first non-comment line is `num_nodes num_edges`; every following line
/// is `src dst` or `src dst weight`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_edge_list<W: Write>(graph: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# gluon edge list")?;
    writeln!(w, "{} {}", graph.num_nodes(), graph.num_edges())?;
    for (src, edge) in graph.edges() {
        if graph.is_weighted() {
            writeln!(w, "{} {} {}", src.0, edge.dst.0, edge.weight)?;
        } else {
            writeln!(w, "{} {}", src.0, edge.dst.0)?;
        }
    }
    w.flush()
}

/// Reads a text edge list produced by [`write_edge_list`] (or by hand).
///
/// A mut reference to any `R: BufRead` can be passed as the reader.
///
/// # Errors
///
/// Returns [`ReadGraphError::Format`] with the offending line number if a
/// line cannot be parsed, an endpoint is out of range, or the header is
/// missing; [`ReadGraphError::Io`] on I/O failure.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Csr, ReadGraphError> {
    let mut lines = reader.lines();
    let mut line_no = 0usize;
    let header = loop {
        line_no += 1;
        match lines.next() {
            None => {
                return Err(ReadGraphError::Format("missing header line".into()));
            }
            Some(line) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                break trimmed.to_owned();
            }
        }
    };
    let mut parts = header.split_whitespace();
    let num_nodes: u32 = parse_field(parts.next(), "num_nodes", line_no)?;
    let num_edges: u64 = parse_field(parts.next(), "num_edges", line_no)?;
    let mut builder = crate::GraphBuilder::new(num_nodes);
    for line in lines {
        line_no += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let src: u32 = parse_field(fields.next(), "src", line_no)?;
        let dst: u32 = parse_field(fields.next(), "dst", line_no)?;
        let weight: u32 = match fields.next() {
            Some(tok) => tok.parse().map_err(|_| {
                ReadGraphError::Format(format!("line {line_no}: bad weight {tok:?}"))
            })?,
            None => 1,
        };
        if src >= num_nodes || dst >= num_nodes {
            return Err(ReadGraphError::Format(format!(
                "line {line_no}: edge ({src}, {dst}) out of range for {num_nodes} nodes"
            )));
        }
        builder.add_edge(crate::Gid(src), crate::Gid(dst), weight);
    }
    if builder.len() as u64 != num_edges {
        return Err(ReadGraphError::Format(format!(
            "header promised {num_edges} edges but found {}",
            builder.len()
        )));
    }
    Ok(builder.build())
}

fn parse_field<T: std::str::FromStr>(
    token: Option<&str>,
    name: &str,
    line_no: usize,
) -> Result<T, ReadGraphError> {
    let tok =
        token.ok_or_else(|| ReadGraphError::Format(format!("line {line_no}: missing {name}")))?;
    tok.parse()
        .map_err(|_| ReadGraphError::Format(format!("line {line_no}: bad {name} {tok:?}")))
}

/// Writes `graph` in the binary container format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_binary<W: Write>(graph: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&graph.num_nodes().to_le_bytes())?;
    w.write_all(&graph.num_edges().to_le_bytes())?;
    w.write_all(&u8::from(graph.is_weighted()).to_le_bytes())?;
    for &off in graph.offsets() {
        w.write_all(&off.to_le_bytes())?;
    }
    for &t in graph.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    for &wt in graph.weights() {
        w.write_all(&wt.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a binary container written by [`write_binary`].
///
/// # Errors
///
/// Returns [`ReadGraphError::Format`] on magic/version mismatch or truncated
/// input; [`ReadGraphError::Io`] on I/O failure.
pub fn read_binary<R: Read>(reader: R) -> Result<Csr, ReadGraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ReadGraphError::Format(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(ReadGraphError::Format(format!(
            "unsupported container version {version}"
        )));
    }
    let num_nodes = read_u32(&mut r)?;
    let num_edges = read_u64(&mut r)?;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let weighted = flag[0] != 0;
    let mut offsets = Vec::with_capacity(num_nodes as usize + 1);
    for _ in 0..=num_nodes {
        offsets.push(read_u64(&mut r)?);
    }
    let mut targets = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        targets.push(read_u32(&mut r)?);
    }
    let mut weights = Vec::new();
    if weighted {
        weights.reserve(num_edges as usize);
        for _ in 0..num_edges {
            weights.push(read_u32(&mut r)?);
        }
    }
    if offsets.last().copied() != Some(num_edges) {
        return Err(ReadGraphError::Format(
            "offset table disagrees with edge count".into(),
        ));
    }
    Ok(Csr::from_parts(offsets, targets, weights))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ReadGraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ReadGraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Convenience: writes the binary container to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save<P: AsRef<Path>>(graph: &Csr, path: P) -> io::Result<()> {
    write_binary(graph, std::fs::File::create(path)?)
}

/// Convenience: reads a binary container from `path`.
///
/// # Errors
///
/// See [`read_binary`].
pub fn load<P: AsRef<Path>>(path: P) -> Result<Csr, ReadGraphError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_round_trip_unweighted() {
        let g = gen::rmat(5, 4, crate::RmatProbs::GRAPH500, 21);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(&buf[..]).expect("read");
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_round_trip_weighted() {
        let g = gen::with_random_weights(&gen::grid(4, 5), 9, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(&buf[..]).expect("read");
        assert_eq!(g, back);
    }

    #[test]
    fn binary_round_trip() {
        let g = gen::with_random_weights(&gen::rmat(6, 4, Default::default(), 8), 5, 1);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        let back = read_binary(&buf[..]).expect("read");
        assert_eq!(g, back);
    }

    #[test]
    fn text_reader_skips_comments_and_blank_lines() {
        let text = "# comment\n\n3 2\n0 1\n# middle\n1 2\n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reader_rejects_out_of_range_edge() {
        let err = read_edge_list("2 1\n0 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadGraphError::Format(_)), "{err}");
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn text_reader_rejects_edge_count_mismatch() {
        let err = read_edge_list("2 3\n0 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("promised 3 edges"));
    }

    #[test]
    fn binary_reader_rejects_bad_magic() {
        let err = read_binary(
            &b"NOPE
            "[..],
        )
        .unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn binary_reader_rejects_truncation() {
        let g = gen::path(10);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }
}
