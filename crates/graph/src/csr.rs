//! Compressed-sparse-row graph representation.
//!
//! [`Csr`] is the workhorse in-memory format used everywhere in this
//! workspace: the whole input graph before partitioning, each host's local
//! partition after partitioning, and the transposed (CSC) view used by
//! pull-style operators are all `Csr` values.

use crate::ids::Gid;
use serde::{Deserialize, Serialize};

/// An outgoing edge: destination node and weight.
///
/// Unweighted graphs report weight `1` for every edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Destination node.
    pub dst: Gid,
    /// Edge weight (1 for unweighted graphs).
    pub weight: u32,
}

/// A directed graph in compressed-sparse-row form.
///
/// Nodes are `0..num_nodes()` in the [`Gid`] space; edges of node `v` are
/// stored contiguously and visited with [`Csr::out_edges`]. Weights are
/// optional: unweighted graphs store no weight array and report weight 1.
///
/// # Examples
///
/// ```
/// use gluon_graph::{Csr, Gid};
///
/// // Triangle 0 -> 1 -> 2 -> 0.
/// let g = Csr::from_edge_list(3, &[(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.out_degree(Gid(1)), 1);
/// let targets: Vec<_> = g.out_edges(Gid(2)).map(|e| e.dst).collect();
/// assert_eq!(targets, vec![Gid(0)]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` is the edge range of node `v`.
    offsets: Vec<u64>,
    /// Flattened destination array.
    targets: Vec<u32>,
    /// Parallel weight array; empty means "all weights are 1".
    weights: Vec<u32>,
}

impl Csr {
    /// Creates an empty graph with `num_nodes` nodes and no edges.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = gluon_graph::Csr::empty(5);
    /// assert_eq!(g.num_nodes(), 5);
    /// assert_eq!(g.num_edges(), 0);
    /// ```
    pub fn empty(num_nodes: u32) -> Self {
        Csr {
            offsets: vec![0; num_nodes as usize + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Builds an unweighted graph from `(src, dst)` pairs.
    ///
    /// Edges may be given in any order; parallel edges and self loops are
    /// kept. For weighted construction or deduplication use
    /// [`crate::GraphBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edge_list(num_nodes: u32, edges: &[(u32, u32)]) -> Self {
        let mut builder = crate::GraphBuilder::new(num_nodes);
        for &(src, dst) in edges {
            builder.add_edge(Gid(src), Gid(dst), 1);
        }
        builder.build()
    }

    /// Builds a weighted graph from `(src, dst, weight)` triples.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_weighted_edge_list(num_nodes: u32, edges: &[(u32, u32, u32)]) -> Self {
        let mut builder = crate::GraphBuilder::new(num_nodes);
        for &(src, dst, w) in edges {
            builder.add_edge(Gid(src), Gid(dst), w);
        }
        builder.build()
    }

    /// Assembles a graph directly from its parts.
    ///
    /// `weights` may be empty (all weights 1) or exactly one entry per edge.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotonically non-decreasing, if the
    /// last offset disagrees with `targets.len()`, if a target is out of
    /// range, or if a non-empty `weights` has the wrong length.
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<u32>, weights: Vec<u32>) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must have num_nodes + 1 entries"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            targets.len(),
            "last offset must equal the edge count"
        );
        let num_nodes = (offsets.len() - 1) as u64;
        assert!(
            targets.iter().all(|&t| (t as u64) < num_nodes),
            "edge target out of range"
        );
        assert!(
            weights.is_empty() || weights.len() == targets.len(),
            "weights must be empty or one per edge"
        );
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().expect("offsets is never empty")
    }

    /// Whether the graph carries explicit edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn out_degree(&self, node: Gid) -> u32 {
        let v = node.index();
        (self.offsets[v + 1] - self.offsets[v]) as u32
    }

    /// Iterates over the nodes of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = Gid> + '_ {
        (0..self.num_nodes()).map(Gid)
    }

    /// Iterates over the outgoing edges of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_edges(&self, node: Gid) -> impl Iterator<Item = Edge> + '_ {
        let v = node.index();
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        let weighted = self.is_weighted();
        range.map(move |e| Edge {
            dst: Gid(self.targets[e]),
            weight: if weighted { self.weights[e] } else { 1 },
        })
    }

    /// Iterates over all edges as `(src, edge)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (Gid, Edge)> + '_ {
        self.nodes()
            .flat_map(move |src| self.out_edges(src).map(move |e| (src, e)))
    }

    /// Returns the transposed graph (every edge reversed, weights kept).
    ///
    /// The transpose is the CSC view used by pull-style operators: the
    /// out-edges of `v` in the transpose are the in-edges of `v` here.
    ///
    /// # Examples
    ///
    /// ```
    /// use gluon_graph::{Csr, Gid};
    ///
    /// let g = Csr::from_edge_list(3, &[(0, 1), (0, 2)]);
    /// let t = g.transpose();
    /// assert_eq!(t.out_degree(Gid(1)), 1);
    /// assert_eq!(t.out_edges(Gid(1)).next().unwrap().dst, Gid(0));
    /// ```
    pub fn transpose(&self) -> Csr {
        let n = self.num_nodes() as usize;
        let mut counts = vec![0u64; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; self.targets.len()];
        let weighted = self.is_weighted();
        let mut weights = if weighted {
            vec![0u32; self.weights.len()]
        } else {
            Vec::new()
        };
        for (src, edge) in self.edges() {
            let slot = cursor[edge.dst.index()] as usize;
            cursor[edge.dst.index()] += 1;
            targets[slot] = src.0;
            if weighted {
                weights[slot] = edge.weight;
            }
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// In-degree array (one counter pass; no transpose materialized).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut degs = vec![0u32; self.num_nodes() as usize];
        for &t in &self.targets {
            degs[t as usize] += 1;
        }
        degs
    }

    /// Out-degree array.
    pub fn out_degrees(&self) -> Vec<u32> {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as u32)
            .collect()
    }

    /// Raw offsets array (`num_nodes + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw target array (one entry per edge).
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Raw weight array (empty when unweighted).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Returns a copy of this graph with all weights dropped.
    pub fn to_unweighted(&self) -> Csr {
        Csr {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: Vec::new(),
        }
    }

    /// Returns a copy with weights assigned by `f(src, dst)`.
    ///
    /// Useful for turning generated unweighted graphs into sssp inputs.
    pub fn with_weights(&self, mut f: impl FnMut(Gid, Gid) -> u32) -> Csr {
        let mut weights = Vec::with_capacity(self.targets.len());
        for (src, edge) in self.edges() {
            weights.push(f(src, edge.dst));
        }
        Csr {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edge_list(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Csr::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 0);
        }
    }

    #[test]
    fn degrees_match_edge_list() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        let mut fwd: Vec<_> = g.edges().map(|(s, e)| (s.0, e.dst.0)).collect();
        let mut rev: Vec<_> = t.edges().map(|(s, e)| (e.dst.0, s.0)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn double_transpose_is_identity_up_to_ordering() {
        let g = diamond();
        let tt = g.transpose().transpose();
        let mut a: Vec<_> = g.edges().map(|(s, e)| (s.0, e.dst.0, e.weight)).collect();
        let mut b: Vec<_> = tt.edges().map(|(s, e)| (s.0, e.dst.0, e.weight)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_keeps_weights() {
        let g = Csr::from_weighted_edge_list(3, &[(0, 1, 10), (1, 2, 20)]);
        let t = g.transpose();
        let e: Vec<_> = t.out_edges(Gid(2)).collect();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].dst, Gid(1));
        assert_eq!(e[0].weight, 20);
    }

    #[test]
    fn unweighted_edges_report_weight_one() {
        let g = diamond();
        assert!(!g.is_weighted());
        assert!(g.edges().all(|(_, e)| e.weight == 1));
    }

    #[test]
    fn with_weights_assigns_per_edge() {
        let g = diamond().with_weights(|s, d| s.0 * 10 + d.0);
        assert!(g.is_weighted());
        let w: Vec<_> = g.edges().map(|(_, e)| e.weight).collect();
        assert_eq!(w, vec![1, 2, 13, 23]);
    }

    #[test]
    fn self_loops_and_parallel_edges_are_kept() {
        let g = Csr::from_edge_list(2, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(Gid(0)), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_bad_offsets() {
        let _ = Csr::from_parts(vec![0, 2, 1], vec![0, 1], Vec::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_bad_target() {
        let _ = Csr::from_parts(vec![0, 1], vec![5], Vec::new());
    }

    #[test]
    #[should_panic(expected = "one per edge")]
    fn from_parts_rejects_bad_weights() {
        let _ = Csr::from_parts(vec![0, 1, 1], vec![1], vec![1, 2]);
    }
}
