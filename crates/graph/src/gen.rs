//! Synthetic graph generators.
//!
//! The Gluon paper evaluates on synthetic scale-free graphs (rmat26/28,
//! kron30, generated with the graph500 parameters 0.57/0.19/0.19/0.05) and on
//! real web crawls (twitter40, clueweb12, wdc12). The crawls are not
//! redistributable at laptop scale, so this module provides shape-preserving
//! stand-ins: [`rmat`] and [`kronecker`] for the synthetic inputs and
//! [`web_like`] / [`twitter_like`] for the crawls (power-law in-degree with
//! bounded out-degree, matching the max-degree asymmetry in the paper's
//! Table 1).
//!
//! All generators are deterministic in their seed.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::ids::Gid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities for the recursive-matrix generator.
///
/// # Examples
///
/// ```
/// let p = gluon_graph::RmatProbs::GRAPH500;
/// assert!((p.a + p.b + p.c + p.d - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RmatProbs {
    /// Probability of the top-left quadrant (both halves low).
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl RmatProbs {
    /// The graph500 reference parameters used by the paper (0.57, 0.19,
    /// 0.19, 0.05).
    pub const GRAPH500: RmatProbs = RmatProbs {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };
}

impl Default for RmatProbs {
    fn default() -> Self {
        RmatProbs::GRAPH500
    }
}

/// Generates an RMAT graph with `2^scale` nodes and `edge_factor * 2^scale`
/// directed edges.
///
/// Parallel edges and self loops are kept, as in the graph500 generator; the
/// paper's rmat26/rmat28 inputs use `edge_factor = 16`.
///
/// # Examples
///
/// ```
/// use gluon_graph::{rmat, RmatProbs};
///
/// let g = rmat(8, 8, RmatProbs::GRAPH500, 42);
/// assert_eq!(g.num_nodes(), 256);
/// assert_eq!(g.num_edges(), 2048);
/// ```
///
/// # Panics
///
/// Panics if the quadrant probabilities do not sum to 1 (±1e-6) or if
/// `scale >= 31`.
pub fn rmat(scale: u32, edge_factor: u32, probs: RmatProbs, seed: u64) -> Csr {
    assert!(scale < 31, "scale must keep node ids within u32");
    let total = probs.a + probs.b + probs.c + probs.d;
    assert!(
        (total - 1.0).abs() < 1e-6,
        "rmat probabilities must sum to 1, got {total}"
    );
    let n = 1u32 << scale;
    let m = edge_factor as u64 * n as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let (src, dst) = rmat_edge(scale, probs, &mut rng);
        builder.add_edge(Gid(src), Gid(dst), 1);
    }
    builder.build()
}

fn rmat_edge(scale: u32, probs: RmatProbs, rng: &mut StdRng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for bit in (0..scale).rev() {
        let r: f64 = rng.gen();
        let (sbit, dbit) = if r < probs.a {
            (0, 0)
        } else if r < probs.a + probs.b {
            (0, 1)
        } else if r < probs.a + probs.b + probs.c {
            (1, 0)
        } else {
            (1, 1)
        };
        src |= sbit << bit;
        dst |= dbit << bit;
    }
    (src, dst)
}

/// Generates a stochastic-Kronecker graph with `2^scale` nodes.
///
/// This is the graph500 Kronecker sampler: the same recursive quadrant walk
/// as [`rmat`], followed by a random relabeling of vertices so that node id
/// carries no locality (the paper's kron30 input is produced this way).
///
/// # Panics
///
/// Panics if `scale >= 31`.
pub fn kronecker(scale: u32, edge_factor: u32, seed: u64) -> Csr {
    assert!(scale < 31, "scale must keep node ids within u32");
    let n = 1u32 << scale;
    let m = edge_factor as u64 * n as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    // Random permutation of vertex labels.
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let (src, dst) = rmat_edge(scale, RmatProbs::GRAPH500, &mut rng);
        builder.add_edge(Gid(perm[src as usize]), Gid(perm[dst as usize]), 1);
    }
    builder.build()
}

/// Generates a uniform random directed graph with `num_nodes` nodes and
/// `num_edges` edges (Erdős–Rényi G(n, m) with repetition).
pub fn erdos_renyi(num_nodes: u32, num_edges: u64, seed: u64) -> Csr {
    assert!(num_nodes > 0, "graph must have at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(num_nodes);
    for _ in 0..num_edges {
        let src = rng.gen_range(0..num_nodes);
        let dst = rng.gen_range(0..num_nodes);
        builder.add_edge(Gid(src), Gid(dst), 1);
    }
    builder.build()
}

/// Generates a web-crawl-like graph: power-law in-degree (exponent
/// `gamma`, Zipf-distributed popularity) with uniformly random sources.
///
/// Used as the stand-in for clueweb12/wdc12 (Table 1 of the paper shows
/// those crawls have very large max in-degree — tens of millions — but
/// bounded max out-degree; this generator reproduces exactly that skew).
///
/// # Examples
///
/// ```
/// let g = gluon_graph::web_like(1000, 10, 2.0, 7);
/// assert_eq!(g.num_nodes(), 1000);
/// let din = g.in_degrees();
/// let dout = g.out_degrees();
/// // In-degree is much more skewed than out-degree.
/// assert!(din.iter().max() > dout.iter().max());
/// ```
pub fn web_like(num_nodes: u32, avg_degree: u32, gamma: f64, seed: u64) -> Csr {
    assert!(num_nodes > 0, "graph must have at least one node");
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let m = num_nodes as u64 * avg_degree as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    // Zipf ranks: node v gets popularity (v + 1)^-gamma; sample destinations
    // by inverse-CDF over the cumulative popularity table.
    let mut cum = Vec::with_capacity(num_nodes as usize);
    let mut total = 0.0f64;
    for v in 0..num_nodes {
        total += f64::from(v + 1).powf(-gamma);
        cum.push(total);
    }
    let mut builder = GraphBuilder::new(num_nodes);
    for _ in 0..m {
        let src = rng.gen_range(0..num_nodes);
        let r: f64 = rng.gen::<f64>() * total;
        let dst = match cum.binary_search_by(|c| c.partial_cmp(&r).expect("no NaN")) {
            Ok(i) | Err(i) => i.min(num_nodes as usize - 1) as u32,
        };
        builder.add_edge(Gid(src), Gid(dst), 1);
    }
    builder.build()
}

/// Generates a twitter-like social graph: power-law on *both* degree
/// directions, denser than [`web_like`] (the paper's twitter40 has
/// |E|/|V| = 35 and multi-million max degrees on both sides).
pub fn twitter_like(num_nodes: u32, avg_degree: u32, seed: u64) -> Csr {
    assert!(num_nodes > 0, "graph must have at least one node");
    let m = num_nodes as u64 * avg_degree as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let gamma = 1.8;
    let mut cum = Vec::with_capacity(num_nodes as usize);
    let mut total = 0.0f64;
    for v in 0..num_nodes {
        total += f64::from(v + 1).powf(-gamma);
        cum.push(total);
    }
    let sample = |rng: &mut StdRng| -> u32 {
        let r: f64 = rng.gen::<f64>() * total;
        match cum.binary_search_by(|c| c.partial_cmp(&r).expect("no NaN")) {
            Ok(i) | Err(i) => i.min(num_nodes as usize - 1) as u32,
        }
    };
    // Interleave the popular ids across the id space so chunked edge-cut
    // partitions do not get all hubs on host 0.
    let stride = 0x9E37_79B9u64;
    let scramble = |v: u32| -> u32 { ((v as u64 * stride) % num_nodes as u64) as u32 };
    let mut builder = GraphBuilder::new(num_nodes);
    for _ in 0..m {
        let src = scramble(sample(&mut rng));
        let dst = scramble(sample(&mut rng));
        builder.add_edge(Gid(src), Gid(dst), 1);
    }
    builder.build()
}

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn path(num_nodes: u32) -> Csr {
    let edges: Vec<_> = (0..num_nodes.saturating_sub(1))
        .map(|v| (v, v + 1))
        .collect();
    Csr::from_edge_list(num_nodes, &edges)
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle(num_nodes: u32) -> Csr {
    assert!(num_nodes > 0, "cycle needs at least one node");
    let edges: Vec<_> = (0..num_nodes).map(|v| (v, (v + 1) % num_nodes)).collect();
    Csr::from_edge_list(num_nodes, &edges)
}

/// Star with node 0 at the center and edges `0 -> v` for all other `v`.
pub fn star(num_nodes: u32) -> Csr {
    let edges: Vec<_> = (1..num_nodes).map(|v| (0, v)).collect();
    Csr::from_edge_list(num_nodes, &edges)
}

/// Directed grid: edges go right and down in a `rows x cols` lattice.
pub fn grid(rows: u32, cols: u32) -> Csr {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols));
            }
        }
    }
    Csr::from_edge_list(n, &edges)
}

/// Complete directed graph (no self loops).
pub fn complete(num_nodes: u32) -> Csr {
    let mut edges = Vec::new();
    for s in 0..num_nodes {
        for d in 0..num_nodes {
            if s != d {
                edges.push((s, d));
            }
        }
    }
    Csr::from_edge_list(num_nodes, &edges)
}

/// Complete binary out-tree of the given depth (depth 0 = single node).
pub fn binary_tree(depth: u32) -> Csr {
    let n = (1u32 << (depth + 1)) - 1;
    let mut edges = Vec::new();
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                edges.push((v, child));
            }
        }
    }
    Csr::from_edge_list(n, &edges)
}

/// Assigns uniformly random weights in `1..=max_weight` to every edge.
pub fn with_random_weights(graph: &Csr, max_weight: u32, seed: u64) -> Csr {
    assert!(max_weight >= 1, "max_weight must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    graph.with_weights(|_, _| rng.gen_range(1..=max_weight))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic_in_seed() {
        let a = rmat(6, 4, RmatProbs::GRAPH500, 1);
        let b = rmat(6, 4, RmatProbs::GRAPH500, 1);
        let c = rmat(6, 4, RmatProbs::GRAPH500, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_has_requested_size() {
        let g = rmat(7, 9, RmatProbs::GRAPH500, 0);
        assert_eq!(g.num_nodes(), 128);
        assert_eq!(g.num_edges(), 9 * 128);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 16, RmatProbs::GRAPH500, 3);
        let max_out = *g.out_degrees().iter().max().expect("non-empty");
        // A uniform graph would have max degree close to 16; rmat hubs are
        // far above that.
        assert!(max_out > 100, "expected a hub, max out-degree {max_out}");
    }

    #[test]
    fn kronecker_relabeling_preserves_size() {
        let g = kronecker(6, 8, 11);
        assert_eq!(g.num_nodes(), 64);
        assert_eq!(g.num_edges(), 8 * 64);
    }

    #[test]
    fn erdos_renyi_counts() {
        let g = erdos_renyi(100, 450, 5);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 450);
    }

    #[test]
    fn web_like_in_degree_dominates_out_degree() {
        let g = web_like(500, 8, 2.0, 9);
        let din = *g.in_degrees().iter().max().expect("non-empty");
        let dout = *g.out_degrees().iter().max().expect("non-empty");
        assert!(din > 3 * dout, "in {din} out {dout}");
    }

    #[test]
    fn structured_generators_have_expected_shape() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(grid(3, 4).num_nodes(), 12);
        assert_eq!(grid(3, 4).num_edges(), (2 * 4 + 3 * 3) as u64);
        assert_eq!(complete(4).num_edges(), 12);
        assert_eq!(binary_tree(3).num_nodes(), 15);
        assert_eq!(binary_tree(3).num_edges(), 14);
    }

    #[test]
    fn random_weights_stay_in_range() {
        let g = with_random_weights(&path(50), 7, 13);
        assert!(g.is_weighted());
        assert!(g.edges().all(|(_, e)| (1..=7).contains(&e.weight)));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probabilities() {
        let p = RmatProbs {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
        };
        let _ = rmat(4, 2, p, 0);
    }
}
