//! Whole-graph property summaries (the paper's Table 1 columns).

use crate::csr::Csr;
use crate::ids::Gid;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a graph: the columns of the paper's Table 1.
///
/// # Examples
///
/// ```
/// use gluon_graph::{gen, GraphStats};
///
/// let g = gen::star(11);
/// let s = GraphStats::of(&g);
/// assert_eq!(s.num_nodes, 11);
/// assert_eq!(s.max_out_degree, 10);
/// assert_eq!(s.max_in_degree, 1);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct GraphStats {
    /// |V|.
    pub num_nodes: u32,
    /// |E|.
    pub num_edges: u64,
    /// |E| / |V|.
    pub avg_degree: f64,
    /// Largest out-degree of any node.
    pub max_out_degree: u32,
    /// Largest in-degree of any node.
    pub max_in_degree: u32,
}

impl GraphStats {
    /// Computes the statistics of `graph`.
    pub fn of(graph: &Csr) -> Self {
        let dout = graph.out_degrees();
        let din = graph.in_degrees();
        GraphStats {
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
            avg_degree: graph.num_edges() as f64 / f64::from(graph.num_nodes().max(1)),
            max_out_degree: dout.iter().copied().max().unwrap_or(0),
            max_in_degree: din.iter().copied().max().unwrap_or(0),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |E|/|V|={:.1} maxDout={} maxDin={}",
            self.num_nodes,
            self.num_edges,
            self.avg_degree,
            self.max_out_degree,
            self.max_in_degree
        )
    }
}

/// Returns the node with the maximum out-degree (ties broken by smaller id).
///
/// The paper uses this node as the bfs/sssp source ("the source nodes for bfs
/// and sssp are the maximum out-degree node").
///
/// # Panics
///
/// Panics if the graph has no nodes.
pub fn max_out_degree_node(graph: &Csr) -> Gid {
    assert!(graph.num_nodes() > 0, "graph has no nodes");
    let mut best = Gid(0);
    let mut best_deg = graph.out_degree(best);
    for v in graph.nodes().skip(1) {
        let d = graph.out_degree(v);
        if d > best_deg {
            best = v;
            best_deg = d;
        }
    }
    best
}

/// Histogram of out-degrees in power-of-two buckets.
///
/// Bucket `i` counts nodes with out-degree in `[2^i, 2^(i+1))`; bucket 0 also
/// counts degree-0 nodes. Useful for eyeballing the skew the generators are
/// supposed to produce.
pub fn degree_histogram(graph: &Csr) -> Vec<u64> {
    let mut hist = Vec::new();
    for d in graph.out_degrees() {
        let bucket = if d <= 1 {
            0
        } else {
            (u32::BITS - d.leading_zeros() - 1) as usize
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_star() {
        let s = GraphStats::of(&gen::star(5));
        assert_eq!(s.num_edges, 4);
        assert!((s.avg_degree - 0.8).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.max_in_degree, 1);
    }

    #[test]
    fn source_node_is_the_hub() {
        let g = gen::star(9);
        assert_eq!(max_out_degree_node(&g), Gid(0));
    }

    #[test]
    fn source_node_prefers_smaller_id_on_tie() {
        let g = Csr::from_edge_list(4, &[(1, 0), (2, 0)]);
        assert_eq!(max_out_degree_node(&g), Gid(1));
    }

    #[test]
    fn histogram_buckets_sum_to_node_count() {
        let g = gen::rmat(8, 8, Default::default(), 4);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<u64>(), u64::from(g.num_nodes()));
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = GraphStats::of(&gen::path(3));
        let text = s.to_string();
        assert!(text.contains("|V|=3"));
        assert!(text.contains("|E|=2"));
    }
}
