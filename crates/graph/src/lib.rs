//! Graph representations, generators, and I/O for the Gluon workspace.
//!
//! This crate is the foundation of the Gluon reproduction: it defines the
//! [`Csr`] in-memory graph that every other crate consumes, the strongly
//! typed id spaces ([`Gid`] for the global graph, [`Lid`] for one host's
//! partition), synthetic generators matching the paper's inputs
//! ([`gen::rmat`], [`gen::kronecker`], [`gen::web_like`]), and text/binary
//! serialization ([`io`]).
//!
//! # Examples
//!
//! Generate a small scale-free graph and inspect it:
//!
//! ```
//! use gluon_graph::{gen, GraphStats, RmatProbs};
//!
//! let g = gen::rmat(10, 16, RmatProbs::GRAPH500, 42);
//! let stats = GraphStats::of(&g);
//! assert_eq!(stats.num_nodes, 1024);
//! assert!(stats.max_out_degree > stats.avg_degree as u32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
pub mod gen;
mod ids;
pub mod io;
mod props;

pub use builder::GraphBuilder;
pub use csr::{Csr, Edge};
pub use gen::{
    binary_tree, complete, cycle, erdos_renyi, grid, kronecker, path, rmat, star, twitter_like,
    web_like, with_random_weights, RmatProbs,
};
pub use ids::{Gid, HostId, Lid};
pub use props::{degree_histogram, max_out_degree_node, GraphStats};
