//! Strongly-typed node identifiers.
//!
//! Distributed graph analytics juggles two id spaces: *global* ids name nodes
//! of the input graph and are meaningful on every host, while *local* ids
//! name proxies inside one host's partition and are meaningless anywhere
//! else. Mixing the two spaces is the classic bug of this domain, so both are
//! newtypes: the compiler rejects an accidental cross-space use, and the
//! translation points ([`crate::Gid`] ↔ [`crate::Lid`]) become explicit and
//! auditable.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A node id in the *global* (whole input graph) id space.
///
/// # Examples
///
/// ```
/// use gluon_graph::Gid;
///
/// let g = Gid(7);
/// assert_eq!(g.index(), 7);
/// assert_eq!(format!("{g}"), "g7");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Gid(pub u32);

/// A node id in one host's *local* (partition proxy) id space.
///
/// # Examples
///
/// ```
/// use gluon_graph::Lid;
///
/// let l = Lid(3);
/// assert_eq!(l.index(), 3);
/// assert_eq!(format!("{l}"), "l3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Lid(pub u32);

macro_rules! id_impls {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Returns the id as a `usize`, suitable for indexing slices.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a slice index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $ty(u32::try_from(index).expect("node index exceeds u32 range"))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $ty {
            fn from(raw: u32) -> Self {
                $ty(raw)
            }
        }

        impl From<$ty> for u32 {
            fn from(id: $ty) -> u32 {
                id.0
            }
        }
    };
}

id_impls!(Gid, "g");
id_impls!(Lid, "l");

/// Identifier of a simulated host (cluster rank).
pub type HostId = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_index() {
        for raw in [0u32, 1, 17, u32::MAX] {
            assert_eq!(Gid::from_index(Gid(raw).index()), Gid(raw));
            assert_eq!(Lid::from_index(Lid(raw).index()), Lid(raw));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn from_index_rejects_oversized() {
        let _ = Gid::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn display_distinguishes_spaces() {
        assert_eq!(Gid(4).to_string(), "g4");
        assert_eq!(Lid(4).to_string(), "l4");
    }

    #[test]
    fn conversions_to_and_from_u32() {
        let g: Gid = 9u32.into();
        assert_eq!(u32::from(g), 9);
        let l: Lid = 9u32.into();
        assert_eq!(u32::from(l), 9);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Gid(1) < Gid(2));
        assert!(Lid(0) < Lid(10));
    }
}
