//! Collectives under adverse transports.
//!
//! The collectives are specified to work over any [`Transport`] whose
//! per-stream FIFO guarantee holds, and over the reliability layer when
//! even that is taken away. Three regimes:
//!
//! * [`JitterTransport`] — adversarial but lossless cross-stream
//!   reordering (the collectives' own tag discipline must cope);
//! * delay/duplicate-free lossless [`FaultyTransport`] plans — same
//!   contract, different adversary;
//! * a fully lossy [`FaultyTransport`] underneath a
//!   [`ReliableTransport`] — drops and corruption repaired below the
//!   collective layer.

use bytes::Bytes;
use gluon_net::{
    run_cluster_wrapped, Communicator, FaultCounters, FaultPlan, FaultyTransport, JitterTransport,
    NetStats, ReliableTransport, Transport,
};

const HOSTS: usize = 4;
const SEEDS: [u64; 3] = [3, 41, 0xDEAD_BEEF];

/// One workout touching every collective the substrate relies on; returns
/// per-host evidence that is asserted identically for every transport.
fn collective_workout<T: Transport>(net: &T) -> (u64, Vec<u8>, bool) {
    let comm = Communicator::new(net);
    comm.barrier();
    let rank = comm.rank() as u64;
    let sum = comm.all_reduce_u64(rank + 1, u64::wrapping_add);
    let gathered = comm.all_gather(Bytes::copy_from_slice(&[comm.rank() as u8]));
    let roster: Vec<u8> = gathered.iter().map(|b| b[0]).collect();
    comm.barrier();
    let anyone = comm.any(comm.rank() == HOSTS - 1);
    // A second round over the same tags: epoch bumping must keep rounds
    // from bleeding into each other even when frames arrive out of order.
    let sum2 = comm.all_reduce_u64(rank + 1, u64::wrapping_add);
    assert_eq!(sum, sum2, "rank {rank}: two identical rounds disagreed");
    (sum, roster, anyone)
}

fn assert_workout(results: Vec<(u64, Vec<u8>, bool)>, label: &str) {
    let expected_sum = (1..=HOSTS as u64).sum::<u64>();
    let expected_roster: Vec<u8> = (0..HOSTS as u8).collect();
    for (rank, (sum, roster, anyone)) in results.into_iter().enumerate() {
        assert_eq!(sum, expected_sum, "{label}: all_reduce wrong on {rank}");
        assert_eq!(
            roster, expected_roster,
            "{label}: all_gather wrong on {rank}"
        );
        assert!(anyone, "{label}: any() lost the vote on {rank}");
    }
}

#[test]
fn collectives_survive_jitter() {
    for seed in SEEDS {
        let (results, _) = run_cluster_wrapped(
            HOSTS,
            NetStats::new(HOSTS),
            move |ep| {
                let salt = ep.rank() as u64;
                JitterTransport::new(ep, seed ^ salt)
            },
            collective_workout,
        );
        assert_workout(results, "jitter");
    }
}

#[test]
fn collectives_survive_lossless_fault_plans() {
    // Delay-only: every frame still arrives, late and out of order across
    // streams. Each collective step uses a distinct tag, so the tag
    // discipline alone must absorb this without a reliability layer.
    for seed in SEEDS {
        let counters = FaultCounters::new();
        let c = counters.clone();
        let (results, _) = run_cluster_wrapped(
            HOSTS,
            NetStats::new(HOSTS),
            move |ep| {
                FaultyTransport::new(ep, FaultPlan::none(seed).with_delay_rate(0.4), c.clone())
            },
            collective_workout,
        );
        assert_workout(results, "delay-only faults");
        assert!(counters.delayed() > 0, "seed {seed}: nothing was delayed");
    }
}

#[test]
fn collectives_survive_a_lossy_wire_behind_the_reliability_layer() {
    for seed in SEEDS {
        let counters = FaultCounters::new();
        let c = counters.clone();
        let (results, stats) = run_cluster_wrapped(
            HOSTS,
            NetStats::new(HOSTS),
            move |ep| {
                ReliableTransport::over(FaultyTransport::new(ep, FaultPlan::lossy(seed), c.clone()))
            },
            collective_workout,
        );
        assert_workout(results, "reliable-over-lossy");
        assert!(
            counters.total() > 0,
            "seed {seed}: the lossy plan injected nothing"
        );
        let snap = stats.snapshot();
        assert!(
            snap.retransmit_messages > 0 || counters.dropped() == 0,
            "seed {seed}: frames were dropped but never retransmitted"
        );
    }
}

/// The full stacking order from DESIGN.md: Reliable(Faulty(Jitter(Memory))).
/// Jitter reorders below the fault injector; the reliability layer sees the
/// worst of both and must still deliver exactly-once in order.
#[test]
fn jitter_composes_under_the_full_stack() {
    for seed in SEEDS {
        let counters = FaultCounters::new();
        let c = counters.clone();
        let (results, _) = run_cluster_wrapped(
            HOSTS,
            NetStats::new(HOSTS),
            move |ep| {
                let rank = ep.rank() as u64;
                ReliableTransport::over(FaultyTransport::new(
                    JitterTransport::new(ep, seed.rotate_left(8) ^ rank),
                    FaultPlan::lossy(seed),
                    c.clone(),
                ))
            },
            collective_workout,
        );
        assert_workout(results, "reliable-over-faulty-over-jitter");
        assert!(counters.total() > 0, "seed {seed}: nothing injected");
    }
}
