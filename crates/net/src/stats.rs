//! Communication statistics.
//!
//! The Gluon paper's headline evaluation metric (Figures 8b and 10) is the
//! *communication volume*: bytes moved between hosts. Because our transport
//! is in-memory, these counters are exact — every payload byte that would
//! have crossed the wire on a real cluster is counted here.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default capacity of the send-history ring buffer. Long chaos runs can
/// log millions of sends; keeping only the most recent ~64K bounds memory
/// while retaining enough tail for debugging.
pub const DEFAULT_HISTORY_CAPACITY: usize = 1 << 16;

/// Shared, thread-safe communication counters for one cluster run.
///
/// Cloning is cheap (an [`Arc`] bump); all clones observe the same counters.
#[derive(Clone, Debug)]
pub struct NetStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug)]
struct StatsInner {
    world_size: usize,
    bytes: Vec<AtomicU64>,
    messages: Vec<AtomicU64>,
    /// Wire bytes sent again by the reliability layer (frame bytes,
    /// headers included). These are *also* in the matrices above — every
    /// retransmission crosses the wire — but are broken out so reports can
    /// show how much traffic was recovery rather than payload.
    retransmit_bytes: AtomicU64,
    /// Frames retransmitted by the reliability layer.
    retransmit_messages: AtomicU64,
    /// Duplicate frames the reliability layer received and discarded.
    dup_suppressed: AtomicU64,
    /// Frames that failed their checksum on receive.
    corruption_detected: AtomicU64,
    /// Payloads that passed transport delivery but failed to decode at the
    /// codec layer (recorded by the substrate's sync paths).
    decode_errors: AtomicU64,
    /// Sync payloads built into a recycled arena buffer (no allocation).
    pool_hits: AtomicU64,
    /// Sync payloads that had to allocate because the previous round's
    /// buffer was still held by a consumer (or had never been created).
    pool_misses: AtomicU64,
    /// Largest per-field arena footprint observed, in bytes (updated with
    /// `fetch_max` once per sync round).
    pool_high_water_bytes: AtomicU64,
    /// Per-host-pair log is optional; the matrix above is always on. The
    /// log is a bounded ring: once `history_capacity` records are held,
    /// each new record evicts the oldest and bumps `dropped_records`.
    history: Mutex<VecDeque<SendRecord>>,
    record_history: bool,
    history_capacity: usize,
    dropped_records: AtomicU64,
    /// Socket-level counters ([`crate::SocketTransport`] only). These live
    /// beside — not inside — [`StatsSnapshot`]: they describe the wire
    /// mechanics of one backend, not the algorithm's communication volume,
    /// and must never perturb the transport-independent report schema.
    socket_connects: AtomicU64,
    /// Connection attempts retried after a refused/failed connect during
    /// bootstrap (backoff loop iterations past the first attempt).
    socket_reconnect_attempts: AtomicU64,
    /// Framed messages handed to the wire by the event loop.
    socket_frames_sent: AtomicU64,
    /// Framed messages parsed off the wire by the event loop.
    socket_frames_received: AtomicU64,
    /// Read passes that left a partial frame buffered (frame boundary did
    /// not align with what the kernel had available).
    socket_short_reads: AtomicU64,
}

/// One logged send (only when history recording is enabled).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SendRecord {
    /// Sending host.
    pub src: usize,
    /// Receiving host.
    pub dst: usize,
    /// Multiplexing tag.
    pub tag: u32,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// A point-in-time copy of the counters, used to compute per-phase deltas.
///
/// # Examples
///
/// ```
/// use gluon_net::NetStats;
///
/// let stats = NetStats::new(2);
/// let before = stats.snapshot();
/// stats.record_send(0, 1, 7, 100);
/// let delta = stats.snapshot().since(&before);
/// assert_eq!(delta.total_bytes, 100);
/// assert_eq!(delta.total_messages, 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Row-major `world_size x world_size` byte matrix (`[src][dst]`).
    pub bytes: Vec<u64>,
    /// Row-major message-count matrix.
    pub messages: Vec<u64>,
    /// Hosts per side of the matrices.
    pub world_size: usize,
    /// Wire bytes retransmitted by the reliability layer at snapshot time.
    pub retransmit_bytes: u64,
    /// Frames retransmitted by the reliability layer at snapshot time.
    pub retransmit_messages: u64,
    /// Duplicate frames suppressed on receive at snapshot time.
    pub dup_suppressed: u64,
    /// Checksum failures detected on receive at snapshot time.
    pub corruption_detected: u64,
    /// Codec-layer decode failures at snapshot time.
    pub decode_errors: u64,
}

/// Difference between two snapshots.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StatsDelta {
    /// Total payload bytes sent in the interval.
    pub total_bytes: u64,
    /// Total messages sent in the interval.
    pub total_messages: u64,
    /// Largest per-host outgoing byte count (the straggler for cost models).
    pub max_host_bytes: u64,
    /// Largest per-host outgoing message count.
    pub max_host_messages: u64,
    /// Wire bytes retransmitted by the reliability layer in the interval.
    pub retransmit_bytes: u64,
    /// Frames retransmitted by the reliability layer in the interval.
    pub retransmit_messages: u64,
    /// Duplicate frames suppressed on receive in the interval.
    pub dup_suppressed: u64,
    /// Checksum failures detected on receive in the interval.
    pub corruption_detected: u64,
    /// Codec-layer decode failures in the interval.
    pub decode_errors: u64,
}

impl NetStats {
    /// Creates counters for a cluster of `world_size` hosts.
    pub fn new(world_size: usize) -> Self {
        Self::with_history(world_size, false)
    }

    /// Creates counters that additionally log every send (costly; tests
    /// and debugging only), keeping the most recent
    /// [`DEFAULT_HISTORY_CAPACITY`] records.
    pub fn with_history(world_size: usize, record_history: bool) -> Self {
        Self::with_history_capacity(world_size, record_history, DEFAULT_HISTORY_CAPACITY)
    }

    /// Like [`NetStats::with_history`] but with an explicit bound on how
    /// many send records are retained. Once full, each new record evicts
    /// the oldest; [`NetStats::dropped_records`] counts the evictions.
    ///
    /// # Panics
    ///
    /// Panics if `record_history` is set and `capacity` is zero.
    pub fn with_history_capacity(world_size: usize, record_history: bool, capacity: usize) -> Self {
        assert!(
            !record_history || capacity > 0,
            "history capacity must be positive when recording"
        );
        let n = world_size * world_size;
        NetStats {
            inner: Arc::new(StatsInner {
                world_size,
                bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
                messages: (0..n).map(|_| AtomicU64::new(0)).collect(),
                retransmit_bytes: AtomicU64::new(0),
                retransmit_messages: AtomicU64::new(0),
                dup_suppressed: AtomicU64::new(0),
                corruption_detected: AtomicU64::new(0),
                decode_errors: AtomicU64::new(0),
                pool_hits: AtomicU64::new(0),
                pool_misses: AtomicU64::new(0),
                pool_high_water_bytes: AtomicU64::new(0),
                history: Mutex::new(VecDeque::new()),
                record_history,
                history_capacity: capacity,
                dropped_records: AtomicU64::new(0),
                socket_connects: AtomicU64::new(0),
                socket_reconnect_attempts: AtomicU64::new(0),
                socket_frames_sent: AtomicU64::new(0),
                socket_frames_received: AtomicU64::new(0),
                socket_short_reads: AtomicU64::new(0),
            }),
        }
    }

    /// Number of hosts the counters cover.
    pub fn world_size(&self) -> usize {
        self.inner.world_size
    }

    /// Records one payload of `bytes` bytes sent from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn record_send(&self, src: usize, dst: usize, tag: u32, bytes: u64) {
        let n = self.inner.world_size;
        assert!(src < n && dst < n, "host out of range");
        let idx = src * n + dst;
        self.inner.bytes[idx].fetch_add(bytes, Ordering::Relaxed);
        self.inner.messages[idx].fetch_add(1, Ordering::Relaxed);
        if self.inner.record_history {
            let mut history = self.inner.history.lock();
            if history.len() == self.inner.history_capacity {
                history.pop_front();
                self.inner.dropped_records.fetch_add(1, Ordering::Relaxed);
            }
            history.push_back(SendRecord {
                src,
                dst,
                tag,
                bytes,
            });
        }
    }

    /// Records one frame of `bytes` wire bytes retransmitted by the
    /// reliability layer. (The frame is also counted by the regular
    /// [`NetStats::record_send`] path when it crosses the wire again.)
    pub fn record_retransmit(&self, bytes: u64) {
        self.inner
            .retransmit_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.inner
            .retransmit_messages
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one duplicate frame suppressed on receive.
    pub fn record_dup_suppressed(&self) {
        self.inner.dup_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one checksum failure detected on receive.
    pub fn record_corruption_detected(&self) {
        self.inner
            .corruption_detected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Wire bytes retransmitted by the reliability layer so far.
    pub fn retransmit_bytes(&self) -> u64 {
        self.inner.retransmit_bytes.load(Ordering::Relaxed)
    }

    /// Frames retransmitted by the reliability layer so far.
    pub fn retransmit_messages(&self) -> u64 {
        self.inner.retransmit_messages.load(Ordering::Relaxed)
    }

    /// Duplicate frames suppressed on receive so far.
    pub fn dup_suppressed(&self) -> u64 {
        self.inner.dup_suppressed.load(Ordering::Relaxed)
    }

    /// Checksum failures detected on receive so far.
    pub fn corruption_detected(&self) -> u64 {
        self.inner.corruption_detected.load(Ordering::Relaxed)
    }

    /// Records one payload that was delivered by the transport but failed
    /// to decode at the codec layer.
    pub fn record_decode_error(&self) {
        self.inner.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Codec-layer decode failures recorded so far.
    pub fn decode_errors(&self) -> u64 {
        self.inner.decode_errors.load(Ordering::Relaxed)
    }

    /// Records one sync payload built into a recycled arena buffer.
    pub fn record_pool_hit(&self) {
        self.inner.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sync payload that had to allocate a fresh buffer.
    pub fn record_pool_miss(&self) {
        self.inner.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the observed arena footprint high-water mark to `bytes` if
    /// it is the largest seen so far.
    pub fn record_pool_high_water(&self, bytes: u64) {
        self.inner
            .pool_high_water_bytes
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// Sync payloads built into recycled arena buffers so far.
    pub fn pool_hits(&self) -> u64 {
        self.inner.pool_hits.load(Ordering::Relaxed)
    }

    /// Sync payloads that allocated a fresh buffer so far.
    pub fn pool_misses(&self) -> u64 {
        self.inner.pool_misses.load(Ordering::Relaxed)
    }

    /// Largest per-field arena footprint observed, in bytes.
    pub fn pool_high_water_bytes(&self) -> u64 {
        self.inner.pool_high_water_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes and messages host `src` has sent, summed straight off
    /// the atomic matrices — the allocation-free fast path the sync layer
    /// brackets every round with (unlike [`NetStats::snapshot`], which
    /// copies both matrices).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn host_sent(&self, src: usize) -> (u64, u64) {
        let n = self.inner.world_size;
        assert!(src < n, "host out of range");
        let bytes = self.inner.bytes[src * n..(src + 1) * n]
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        let messages = self.inner.messages[src * n..(src + 1) * n]
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        (bytes, messages)
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes: self
                .inner
                .bytes
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            messages: self
                .inner
                .messages
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            world_size: self.inner.world_size,
            retransmit_bytes: self.retransmit_bytes(),
            retransmit_messages: self.retransmit_messages(),
            dup_suppressed: self.dup_suppressed(),
            corruption_detected: self.corruption_detected(),
            decode_errors: self.decode_errors(),
        }
    }

    /// Returns the logged send records, oldest retained first (empty
    /// unless history recording was enabled at construction). When the run
    /// outgrew the ring capacity, this is the most recent window only —
    /// check [`NetStats::dropped_records`].
    pub fn history(&self) -> Vec<SendRecord> {
        self.inner.history.lock().iter().copied().collect()
    }

    /// Number of send records evicted from the history ring because the
    /// run produced more than the configured capacity.
    pub fn dropped_records(&self) -> u64 {
        self.inner.dropped_records.load(Ordering::Relaxed)
    }

    /// Records one established socket connection (rendezvous or mesh).
    pub fn record_socket_connect(&self) {
        self.inner.socket_connects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retried connection attempt during bootstrap backoff.
    pub fn record_socket_reconnect_attempt(&self) {
        self.inner
            .socket_reconnect_attempts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one framed message handed to the wire.
    pub fn record_socket_frame_sent(&self) {
        self.inner
            .socket_frames_sent
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one framed message parsed off the wire.
    pub fn record_socket_frame_received(&self) {
        self.inner
            .socket_frames_received
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one read pass that left a partial frame buffered.
    pub fn record_socket_short_read(&self) {
        self.inner
            .socket_short_reads
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Established socket connections so far.
    pub fn socket_connects(&self) -> u64 {
        self.inner.socket_connects.load(Ordering::Relaxed)
    }

    /// Retried connection attempts so far.
    pub fn socket_reconnect_attempts(&self) -> u64 {
        self.inner.socket_reconnect_attempts.load(Ordering::Relaxed)
    }

    /// Framed messages handed to the wire so far.
    pub fn socket_frames_sent(&self) -> u64 {
        self.inner.socket_frames_sent.load(Ordering::Relaxed)
    }

    /// Framed messages parsed off the wire so far.
    pub fn socket_frames_received(&self) -> u64 {
        self.inner.socket_frames_received.load(Ordering::Relaxed)
    }

    /// Read passes that left a partial frame buffered so far.
    pub fn socket_short_reads(&self) -> u64 {
        self.inner.socket_short_reads.load(Ordering::Relaxed)
    }

    /// Total bytes sent so far across all host pairs.
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .bytes
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total messages sent so far across all host pairs.
    pub fn total_messages(&self) -> u64 {
        self.inner
            .messages
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }
}

impl StatsSnapshot {
    /// Bytes sent from `src` to `dst` at snapshot time.
    pub fn bytes_between(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.world_size + dst]
    }

    /// Total bytes across all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all pairs.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Number of distinct destinations `src` has sent at least one byte to —
    /// the "communication partners" count discussed in §5.4 of the paper.
    pub fn fan_out(&self, src: usize) -> usize {
        (0..self.world_size)
            .filter(|&dst| dst != src && self.bytes_between(src, dst) > 0)
            .count()
    }

    /// Computes the delta from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots cover different world sizes or if `earlier`
    /// is not actually earlier (counters are monotone).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsDelta {
        assert_eq!(self.world_size, earlier.world_size, "world size mismatch");
        let n = self.world_size;
        let mut total_bytes = 0u64;
        let mut total_messages = 0u64;
        let mut max_host_bytes = 0u64;
        let mut max_host_messages = 0u64;
        for src in 0..n {
            let mut host_bytes = 0u64;
            let mut host_msgs = 0u64;
            for dst in 0..n {
                let i = src * n + dst;
                let db = self.bytes[i]
                    .checked_sub(earlier.bytes[i])
                    .expect("snapshot taken before `earlier`");
                let dm = self.messages[i]
                    .checked_sub(earlier.messages[i])
                    .expect("snapshot taken before `earlier`");
                host_bytes += db;
                host_msgs += dm;
            }
            total_bytes += host_bytes;
            total_messages += host_msgs;
            max_host_bytes = max_host_bytes.max(host_bytes);
            max_host_messages = max_host_messages.max(host_msgs);
        }
        StatsDelta {
            total_bytes,
            total_messages,
            max_host_bytes,
            max_host_messages,
            retransmit_bytes: self
                .retransmit_bytes
                .checked_sub(earlier.retransmit_bytes)
                .expect("snapshot taken before `earlier`"),
            retransmit_messages: self
                .retransmit_messages
                .checked_sub(earlier.retransmit_messages)
                .expect("snapshot taken before `earlier`"),
            dup_suppressed: self
                .dup_suppressed
                .checked_sub(earlier.dup_suppressed)
                .expect("snapshot taken before `earlier`"),
            corruption_detected: self
                .corruption_detected
                .checked_sub(earlier.corruption_detected)
                .expect("snapshot taken before `earlier`"),
            decode_errors: self
                .decode_errors
                .checked_sub(earlier.decode_errors)
                .expect("snapshot taken before `earlier`"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_pair() {
        let s = NetStats::new(3);
        s.record_send(0, 1, 0, 10);
        s.record_send(0, 1, 0, 5);
        s.record_send(2, 0, 1, 7);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_between(0, 1), 15);
        assert_eq!(snap.bytes_between(2, 0), 7);
        assert_eq!(snap.bytes_between(1, 2), 0);
        assert_eq!(snap.total_bytes(), 22);
        assert_eq!(snap.total_messages(), 3);
    }

    #[test]
    fn delta_reports_straggler() {
        let s = NetStats::new(2);
        let before = s.snapshot();
        s.record_send(0, 1, 0, 100);
        s.record_send(1, 0, 0, 30);
        let d = s.snapshot().since(&before);
        assert_eq!(d.total_bytes, 130);
        assert_eq!(d.max_host_bytes, 100);
        assert_eq!(d.max_host_messages, 1);
    }

    #[test]
    fn fan_out_ignores_self_and_silent_pairs() {
        let s = NetStats::new(4);
        s.record_send(0, 1, 0, 1);
        s.record_send(0, 3, 0, 1);
        s.record_send(0, 0, 0, 1);
        assert_eq!(s.snapshot().fan_out(0), 2);
        assert_eq!(s.snapshot().fan_out(1), 0);
    }

    #[test]
    fn history_records_when_enabled() {
        let s = NetStats::with_history(2, true);
        s.record_send(0, 1, 9, 4);
        let h = s.history();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].tag, 9);
        let quiet = NetStats::new(2);
        quiet.record_send(0, 1, 9, 4);
        assert!(quiet.history().is_empty());
    }

    #[test]
    fn history_ring_wraps_and_counts_drops() {
        let s = NetStats::with_history_capacity(2, true, 4);
        for i in 0..10u64 {
            s.record_send(0, 1, i as u32, i);
        }
        let h = s.history();
        // Only the 4 most recent records survive, oldest retained first.
        assert_eq!(h.len(), 4);
        assert_eq!(h.iter().map(|r| r.bytes).collect::<Vec<_>>(), [6, 7, 8, 9]);
        assert_eq!(s.dropped_records(), 6);
        // The matrices are unaffected by eviction.
        assert_eq!(s.total_messages(), 10);
        assert_eq!(s.total_bytes(), (0..10).sum::<u64>());
    }

    #[test]
    fn history_below_capacity_drops_nothing() {
        let s = NetStats::with_history_capacity(2, true, 4);
        s.record_send(0, 1, 0, 1);
        assert_eq!(s.history().len(), 1);
        assert_eq!(s.dropped_records(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_history_rejected() {
        let _ = NetStats::with_history_capacity(2, true, 0);
    }

    #[test]
    fn reliability_counters_flow_into_deltas() {
        let s = NetStats::new(2);
        let before = s.snapshot();
        s.record_retransmit(40);
        s.record_retransmit(2);
        s.record_dup_suppressed();
        s.record_corruption_detected();
        s.record_decode_error();
        s.record_decode_error();
        assert_eq!(s.retransmit_bytes(), 42);
        assert_eq!(s.retransmit_messages(), 2);
        assert_eq!(s.decode_errors(), 2);
        let d = s.snapshot().since(&before);
        assert_eq!(d.retransmit_bytes, 42);
        assert_eq!(d.retransmit_messages, 2);
        assert_eq!(d.dup_suppressed, 1);
        assert_eq!(d.corruption_detected, 1);
        assert_eq!(d.decode_errors, 2);
    }

    #[test]
    fn reliability_deltas_from_nonzero_baseline() {
        // Per-phase accounting must subtract a baseline snapshot taken
        // mid-run, not assume the counters start at zero.
        let s = NetStats::new(2);
        s.record_retransmit(100);
        s.record_retransmit(100);
        s.record_dup_suppressed();
        s.record_dup_suppressed();
        s.record_dup_suppressed();
        s.record_corruption_detected();
        let mid = s.snapshot();
        assert_eq!(mid.retransmit_bytes, 200);
        assert_eq!(mid.retransmit_messages, 2);
        assert_eq!(mid.dup_suppressed, 3);
        assert_eq!(mid.corruption_detected, 1);

        s.record_retransmit(7);
        s.record_corruption_detected();
        s.record_corruption_detected();
        let d = s.snapshot().since(&mid);
        assert_eq!(d.retransmit_bytes, 7);
        assert_eq!(d.retransmit_messages, 1);
        assert_eq!(d.dup_suppressed, 0);
        assert_eq!(d.corruption_detected, 2);

        // A quiet interval deltas to zero on every reliability counter.
        let after = s.snapshot();
        let quiet = s.snapshot().since(&after);
        assert_eq!(quiet, StatsDelta::default());
    }

    #[test]
    #[should_panic(expected = "snapshot taken before")]
    fn reversed_reliability_snapshots_panic() {
        let s = NetStats::new(2);
        s.record_retransmit(1);
        let later = s.snapshot();
        let s2 = NetStats::new(2);
        let _ = s2.snapshot().since(&later);
    }

    #[test]
    fn socket_counters_accumulate_outside_snapshots() {
        let s = NetStats::new(2);
        s.record_socket_connect();
        s.record_socket_connect();
        s.record_socket_reconnect_attempt();
        s.record_socket_frame_sent();
        s.record_socket_frame_received();
        s.record_socket_short_read();
        assert_eq!(s.socket_connects(), 2);
        assert_eq!(s.socket_reconnect_attempts(), 1);
        assert_eq!(s.socket_frames_sent(), 1);
        assert_eq!(s.socket_frames_received(), 1);
        assert_eq!(s.socket_short_reads(), 1);
        // The transport-independent snapshot schema is untouched: a quiet
        // snapshot still deltas to zero against a fresh one.
        let quiet = NetStats::new(2);
        assert_eq!(s.snapshot().since(&quiet.snapshot()), StatsDelta::default());
    }

    #[test]
    fn clones_share_counters() {
        let s = NetStats::new(2);
        let s2 = s.clone();
        s.record_send(0, 1, 0, 8);
        assert_eq!(s2.total_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "host out of range")]
    fn rejects_out_of_range_host() {
        NetStats::new(2).record_send(0, 2, 0, 1);
    }
}
