//! Lossy-network fault injection.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and deterministically
//! injects the failures a real datacenter network exhibits: dropped
//! messages, duplicated messages, payload corruption (bit flips), and
//! per-peer delivery delays. The injected fault mix is configured by a
//! [`FaultPlan`] — background probabilities plus targeted [`FaultRule`]s
//! like "drop the 3rd message on tag T to host H" — and every injected
//! fault is counted in shared [`FaultCounters`] so tests can prove the
//! faults actually fired.
//!
//! Determinism: each endpoint draws from its own generator seeded from
//! `plan.seed` mixed with the endpoint's rank, so a given (plan, rank)
//! replays the same per-send decisions run after run. (Across a
//! multi-threaded cluster the *interleaving* of sends still varies, so a
//! fault lands on the same send *index*, not necessarily the same wall
//! -clock moment.)
//!
//! Ordering caveat: a delayed message is released after later sends, so
//! `FaultyTransport` — unlike [`crate::JitterTransport`] — does **not**
//! preserve per-`(destination, tag)` FIFO order, and dropped messages
//! never arrive at all. Bare protocols are not expected to survive this
//! wrapper; stack [`crate::ReliableTransport`] on top to restore exactly
//! -once in-order delivery.
//!
//! Self-sends (`dst == rank`) bypass injection entirely: loopback traffic
//! never traverses the NIC on a real host either.

use crate::error::NetError;
use crate::stats::NetStats;
use crate::transport::{Envelope, Transport};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A scheduled host crash: when the local host is `host` and the
/// application reports reaching sync round `round` (via
/// [`Transport::note_round`]), the endpoint dies — outbound traffic is
/// silently swallowed from that point on and every fallible operation on
/// the endpoint returns [`NetError::HostCrashed`], so the host's thread
/// unwinds as if the process were killed while its peers observe nothing
/// but silence.
///
/// `attempt` scopes the rule to one supervised execution attempt:
/// `Some(0)` (the [`CrashRule::at`] default) crashes only the first
/// attempt — the recovery relaunch survives — while `None` crashes every
/// attempt, modelling a host that is permanently gone. The transport never
/// sees `attempt`: a supervisor filters the plan with
/// [`FaultPlan::for_attempt`] before building each attempt's stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrashRule {
    /// Rank of the host that dies.
    pub host: usize,
    /// Sync round (1-based, as reported by `note_round`) at which it dies.
    pub round: u64,
    /// Attempt the rule applies to (`None` = every attempt).
    pub attempt: Option<u32>,
}

impl CrashRule {
    /// Crashes `host` at sync round `round` on the first attempt only.
    pub fn at(host: usize, round: u64) -> CrashRule {
        CrashRule {
            host,
            round,
            attempt: Some(0),
        }
    }

    /// Makes the rule fire on every supervised attempt (an unrecoverable,
    /// permanently dead host).
    pub fn every_attempt(self) -> CrashRule {
        CrashRule {
            attempt: None,
            ..self
        }
    }

    /// Scopes the rule to supervised attempt `attempt`.
    pub fn on_attempt(self, attempt: u32) -> CrashRule {
        CrashRule {
            attempt: Some(attempt),
            ..self
        }
    }
}

/// What to do to a send that a rule or a probability draw selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Discard the message; it never reaches the wire.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Flip one payload bit (no-op on empty payloads).
    Corrupt,
    /// Hold the message back and release it after later sends (breaks
    /// per-stream FIFO order).
    Delay,
}

/// A targeted fault: applied to sends matching every given criterion.
///
/// `None` criteria match everything, so `FaultRule::nth(3, Drop)` drops
/// every 3rd-in-stream message while
/// `FaultRule { peer: Some(1), .. }` restricts it to messages bound for
/// host 1. Rules are checked in order; the first match wins and
/// suppresses the probabilistic draws.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultRule {
    /// Destination rank to match (`None` = any).
    pub peer: Option<usize>,
    /// Tag to match (`None` = any).
    pub tag: Option<u32>,
    /// 1-based index within the matched `(peer, tag)` stream (`None` =
    /// every matching send).
    pub nth: Option<u64>,
    /// The fault to inject.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule applying `action` to every send.
    pub fn always(action: FaultAction) -> FaultRule {
        FaultRule {
            peer: None,
            tag: None,
            nth: None,
            action,
        }
    }

    /// A rule applying `action` to the `nth` (1-based) send of each
    /// matching stream.
    pub fn nth(nth: u64, action: FaultAction) -> FaultRule {
        FaultRule {
            nth: Some(nth),
            ..FaultRule::always(action)
        }
    }

    /// Restricts the rule to sends bound for `peer`.
    pub fn to_peer(self, peer: usize) -> FaultRule {
        FaultRule {
            peer: Some(peer),
            ..self
        }
    }

    /// Restricts the rule to sends on `tag`.
    pub fn on_tag(self, tag: u32) -> FaultRule {
        FaultRule {
            tag: Some(tag),
            ..self
        }
    }

    fn matches(&self, dst: usize, tag: u32, stream_index: u64) -> bool {
        self.peer.is_none_or(|p| p == dst)
            && self.tag.is_none_or(|t| t == tag)
            && self.nth.is_none_or(|n| n == stream_index)
    }
}

/// Fault mix for a [`FaultyTransport`]: background probabilities (checked
/// in the order drop, duplicate, corrupt, delay from one uniform draw, so
/// the rates are exact and must sum to at most 1) plus targeted rules.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the per-endpoint fault generators.
    pub seed: u64,
    /// Probability a send is dropped.
    pub drop_rate: f64,
    /// Probability a send is delivered twice.
    pub duplicate_rate: f64,
    /// Probability one payload bit is flipped.
    pub corrupt_rate: f64,
    /// Probability a send is delayed past later sends.
    pub delay_rate: f64,
    /// Targeted rules, checked before the probabilistic draws.
    pub rules: Vec<FaultRule>,
    /// Scheduled host crashes, fired by [`Transport::note_round`].
    pub crashes: Vec<CrashRule>,
}

impl FaultPlan {
    /// A plan injecting no faults at all (useful as a builder base).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            rules: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// A representatively nasty network: 10% drops, 5% duplicates, 5%
    /// corruption, 10% delays.
    pub fn lossy(seed: u64) -> FaultPlan {
        FaultPlan {
            drop_rate: 0.10,
            duplicate_rate: 0.05,
            corrupt_rate: 0.05,
            delay_rate: 0.10,
            ..FaultPlan::none(seed)
        }
    }

    /// Sets the drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate_rate(mut self, rate: f64) -> FaultPlan {
        self.duplicate_rate = rate;
        self
    }

    /// Sets the corruption probability.
    pub fn with_corrupt_rate(mut self, rate: f64) -> FaultPlan {
        self.corrupt_rate = rate;
        self
    }

    /// Sets the delay probability.
    pub fn with_delay_rate(mut self, rate: f64) -> FaultPlan {
        self.delay_rate = rate;
        self
    }

    /// Appends a targeted rule.
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Appends a scheduled host crash.
    pub fn with_crash(mut self, crash: CrashRule) -> FaultPlan {
        self.crashes.push(crash);
        self
    }

    /// The plan as seen by supervised execution attempt `attempt`: crash
    /// rules scoped to other attempts are removed; everything else (rates,
    /// targeted rules, every-attempt crashes) is kept verbatim.
    pub fn for_attempt(&self, attempt: u32) -> FaultPlan {
        let mut plan = self.clone();
        plan.crashes
            .retain(|c| c.attempt.is_none_or(|a| a == attempt));
        plan
    }

    fn validate(&self) {
        for crash in &self.crashes {
            assert!(
                crash.round >= 1,
                "crash rounds are 1-based: round 0 is pre-sync setup, which \
                 uses infallible collectives and cannot host a clean crash"
            );
        }
        let total = self.drop_rate + self.duplicate_rate + self.corrupt_rate + self.delay_rate;
        assert!(
            (0.0..=1.0).contains(&total)
                && self.drop_rate >= 0.0
                && self.duplicate_rate >= 0.0
                && self.corrupt_rate >= 0.0
                && self.delay_rate >= 0.0,
            "fault rates must be non-negative and sum to at most 1 (got {total})"
        );
    }
}

/// Counts of faults actually injected; shared (cheaply clonable) so one
/// set of counters can aggregate over every endpoint of a cluster.
#[derive(Clone, Debug, Default)]
pub struct FaultCounters {
    inner: Arc<FaultCountersInner>,
}

#[derive(Debug, Default)]
struct FaultCountersInner {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    crashed: AtomicU64,
}

impl FaultCounters {
    /// Fresh zeroed counters.
    pub fn new() -> FaultCounters {
        FaultCounters::default()
    }

    /// Messages discarded.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Messages delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.inner.duplicated.load(Ordering::Relaxed)
    }

    /// Messages with a flipped payload bit.
    pub fn corrupted(&self) -> u64 {
        self.inner.corrupted.load(Ordering::Relaxed)
    }

    /// Messages released out of order.
    pub fn delayed(&self) -> u64 {
        self.inner.delayed.load(Ordering::Relaxed)
    }

    /// Host crashes fired by [`CrashRule`]s.
    pub fn crashed(&self) -> u64 {
        self.inner.crashed.load(Ordering::Relaxed)
    }

    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped() + self.duplicated() + self.corrupted() + self.delayed() + self.crashed()
    }
}

/// A held-back (delayed) message and how many further sends it outlasts.
#[derive(Debug)]
struct Held {
    dst: usize,
    tag: u32,
    payload: Bytes,
    /// Released when this reaches zero (or on any receive/flush).
    sends_left: u32,
}

/// Deterministic fault-injecting wrapper around any [`Transport`].
///
/// # Examples
///
/// ```
/// use gluon_net::{FaultAction, FaultCounters, FaultPlan, FaultRule,
///                 FaultyTransport, MemoryTransport, Transport};
/// use bytes::Bytes;
///
/// let mut eps = MemoryTransport::cluster(2);
/// let b = eps.pop().unwrap();
/// let plan = FaultPlan::none(7)
///     .with_rule(FaultRule::nth(2, FaultAction::Drop).on_tag(5));
/// let counters = FaultCounters::new();
/// let a = FaultyTransport::new(eps.pop().unwrap(), plan, counters.clone());
/// a.try_send(1, 5, Bytes::from_static(b"arrives")).unwrap();
/// a.try_send(1, 5, Bytes::from_static(b"dropped")).unwrap();
/// a.try_send(1, 5, Bytes::from_static(b"arrives too")).unwrap();
/// assert_eq!(&b.try_recv(0, 5).unwrap()[..], b"arrives");
/// assert_eq!(&b.try_recv(0, 5).unwrap()[..], b"arrives too");
/// assert_eq!(counters.dropped(), 1);
/// ```
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    counters: FaultCounters,
    /// Injection on/off switch; when disarmed every send passes through
    /// untouched (used to fault only part of a run, e.g. after setup).
    armed: AtomicBool,
    rng: Mutex<u64>,
    /// 1-based send count per `(dst, tag)` stream, for `nth` rules.
    stream_counts: Mutex<HashMap<(usize, u32), u64>>,
    held: Mutex<Vec<Held>>,
    /// Set when a [`CrashRule`] fires: the endpoint is dead from then on.
    crashed: AtomicBool,
    /// The round the crash fired at (for the [`NetError::HostCrashed`]).
    crash_round: AtomicU64,
}

/// Anything still held is released when the wrapper goes away, so a host
/// whose last action was a (delayed) send cannot starve its peers.
impl<T: Transport> Drop for FaultyTransport<T> {
    fn drop(&mut self) {
        self.release_all();
    }
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given plan, reporting injections into
    /// `counters` (share one `FaultCounters` across a cluster's endpoints
    /// to aggregate).
    ///
    /// # Panics
    ///
    /// Panics if the plan's rates are negative or sum to more than 1.
    pub fn new(inner: T, plan: FaultPlan, counters: FaultCounters) -> FaultyTransport<T> {
        plan.validate();
        // Mix the rank in so endpoints draw distinct sequences.
        let seed = plan.seed ^ (inner.rank() as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        FaultyTransport {
            inner,
            plan,
            counters,
            armed: AtomicBool::new(true),
            rng: Mutex::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            stream_counts: Mutex::new(HashMap::new()),
            held: Mutex::new(Vec::new()),
            crashed: AtomicBool::new(false),
            crash_round: AtomicU64::new(0),
        }
    }

    /// Whether a [`CrashRule`] has killed this endpoint.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn crash_error(&self) -> NetError {
        NetError::HostCrashed {
            host: self.inner.rank(),
            round: self.crash_round.load(Ordering::SeqCst),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The shared fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Starts injecting faults (the initial state).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stops injecting faults; sends pass through untouched until
    /// [`FaultyTransport::arm`] is called.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    fn next_rand(&self) -> u64 {
        let mut state = self.rng.lock();
        // xorshift64*: cheap, deterministic, good enough for fault draws.
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_unit(&self) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (self.next_rand() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Ages held messages by one send and releases the expired ones.
    fn age_held(&self) {
        let expired: Vec<Held> = {
            let mut held = self.held.lock();
            for h in held.iter_mut() {
                h.sends_left = h.sends_left.saturating_sub(1);
            }
            let (out, keep) = std::mem::take(&mut *held)
                .into_iter()
                .partition(|h| h.sends_left == 0);
            *held = keep;
            out
        };
        for h in expired {
            let _ = self.inner.try_send(h.dst, h.tag, h.payload);
        }
    }

    /// Releases every held message immediately. A crashed endpoint drops
    /// them instead: a dead host delivers nothing it was still holding.
    fn release_all(&self) {
        let drained = std::mem::take(&mut *self.held.lock());
        if self.is_crashed() {
            return;
        }
        for h in drained {
            let _ = self.inner.try_send(h.dst, h.tag, h.payload);
        }
    }

    /// Picks what to do with one send, consulting rules then rates.
    fn decide(&self, dst: usize, tag: u32) -> Option<FaultAction> {
        let stream_index = {
            let mut counts = self.stream_counts.lock();
            let c = counts.entry((dst, tag)).or_insert(0);
            *c += 1;
            *c
        };
        if let Some(rule) = self
            .plan
            .rules
            .iter()
            .find(|r| r.matches(dst, tag, stream_index))
        {
            return Some(rule.action);
        }
        let r = self.next_unit();
        let mut band = self.plan.drop_rate;
        if r < band {
            return Some(FaultAction::Drop);
        }
        band += self.plan.duplicate_rate;
        if r < band {
            return Some(FaultAction::Duplicate);
        }
        band += self.plan.corrupt_rate;
        if r < band {
            return Some(FaultAction::Corrupt);
        }
        band += self.plan.delay_rate;
        if r < band {
            return Some(FaultAction::Delay);
        }
        None
    }

    fn counter(&self, action: FaultAction) -> &AtomicU64 {
        match action {
            FaultAction::Drop => &self.counters.inner.dropped,
            FaultAction::Duplicate => &self.counters.inner.duplicated,
            FaultAction::Corrupt => &self.counters.inner.corrupted,
            FaultAction::Delay => &self.counters.inner.delayed,
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn try_send(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), NetError> {
        // A dead host puts nothing on the wire; peers see only silence —
        // but the local caller learns it is dead through the typed error.
        if self.is_crashed() {
            return Err(self.crash_error());
        }
        // Loopback traffic never crosses the NIC: pass it through.
        if dst == self.inner.rank() || !self.armed.load(Ordering::SeqCst) {
            return self.inner.try_send(dst, tag, payload);
        }
        self.age_held();
        match self.decide(dst, tag) {
            None => self.inner.try_send(dst, tag, payload),
            Some(FaultAction::Drop) => {
                self.counter(FaultAction::Drop)
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(FaultAction::Duplicate) => {
                self.counter(FaultAction::Duplicate)
                    .fetch_add(1, Ordering::Relaxed);
                self.inner.try_send(dst, tag, payload.clone())?;
                self.inner.try_send(dst, tag, payload)
            }
            Some(FaultAction::Corrupt) => {
                if payload.is_empty() {
                    // Nothing to flip; deliver unchanged and do not claim
                    // a corruption happened.
                    return self.inner.try_send(dst, tag, payload);
                }
                self.counter(FaultAction::Corrupt)
                    .fetch_add(1, Ordering::Relaxed);
                let mut bytes = payload.to_vec();
                let bit = (self.next_rand() % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
                self.inner.try_send(dst, tag, Bytes::from(bytes))
            }
            Some(FaultAction::Delay) => {
                self.counter(FaultAction::Delay)
                    .fetch_add(1, Ordering::Relaxed);
                self.held.lock().push(Held {
                    dst,
                    tag,
                    payload,
                    sends_left: 1 + (self.next_rand() % 4) as u32,
                });
                Ok(())
            }
        }
    }

    fn try_recv_any_timeout(&self, tag: u32, timeout: Duration) -> Result<Envelope, NetError> {
        if self.is_crashed() {
            // Dead hosts hear nothing; polls report silence so a stacked
            // reliability layer falls through to its `cancelled` check.
            return Err(NetError::Timeout);
        }
        self.release_all();
        self.inner.try_recv_any_timeout(tag, timeout)
    }

    fn try_recv(&self, src: usize, tag: u32) -> Result<Bytes, NetError> {
        if self.is_crashed() {
            return Err(self.crash_error());
        }
        self.release_all();
        self.inner.try_recv(src, tag)
    }

    fn try_recv_any(&self, tag: u32) -> Result<Envelope, NetError> {
        if self.is_crashed() {
            return Err(self.crash_error());
        }
        self.release_all();
        self.inner.try_recv_any(tag)
    }

    fn note_round(&self, round: u64) {
        self.inner.note_round(round);
        if self.is_crashed() {
            return;
        }
        let rank = self.inner.rank();
        if self
            .plan
            .crashes
            .iter()
            .any(|c| c.host == rank && round >= c.round)
        {
            self.crash_round.store(round, Ordering::SeqCst);
            self.crashed.store(true, Ordering::SeqCst);
            self.counters.inner.crashed.fetch_add(1, Ordering::Relaxed);
            // Anything held back dies with the host.
            self.held.lock().clear();
        }
    }

    fn cancelled(&self) -> Option<NetError> {
        if self.is_crashed() {
            return Some(self.crash_error());
        }
        self.inner.cancelled()
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemoryTransport;

    fn pair() -> (MemoryTransport, MemoryTransport) {
        let mut eps = MemoryTransport::cluster(2);
        let b = eps.pop().expect("two endpoints");
        let a = eps.pop().expect("two endpoints");
        (a, b)
    }

    #[test]
    fn disarmed_wrapper_is_transparent() {
        let (a, b) = pair();
        let counters = FaultCounters::new();
        let a = FaultyTransport::new(a, FaultPlan::none(1).with_drop_rate(1.0), counters.clone());
        a.disarm();
        for i in 0..20u32 {
            a.try_send(1, 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        for i in 0..20u32 {
            assert_eq!(&b.try_recv(0, 0).unwrap()[..4], &i.to_le_bytes());
        }
        assert_eq!(counters.total(), 0);
    }

    #[test]
    fn drop_rate_one_discards_everything() {
        let (a, b) = pair();
        let counters = FaultCounters::new();
        let plan = FaultPlan::none(3).with_drop_rate(1.0);
        let a = FaultyTransport::new(a, plan, counters.clone());
        for _ in 0..10 {
            a.try_send(1, 0, Bytes::from_static(b"gone")).unwrap();
        }
        assert_eq!(counters.dropped(), 10);
        // Out-of-band proof nothing arrived: a disarmed marker message is
        // the first (and only) thing the receiver sees.
        a.disarm();
        a.try_send(1, 0, Bytes::from_static(b"marker")).unwrap();
        assert_eq!(&b.try_recv(0, 0).unwrap()[..], b"marker");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let (a, b) = pair();
        let counters = FaultCounters::new();
        let plan = FaultPlan::none(5).with_corrupt_rate(1.0);
        let a = FaultyTransport::new(a, plan, counters.clone());
        let original = [0u8; 16];
        a.try_send(1, 0, Bytes::copy_from_slice(&original)).unwrap();
        let got = b.try_recv(0, 0).unwrap();
        let flipped: u32 = got.iter().map(|byte| byte.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
        assert_eq!(counters.corrupted(), 1);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (a, b) = pair();
        let counters = FaultCounters::new();
        let plan = FaultPlan::none(5).with_duplicate_rate(1.0);
        let a = FaultyTransport::new(a, plan, counters.clone());
        a.try_send(1, 9, Bytes::from_static(b"twin")).unwrap();
        assert_eq!(&b.try_recv(0, 9).unwrap()[..], b"twin");
        assert_eq!(&b.try_recv(0, 9).unwrap()[..], b"twin");
        assert_eq!(counters.duplicated(), 1);
    }

    #[test]
    fn delays_release_on_later_sends_or_recv() {
        let (a, b) = pair();
        let counters = FaultCounters::new();
        let plan = FaultPlan::none(11).with_delay_rate(1.0);
        let a = FaultyTransport::new(a, plan, counters.clone());
        for i in 0..30u32 {
            a.try_send(1, 0, Bytes::copy_from_slice(&i.to_le_bytes()))
                .unwrap();
        }
        // Entering a receive on the faulty endpoint releases stragglers.
        let _ = a.try_recv_any_timeout(99, Duration::from_millis(1));
        let mut got: Vec<u32> = (0..30)
            .map(|_| {
                let m = b.try_recv(0, 0).unwrap();
                u32::from_le_bytes(m[..4].try_into().expect("4 bytes"))
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..30).collect::<Vec<_>>());
        assert_eq!(counters.delayed(), 30);
    }

    #[test]
    fn targeted_rule_beats_rates_and_counts_streams_separately() {
        let (a, b) = pair();
        let counters = FaultCounters::new();
        let plan = FaultPlan::none(2).with_rule(FaultRule::nth(2, FaultAction::Drop).on_tag(7));
        let a = FaultyTransport::new(a, plan, counters.clone());
        for _ in 0..3 {
            a.try_send(1, 7, Bytes::from_static(b"t7")).unwrap();
            a.try_send(1, 8, Bytes::from_static(b"t8")).unwrap();
        }
        // Tag 8 is untouched; tag 7 lost only its 2nd message.
        for _ in 0..3 {
            assert_eq!(&b.try_recv(0, 8).unwrap()[..], b"t8");
        }
        assert_eq!(&b.try_recv(0, 7).unwrap()[..], b"t7");
        assert_eq!(&b.try_recv(0, 7).unwrap()[..], b"t7");
        assert_eq!(counters.dropped(), 1);
    }

    #[test]
    fn self_sends_are_never_faulted() {
        let mut eps = MemoryTransport::cluster(1);
        let counters = FaultCounters::new();
        let a = FaultyTransport::new(
            eps.pop().expect("one endpoint"),
            FaultPlan::none(1).with_drop_rate(1.0),
            counters.clone(),
        );
        a.try_send(0, 0, Bytes::from_static(b"loopback")).unwrap();
        assert_eq!(&a.try_recv(0, 0).unwrap()[..], b"loopback");
        assert_eq!(counters.total(), 0);
    }

    #[test]
    fn decisions_are_deterministic_in_seed() {
        let run = |seed: u64| -> (u64, u64, u64, u64) {
            let (a, _b) = pair();
            let counters = FaultCounters::new();
            let a = FaultyTransport::new(a, FaultPlan::lossy(seed), counters.clone());
            for i in 0..200u32 {
                a.try_send(1, i % 3, Bytes::from_static(b"payload"))
                    .unwrap();
            }
            (
                counters.dropped(),
                counters.duplicated(),
                counters.corrupted(),
                counters.delayed(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(1), run(2), "different seeds should differ");
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn over_unit_rates_are_rejected() {
        let (a, _b) = pair();
        FaultyTransport::new(
            a,
            FaultPlan::none(0).with_drop_rate(0.7).with_delay_rate(0.5),
            FaultCounters::new(),
        );
    }
}
