//! Real multi-process socket transport.
//!
//! [`SocketTransport`] is the first [`Transport`] backend whose hosts are
//! genuinely separate OS processes: peers exchange length-prefixed,
//! CRC-protected frames over TCP or Unix-domain stream sockets. Everything
//! above the trait — the Gluon sync paths, the collectives, the
//! reliability layer, the failure detector, the crash supervisor — runs
//! unmodified, which is the paper's central claim about the substrate
//! being swappable under unchanged analytics code (Figure 1's "Network"
//! box).
//!
//! # Architecture
//!
//! Each endpoint owns one *event-loop thread* servicing `world - 1`
//! nonblocking peer connections (established by [`crate::bootstrap`]):
//!
//! * **Outbound:** [`Transport::try_send`] encodes a frame and appends it
//!   to the destination's send queue; the loop drains queues into the
//!   sockets, carrying partial writes across iterations.
//! * **Inbound:** the loop accumulates bytes per peer, parses complete
//!   frames, verifies their CRC, and demultiplexes payloads into the same
//!   twin [`Stash`] indexes the in-memory backend uses, waking blocked
//!   receivers through a condvar.
//! * **Supervision:** EOF or a socket error on a peer connection latches a
//!   typed [`NetError::PeerDown`] for that rank (stamped with the last
//!   round reported via [`Transport::note_round`]), wakes every waiter,
//!   and surfaces through [`Transport::cancelled`] — so the failure
//!   detector and the crash supervisor see exactly the shapes they were
//!   built against.
//!
//! # Frame format
//!
//! ```text
//! | len: u32 LE | tag: u32 LE | crc: u32 LE | payload: len bytes |
//! ```
//!
//! `len` counts payload bytes only; `crc` is CRC-32 (IEEE, the same
//! polynomial and table as the reliability layer) over the tag bytes
//! followed by the payload, so neither header corruption nor payload
//! corruption goes unnoticed even on transports without end-to-end
//! checksums (Unix-domain sockets).
//!
//! # Counter parity
//!
//! Payload bytes and message counts are recorded at `try_send` time with
//! the same [`NetStats::record_send`] call and arguments the in-memory
//! backend uses — framing overhead is *not* counted — so on identical
//! inputs the byte/message matrices (and therefore the communication-
//! volume figures and the report fingerprint) match `MemoryTransport`
//! bit-for-bit. Wire mechanics are observable separately through the
//! `socket_*` counters on [`NetStats`].

use crate::error::NetError;
use crate::reliable::crc32_parts;
use crate::stats::NetStats;
use crate::transport::{Envelope, PtrEqLen, Stash, Transport};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frame header size on the wire: `len | tag | crc`, each a `u32` LE.
pub(crate) const FRAME_HEADER: usize = 12;

/// How long the event loop sleeps when neither reads nor writes made
/// progress. Short enough to keep added latency well below the failure
/// detector's thresholds; long enough not to burn a core spinning.
const IDLE_BACKOFF: Duration = Duration::from_micros(50);

/// How long a blocked receiver waits on the condvar before re-checking
/// for latched peer failures (belt and braces — failures also notify).
const RECV_POLL: Duration = Duration::from_millis(1);

/// Bound on how long `Drop` waits for the event loop to flush queued
/// outbound frames to peers that have stopped reading.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// One established peer connection, TCP or Unix-domain.
///
/// Both variants are stream sockets with identical framing; the enum lets
/// one event loop service either family (and lets tests mix assertions
/// across both without generics leaking into [`SocketTransport`]).
#[derive(Debug)]
pub(crate) enum PeerStream {
    /// TCP connection (Nagle disabled by the bootstrap).
    Tcp(TcpStream),
    /// Unix-domain stream connection.
    Unix(UnixStream),
}

impl PeerStream {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            PeerStream::Tcp(s) => s.set_nonblocking(nb),
            PeerStream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            PeerStream::Tcp(s) => s.read(buf),
            PeerStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            PeerStream::Tcp(s) => s.write(buf),
            PeerStream::Unix(s) => s.write(buf),
        }
    }
}

/// Per-peer connection state owned by the event-loop thread.
struct Conn {
    stream: PeerStream,
    /// Bytes read off the wire but not yet parsed into complete frames.
    inbuf: Vec<u8>,
    /// Encoded frames accepted from send queues but not yet fully written.
    outbuf: Vec<u8>,
}

/// Receiver-visible state: the twin stash indexes plus latched failures.
struct RecvState {
    /// `(src, tag)`-keyed index serving [`Transport::try_recv`].
    stash: Stash<(usize, u32), Bytes>,
    /// Tag-keyed index serving the `recv_any` family.
    stash_any: Stash<u32, (usize, Bytes)>,
    /// First terminal error observed per peer (EOF, reset, broken pipe),
    /// latched for the lifetime of the endpoint.
    dead: Vec<Option<NetError>>,
    /// Whether a peer's death has already been surfaced once through
    /// [`Transport::try_recv_any_timeout`]. The reliability pump latches
    /// the failure on first sight; reporting it on every subsequent poll
    /// would turn its timed waits into a busy spin.
    reported_any: Vec<bool>,
}

/// State shared between the endpoint handle and its event-loop thread.
struct Shared {
    rank: usize,
    world: usize,
    stats: NetStats,
    state: Mutex<RecvState>,
    wake: Condvar,
    /// Per-peer queues of encoded frames awaiting the event loop.
    out: Vec<Mutex<VecDeque<Bytes>>>,
    /// Last sync-phase index reported through [`Transport::note_round`];
    /// stamps peer-failure errors for checkpoint rollback decisions.
    round: AtomicU64,
    /// Set by `Drop`; tells the loop to flush and exit.
    shutdown: AtomicBool,
}

impl Shared {
    /// Files one received payload into the twin stash indexes and wakes
    /// blocked receivers (mirror of the in-memory backend's `file`).
    fn file(&self, src: usize, tag: u32, payload: Bytes) {
        let mut st = self.state.lock().expect("socket state lock");
        st.stash.push((src, tag), payload.clone());
        st.stash_any.push(tag, (src, payload));
        drop(st);
        self.wake.notify_all();
    }

    /// Latches a terminal error for `peer` and wakes every waiter so
    /// blocked receives return the typed failure promptly.
    fn mark_dead(&self, peer: usize) {
        let err = NetError::PeerDown {
            peer,
            round: self.round.load(Ordering::Relaxed),
        };
        let mut st = self.state.lock().expect("socket state lock");
        if st.dead[peer].is_none() {
            st.dead[peer] = Some(err);
        }
        drop(st);
        self.wake.notify_all();
    }
}

/// A [`Transport`] endpoint whose peers are separate processes reached
/// over TCP or Unix-domain stream sockets.
///
/// Construct via [`crate::bootstrap`] ([`crate::Rendezvous::lead`] on
/// rank 0, [`crate::bootstrap::join`] elsewhere); this type only drives
/// already-established connections. See the module docs for the wire
/// format and supervision semantics.
pub struct SocketTransport {
    shared: Arc<Shared>,
    /// Event-loop thread; joined (after a bounded flush) on drop.
    pump: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("rank", &self.shared.rank)
            .field("world", &self.shared.world)
            .finish_non_exhaustive()
    }
}

/// Encodes one wire frame: header plus payload (see module docs).
pub(crate) fn encode_frame(tag: u32, payload: &[u8]) -> Bytes {
    let mut f = Vec::with_capacity(FRAME_HEADER + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&tag.to_le_bytes());
    f.extend_from_slice(&crc32_parts(&[&tag.to_le_bytes(), payload]).to_le_bytes());
    f.extend_from_slice(payload);
    Bytes::from(f)
}

impl SocketTransport {
    /// Wraps established peer connections into a live endpoint and starts
    /// its event loop. `conns[p]` must be `Some` exactly for `p != rank`.
    ///
    /// # Panics
    ///
    /// Panics if the connection table disagrees with `rank`/`world` or if
    /// `stats` is sized for a different cluster.
    pub(crate) fn from_conns(
        rank: usize,
        world: usize,
        conns: Vec<Option<PeerStream>>,
        stats: NetStats,
    ) -> SocketTransport {
        assert_eq!(conns.len(), world, "connection table sized for world");
        assert_eq!(stats.world_size(), world, "stats sized for world");
        for (p, c) in conns.iter().enumerate() {
            assert_eq!(
                c.is_some(),
                p != rank,
                "exactly the non-self slots must hold connections"
            );
        }
        let shared = Arc::new(Shared {
            rank,
            world,
            stats,
            state: Mutex::new(RecvState {
                stash: Stash::new(),
                stash_any: Stash::new(),
                dead: vec![None; world],
                reported_any: vec![false; world],
            }),
            wake: Condvar::new(),
            out: (0..world).map(|_| Mutex::new(VecDeque::new())).collect(),
            round: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let mut table: Vec<Option<Conn>> = conns
            .into_iter()
            .map(|c| {
                c.map(|stream| {
                    stream
                        .set_nonblocking(true)
                        .expect("set peer stream nonblocking");
                    Conn {
                        stream,
                        inbuf: Vec::with_capacity(64 * 1024),
                        outbuf: Vec::with_capacity(64 * 1024),
                    }
                })
            })
            .collect();
        let loop_shared = Arc::clone(&shared);
        let pump = std::thread::Builder::new()
            .name(format!("gluon-sock-{rank}"))
            .spawn(move || event_loop(&loop_shared, &mut table))
            .expect("spawn socket event loop");
        SocketTransport {
            shared,
            pump: Some(pump),
        }
    }

    fn take_exact(&self, st: &mut RecvState, src: usize, tag: u32) -> Option<Bytes> {
        let queue = st.stash.map.get_mut(&(src, tag))?;
        let payload = queue.pop_front()?;
        if queue.is_empty() {
            st.stash.retire(&(src, tag));
        }
        if let Some(q) = st.stash_any.map.get_mut(&tag) {
            if let Some(pos) = q
                .iter()
                .position(|(s, p)| *s == src && Bytes::ptr_eq_len(p, &payload))
            {
                q.remove(pos);
            }
            if q.is_empty() {
                st.stash_any.retire(&tag);
            }
        }
        Some(payload)
    }

    fn take_any(&self, st: &mut RecvState, tag: u32) -> Option<(usize, Bytes)> {
        let queue = st.stash_any.map.get_mut(&tag)?;
        let (src, payload) = queue.pop_front()?;
        if queue.is_empty() {
            st.stash_any.retire(&tag);
        }
        if let Some(q) = st.stash.map.get_mut(&(src, tag)) {
            if let Some(pos) = q.iter().position(|p| Bytes::ptr_eq_len(p, &payload)) {
                q.remove(pos);
            }
            if q.is_empty() {
                st.stash.retire(&(src, tag));
            }
        }
        Some((src, payload))
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn world_size(&self) -> usize {
        self.shared.world
    }

    fn try_send(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), NetError> {
        assert!(dst < self.shared.world, "destination rank out of range");
        // Counted before any wire activity, with the same arguments the
        // in-memory backend counts — this is what makes the byte/message
        // matrices transport-independent (see module docs).
        self.shared
            .stats
            .record_send(self.shared.rank, dst, tag, payload.len() as u64);
        if dst == self.shared.rank {
            // Self-sends never touch a socket; deliver through the stash
            // like any other message.
            self.shared.file(dst, tag, payload);
            return Ok(());
        }
        if let Some(err) = self.shared.state.lock().expect("socket state lock").dead[dst] {
            // The peer's connection is gone: no frame can ever arrive, so
            // fail fast with the latched typed error instead of letting
            // the caller wait out a retransmission budget.
            return Err(err);
        }
        self.shared.out[dst]
            .lock()
            .expect("socket send queue lock")
            .push_back(encode_frame(tag, &payload));
        Ok(())
    }

    fn try_recv(&self, src: usize, tag: u32) -> Result<Bytes, NetError> {
        assert!(src < self.shared.world, "source rank out of range");
        let mut st = self.shared.state.lock().expect("socket state lock");
        loop {
            // Buffered data outranks failure: frames the peer sent before
            // dying are still delivered in order.
            if let Some(payload) = self.take_exact(&mut st, src, tag) {
                return Ok(payload);
            }
            if let Some(err) = st.dead[src] {
                return Err(err);
            }
            st = self
                .shared
                .wake
                .wait_timeout(st, RECV_POLL)
                .expect("socket state lock")
                .0;
        }
    }

    fn try_recv_any(&self, tag: u32) -> Result<Envelope, NetError> {
        let mut st = self.shared.state.lock().expect("socket state lock");
        loop {
            if let Some((src, payload)) = self.take_any(&mut st, tag) {
                return Ok(Envelope { src, tag, payload });
            }
            // Only when *every* peer is down can nothing ever arrive.
            let mut dead_peers = 0;
            let mut first = None;
            for p in 0..self.shared.world {
                if p == self.shared.rank {
                    continue;
                }
                if let Some(err) = st.dead[p] {
                    dead_peers += 1;
                    first.get_or_insert(err);
                }
            }
            if self.shared.world > 1 && dead_peers == self.shared.world - 1 {
                return Err(first.expect("at least one dead peer"));
            }
            st = self
                .shared
                .wake
                .wait_timeout(st, RECV_POLL)
                .expect("socket state lock")
                .0;
        }
    }

    fn try_recv_any_timeout(&self, tag: u32, timeout: Duration) -> Result<Envelope, NetError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("socket state lock");
        loop {
            if let Some((src, payload)) = self.take_any(&mut st, tag) {
                return Ok(Envelope { src, tag, payload });
            }
            // Surface each peer failure exactly once through this path:
            // the reliability pump latches it on first sight, and later
            // polls must wait out their timeout (silence) rather than
            // spin on the same latched error.
            for p in 0..self.shared.world {
                if let Some(err) = st.dead[p] {
                    if !st.reported_any[p] {
                        st.reported_any[p] = true;
                        return Err(err);
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let wait = RECV_POLL.min(deadline - now);
            st = self
                .shared
                .wake
                .wait_timeout(st, wait)
                .expect("socket state lock")
                .0;
        }
    }

    fn note_round(&self, round: u64) {
        self.shared.round.fetch_max(round, Ordering::Relaxed);
    }

    fn cancelled(&self) -> Option<NetError> {
        // A dead peer is terminal for the whole BSP run: surfacing it here
        // aborts blocking loops stacked above (reliability layer, sync
        // paths) exactly as a tripped in-memory CancelToken would.
        let st = self.shared.state.lock().expect("socket state lock");
        st.dead.iter().flatten().next().copied()
    }

    fn stats(&self) -> &NetStats {
        &self.shared.stats
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

/// The per-endpoint event loop: drains send queues into the sockets,
/// parses inbound frames into the stashes, and latches peer failures.
/// Runs until shutdown is requested and all outbound traffic is flushed
/// (bounded by [`DRAIN_DEADLINE`]), so frames queued just before teardown
/// still reach their peers.
fn event_loop(shared: &Shared, table: &mut [Option<Conn>]) {
    let mut scratch = [0u8; 64 * 1024];
    let mut draining_since: Option<Instant> = None;
    loop {
        let mut progress = false;
        for (peer, slot) in table.iter_mut().enumerate() {
            if peer == shared.rank {
                continue;
            }
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            let alive = service_writes(shared, conn, peer, &mut progress)
                && service_reads(shared, conn, peer, &mut scratch, &mut progress);
            if !alive {
                shared.mark_dead(peer);
                *slot = None;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            // Pending work must be recomputed *after* observing the
            // shutdown flag: `Drop` stores it after the caller's last
            // `try_send`, so any frame enqueued just before teardown is
            // visible to this check — a flag computed mid-sweep could
            // predate it and strand the frame.
            let pending = table.iter().enumerate().any(|(peer, conn)| {
                conn.as_ref().is_some_and(|c| !c.outbuf.is_empty())
                    || (conn.is_some()
                        && !shared.out[peer]
                            .lock()
                            .expect("socket send queue lock")
                            .is_empty())
            });
            if !pending {
                break;
            }
            let since = *draining_since.get_or_insert_with(Instant::now);
            if since.elapsed() > DRAIN_DEADLINE {
                break;
            }
        }
        if !progress {
            std::thread::sleep(IDLE_BACKOFF);
        }
    }
}

/// Moves queued frames into the peer's write buffer and writes as much as
/// the socket accepts. Returns `false` when the connection is broken.
fn service_writes(shared: &Shared, conn: &mut Conn, peer: usize, progress: &mut bool) -> bool {
    {
        let mut q = shared.out[peer].lock().expect("socket send queue lock");
        while let Some(frame) = q.pop_front() {
            conn.outbuf.extend_from_slice(&frame);
            shared.stats.record_socket_frame_sent();
        }
    }
    let mut written = 0;
    while written < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[written..]) {
            Ok(0) => break,
            Ok(n) => {
                written += n;
                *progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    conn.outbuf.drain(..written);
    true
}

/// Reads whatever the kernel has, parses complete frames into the stash,
/// and counts a short read when a partial frame stays buffered. Returns
/// `false` on EOF or a connection error.
fn service_reads(
    shared: &Shared,
    conn: &mut Conn,
    peer: usize,
    scratch: &mut [u8],
    progress: &mut bool,
) -> bool {
    let mut alive = true;
    let mut got_data = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                alive = false;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&scratch[..n]);
                got_data = true;
                *progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                alive = false;
                break;
            }
        }
    }
    let mut consumed = 0;
    while conn.inbuf.len() - consumed >= FRAME_HEADER {
        let at = &conn.inbuf[consumed..];
        let len = u32::from_le_bytes(at[0..4].try_into().expect("len")) as usize;
        if at.len() < FRAME_HEADER + len {
            break;
        }
        let tag = u32::from_le_bytes(at[4..8].try_into().expect("tag"));
        let crc = u32::from_le_bytes(at[8..12].try_into().expect("crc"));
        let payload = &at[FRAME_HEADER..FRAME_HEADER + len];
        if crc32_parts(&[&tag.to_le_bytes(), payload]) == crc {
            shared.stats.record_socket_frame_received();
            shared.file(peer, tag, Bytes::copy_from_slice(payload));
        } else {
            // A stream transport should never corrupt, but the check costs
            // one table walk and turns "impossible" into an observable.
            shared.stats.record_corruption_detected();
        }
        consumed += FRAME_HEADER + len;
    }
    conn.inbuf.drain(..consumed);
    if got_data && !conn.inbuf.is_empty() {
        shared.stats.record_socket_short_read();
    }
    // Deliver everything the peer managed to send before closing: frames
    // already parsed above are in the stash, so marking the peer dead now
    // cannot reorder data before failure.
    alive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_layout() {
        let f = encode_frame(7, b"abc");
        assert_eq!(f.len(), FRAME_HEADER + 3);
        assert_eq!(u32::from_le_bytes(f[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(f[4..8].try_into().unwrap()), 7);
        let crc = u32::from_le_bytes(f[8..12].try_into().unwrap());
        assert_eq!(crc, crc32_parts(&[&7u32.to_le_bytes(), b"abc"]));
        assert_eq!(&f[12..], b"abc");
    }

    #[test]
    fn zero_length_frames_are_legal() {
        let f = encode_frame(0, b"");
        assert_eq!(f.len(), FRAME_HEADER);
        assert_eq!(u32::from_le_bytes(f[0..4].try_into().unwrap()), 0);
    }
}
